//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its record types
//! as a forward-compatible annotation; no code path serializes through
//! serde yet, and the build environment cannot fetch the real crate.
//! This stub provides the two marker traits and re-exports the no-op
//! derive macros so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de>: Sized {}
