//! Offline stand-in for `crossbeam` (channel subset).
//!
//! The runtime transport only needs bounded MPSC channels with
//! blocking `send` and `recv_timeout`; `std::sync::mpsc`'s
//! `sync_channel` provides exactly those semantics, so this stub is a
//! thin rename over the standard library.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer channels with crossbeam's naming.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of a bounded channel; `send` blocks when full.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued or the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Returns immediately with a message if one is queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_round_trip_and_timeout() {
        let (tx, rx) = channel::bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }
}
