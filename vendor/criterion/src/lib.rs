//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — groups,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple adaptive wall-clock
//! measurer instead of the real crate's statistical machinery: each
//! benchmark is calibrated to a target measuring window, run, and its
//! mean iteration time printed. No plots, no significance tests, but
//! the numbers are comparable run-to-run on an idle machine, which is
//! all the perf-trajectory tracking here needs.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_WINDOW: Duration = Duration::from_millis(120);
const CALIBRATE_WINDOW: Duration = Duration::from_millis(20);

/// Identifies one benchmark within a group (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, e.g. `saath/200`.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter, e.g. `1024`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration count filling the target
    /// window, then times that many calls and records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: count how many iterations fit a short window.
        let start = Instant::now();
        let mut calibration_iters: u64 = 0;
        while start.elapsed() < CALIBRATE_WINDOW {
            black_box(f());
            calibration_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / calibration_iters as f64;
        let iters = ((TARGET_WINDOW.as_secs_f64() / per_iter) as u64).max(1);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }
}

fn run_one<I, F: FnMut(&mut Bencher, &I)>(label: &str, input: &I, mut f: F) {
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b, input);
    let (value, unit) = if b.mean_ns >= 1e9 {
        (b.mean_ns / 1e9, "s")
    } else if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{label:<40} time: {value:>10.3} {unit}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark with an input parameter.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), input, f);
        self
    }

    /// Runs one benchmark without a parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &(), |b, _| f(b));
        self
    }

    /// Ends the group (report-flush point in the real crate).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark with an input parameter.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&id.label, input, f);
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &(), |b, _| f(b));
        self
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter(|| black_box(2u64).pow(black_box(10)));
        assert!(b.mean_ns > 0.0);
    }
}
