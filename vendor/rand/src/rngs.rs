//! Small, fast, non-cryptographic generators.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the algorithm behind `rand 0.8`'s 64-bit `SmallRng`.
///
/// Excellent statistical quality for simulation workloads, 256 bits of
/// state, and a few ns per draw. Not cryptographically secure.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden point of the xoshiro
        // family; SplitMix64 cannot produce four zeros from any seed,
        // but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_xoshiro_sequence_shape() {
        // Sanity: consecutive outputs differ and cover high and low bits.
        let mut rng = SmallRng::seed_from_u64(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.next_u64().count_ones();
        }
        // 64 draws x 64 bits: expect ~2048 ones; allow wide slack.
        assert!((1600..2500).contains(&ones), "bit bias: {ones}");
    }
}
