//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so the real crate
//! cannot be fetched. The workspace's only consumer is
//! `saath_simcore::rng::DetRng`, which needs `SmallRng::seed_from_u64`,
//! `gen::<f64>()`, and `gen_range` over integer and float ranges. This
//! stub provides exactly that surface with a high-quality deterministic
//! generator (xoshiro256++ seeded via SplitMix64 — the same family the
//! real `SmallRng` uses on 64-bit targets). Statistical quality matters
//! here: the workspace's RNG tests check exponential/Pareto moments and
//! stream independence.

#![forbid(unsafe_code)]

pub mod rngs;

pub use rngs::SmallRng;

/// Core generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Returns the next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is used by
/// this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it through
    /// SplitMix64 as the real `rand` does.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the uniform "standard" distribution
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types `gen_range` accepts (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` via 128-bit multiply-shift.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

uint_range!(u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

/// User-facing sampling interface, blanket-implemented for every
/// generator (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
