//! Offline stand-in for the `bytes` crate (1.x API subset).
//!
//! The runtime's wire protocol (`saath_runtime::proto`) needs
//! big-endian cursored reads/writes, `split_to`/`freeze` framing, and
//! slice views. This stub backs both buffer types with a plain
//! `Vec<u8>` — O(n) `advance` on `BytesMut` instead of the real
//! crate's O(1) view splitting, which is irrelevant at the frame sizes
//! the coordinator exchanges — and keeps the trait/inherent method
//! split identical to the real crate so call sites and imports compile
//! unchanged.

#![forbid(unsafe_code)]

use core::ops::Deref;

/// Cursored read access to a byte buffer (big-endian getters).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16` and advances.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32` and advances.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64` and advances.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
}

/// Append-only write access to a byte buffer (big-endian putters).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// The unconsumed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

/// A growable byte buffer supporting front consumption and framing.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes held.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Drops all contents.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to past end of BytesMut");
        let head = self.data.drain(..at).collect();
        BytesMut { data: head }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance past end of BytesMut");
        self.data.drain(..cnt);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec() }
    }
}

impl core::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "BytesMut({:02x?})", &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 13);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64(), 42);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn split_to_frames() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        b.advance(1);
        assert_eq!(&b[..], &[4, 5]);
    }
}
