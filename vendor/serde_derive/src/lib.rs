//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatible annotation — nothing serializes yet, and the
//! build environment has no network access to fetch the real crate.
//! These derives accept the same syntax (including `#[serde(...)]`
//! helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
