//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use core::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            self.size.start + rng.below((self.size.end - self.size.start) as u64) as usize
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `Vec` strategy: `len` elements of `element`, `len` in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
