//! Offline stand-in for `proptest`.
//!
//! The build environment cannot fetch the real crate, so this stub
//! reimplements the subset the workspace's tests rely on: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`),
//! range/tuple/vec/`any` strategies, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Inputs are sampled from
//! a deterministic per-test RNG (seeded from the test's module path),
//! so failures reproduce exactly across runs. No shrinking: a failing
//! case panics with the raw assertion message, which the deterministic
//! seed makes easy to replay under a debugger.

#![forbid(unsafe_code)]

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

pub mod collection;

/// Deterministic generator backing every sampled input (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test identifier (e.g. its module path),
    /// so each test gets an independent but reproducible sequence.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then a fixed tweak so the empty name
        // is not the all-zero state.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the offline suite
        // fast while still exercising a meaningful input spread.
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! sint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

sint_strategy!(i8, i16, i32, i64);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: arbitrary bit patterns would produce
        // NaN/inf, which the real crate also avoids by default.
        rng.unit_f64() * 2e12 - 1e12
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a test that samples its inputs `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                { $body }
            }
        }

        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges, tuples, vecs, maps and `any` all compose.
        #[test]
        fn strategies_compose(
            x in 1u64..100,
            (a, b) in (0u32..4, 0u8..=3),
            v in crate::collection::vec((0u32..6, -2.0f64..2.0), 1..10),
            flag in any::<bool>(),
            mapped in (0u64..10).prop_map(|n| n * 2),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(a < 4 && b <= 3);
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (p, f) in &v {
                prop_assert!(*p < 6);
                prop_assert!((-2.0..2.0).contains(f));
            }
            let _ = flag;
            prop_assert_eq!(mapped % 2, 0);
            prop_assert_ne!(mapped, 19);
        }
    }
}
