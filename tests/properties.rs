//! Workspace-level property tests: for arbitrary cluster states, every
//! scheduler must emit physically-feasible schedules; for arbitrary
//! traces, the simulator must conserve bytes; and the wire protocol must
//! never panic on garbage.

use proptest::prelude::*;
use saath::core::view::{ClusterView, CoflowScheduler, CoflowView, FlowView, Schedule};
use saath::fabric::PortBank;
use saath::prelude::*;

const NODES: usize = 6;

/// Strategy: a random active cluster state (1–12 CoFlows, 1–6 flows
/// each, random progress/readiness/finishedness).
fn arb_views() -> impl Strategy<Value = Vec<CoflowView>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                (
                    0u32..NODES as u32,
                    0u32..NODES as u32,
                    1u64..1_000_000_000,
                    0u8..4,
                ),
                1..6,
            ),
            0u64..10_000,
        ),
        1..12,
    )
    .prop_map(|coflows| {
        let mut next_flow = 0u32;
        coflows
            .into_iter()
            .enumerate()
            .map(|(ci, (flows, arrival_ms))| CoflowView {
                id: CoflowId(ci as u32),
                arrival: Time::from_millis(arrival_ms),
                flows: flows
                    .into_iter()
                    .map(|(src, dst, size, state)| {
                        let id = next_flow;
                        next_flow += 1;
                        FlowView {
                            id: FlowId(id),
                            src: NodeId(src),
                            dst: NodeId(dst),
                            // `state` bit 0: finished, bit 1: unready.
                            sent: if state & 1 != 0 {
                                Bytes(size)
                            } else {
                                Bytes(size / 2)
                            },
                            ready: state & 2 == 0,
                            finished: state & 1 != 0,
                            oracle_size: Some(Bytes(size)),
                        }
                    })
                    .collect(),
                restarted: false,
            })
            .collect()
    })
}

fn all_schedulers() -> Vec<Box<dyn CoflowScheduler>> {
    vec![
        Box::new(Saath::with_defaults()),
        Box::new(Saath::new(SaathConfig::ablation_an())),
        Box::new(Saath::new(SaathConfig {
            skew_aware_thresholds: true,
            ..Default::default()
        })),
        Box::new(Aalo::with_defaults()),
        Box::new(Aalo::strict_priority(QueueConfig::default())),
        Box::new(UcTcp::new()),
        Box::new(OfflineScheduler::varys()),
        Box::new(OfflineScheduler::new(OfflinePolicy::Lwtf)),
        Box::new(OfflineScheduler::new(OfflinePolicy::Scf)),
        Box::new(OfflineScheduler::new(OfflinePolicy::Srtf)),
    ]
}

/// Timing-metadata stability: the mechanism counters and the JSONL
/// round trace riding alongside `SchedTimings` were never asserted
/// anywhere — a refactor could silently zero a counter while records
/// stayed byte-identical. Two layers close that gap: (1) two identical
/// runs agree counter-for-counter and line-for-line, whatever the
/// feature state; (2) with telemetry compiled in, the exact values are
/// pinned as goldens (counter values, never wall times — those live in
/// `SchedTimings` and are inherently nondeterministic).
#[test]
fn mech_counters_and_round_trace_are_pinned() {
    use saath::simulator::simulate_with_telemetry;

    let trace = workload::gen::generate(&workload::gen::small(9, 10, 16));
    let run = || {
        let mut tele = saath::telemetry::Telemetry::with_jsonl();
        let mut sched = Saath::with_defaults();
        let out = simulate_with_telemetry(
            &trace,
            &mut sched,
            &SimConfig::default(),
            &DynamicsSpec::none(),
            Some(&mut tele),
        )
        .unwrap();
        (out, sched.mech.rows(), tele)
    };
    let (out_a, mech_a, tele_a) = run();
    let (out_b, mech_b, tele_b) = run();
    assert_eq!(out_a.records, out_b.records);
    assert_eq!(mech_a, mech_b, "mechanism counters drift run-to-run");
    assert_eq!(
        tele_a.jsonl(),
        tele_b.jsonl(),
        "JSONL round trace drifts run-to-run"
    );

    if !saath::telemetry::enabled() {
        // Instrumentation compiled out: counters legitimately read 0.
        return;
    }

    // Golden values for gen::small(9, 10, 16) under default Saath.
    // `probe_revalidations` is the one counter the parallel feature
    // moves (sharded probes re-validate what serial admission sees
    // first-hand); every other mechanism count is identical by design.
    let probe_revalidations = if cfg!(feature = "parallel") { 2 } else { 0 };
    let expect: [(&str, u64); 15] = [
        ("queue_transitions", 10),
        ("deadline_expiries", 0),
        ("starvation_rescues", 0),
        ("gang_admissions", 467),
        ("gang_rejections", 1),
        ("unready_skips", 0),
        ("wc_backfills", 4),
        ("lcof_comparisons", 80),
        ("madd_evals", 468),
        ("contention_deltas", 138),
        ("contention_rebuilds", 1),
        ("contention_rebuilds_avoided", 361),
        ("probe_revalidations", probe_revalidations),
        ("order_rekeys", 29),
        ("order_resorts_avoided", 362),
    ];
    assert_eq!(mech_a, expect, "golden mechanism counters moved");

    // The deterministic JSONL round trace: one line per round, and the
    // first/last lines pinned verbatim (integer-only fields, so these
    // are stable across platforms).
    assert_eq!(tele_a.jsonl().lines().count() as u64, out_a.rounds);
    assert_eq!(out_a.rounds, 362);
    assert_eq!(
        tele_a.jsonl().lines().next().unwrap(),
        r#"{"round":0,"now_ns":0,"active":1,"flowing":12,"dirty":1,"heap":12,"sat_ports":3,"util_pm":300,"queues":[1,0,0,0,0,0,0,0,0,0]}"#
    );
    assert_eq!(
        tele_a.jsonl().lines().last().unwrap(),
        r#"{"round":361,"now_ns":47264000000,"active":1,"flowing":1,"dirty":1,"heap":1,"sat_ports":2,"util_pm":100,"queues":[0,0,1,0,0,0,0,0,0,0]}"#
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every scheduler, on every random state: (1) never oversubscribes
    /// a port, (2) never schedules a finished or unready flow, (3) never
    /// schedules the same flow twice.
    #[test]
    fn schedules_are_always_feasible(views in arb_views()) {
        for mut sched in all_schedulers() {
            let mut bank = PortBank::uniform(NODES, Rate::gbps(1));
            let mut out = Schedule::default();
            let view = ClusterView { now: Time::from_secs(1), num_nodes: NODES, coflows: &views, changed: None };
            sched.compute(&view, &mut bank, &mut out);

            let mut used = [0u64; 2 * NODES];
            let mut seen = std::collections::HashSet::new();
            for &(fid, rate) in &out.rates {
                prop_assert!(seen.insert(fid), "{}: flow {fid} scheduled twice", sched.name());
                let fv = views
                    .iter()
                    .flat_map(|c| &c.flows)
                    .find(|f| f.id == fid)
                    .unwrap_or_else(|| panic!("{}: unknown flow {fid}", sched.name()));
                prop_assert!(!fv.finished, "{}: scheduled finished flow", sched.name());
                prop_assert!(fv.ready, "{}: scheduled unready flow", sched.name());
                used[fv.endpoints(NODES).src.index()] += rate.as_u64();
                used[fv.endpoints(NODES).dst.index()] += rate.as_u64();
            }
            for (p, &u) in used.iter().enumerate() {
                prop_assert!(
                    u <= Rate::gbps(1).as_u64(),
                    "{}: port {p} oversubscribed ({u})",
                    sched.name()
                );
            }
        }
    }

    /// Byte conservation through the full engine: each flow's FCT, at
    /// the rates actually granted, must account for exactly its size —
    /// checked indirectly: CCT ≥ size/port-rate for every flow, and
    /// total simulated work ≥ total trace bytes / aggregate capacity.
    #[test]
    fn simulator_conserves_bytes(seed in 0u64..50, n_coflows in 2usize..20) {
        let trace = workload::gen::generate(&workload::gen::small(seed, 8, n_coflows));
        let out = run_policy(&trace, &Policy::saath(), &SimConfig::default(), &DynamicsSpec::none()).unwrap();
        prop_assert_eq!(out.records.len(), trace.coflows.len());
        for (r, spec) in out.records.iter().zip(&trace.coflows) {
            prop_assert_eq!(r.id, spec.id);
            for (fct, f) in r.flow_fcts.iter().zip(&spec.flows) {
                let min = saath::simcore::units::transfer_time(f.size, trace.port_rate);
                prop_assert!(
                    *fct >= min,
                    "flow finished in {fct} but needs {min} at line rate"
                );
            }
        }
        // The run can end no earlier than the whole trace drained
        // through the busiest direction of the fabric.
        let min_end_ns = saath::simcore::units::transfer_time(
            Bytes(trace.total_bytes().as_u64() / trace.num_nodes as u64),
            trace.port_rate,
        );
        prop_assert!(out.end.as_nanos() + 1 >= min_end_ns.as_nanos());
    }

    /// The wire protocol never panics on arbitrary bytes, and always
    /// either yields a message, wants more data, or reports a clean
    /// error.
    #[test]
    fn protocol_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        // Drain until no progress; must terminate and never panic.
        for _ in 0..64 {
            match saath::runtime::proto::Message::decode_stream(&mut buf) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    /// Encode/decode is the identity on arbitrary well-formed messages.
    #[test]
    fn protocol_roundtrip(
        node in any::<u32>(),
        now in any::<u64>(),
        flows in proptest::collection::vec((any::<u32>(), any::<u64>(), any::<bool>(), any::<bool>()), 0..64),
    ) {
        use saath::runtime::proto::{FlowStat, Message};
        let m = Message::Stats {
            node,
            now_ns: now,
            flows: flows
                .into_iter()
                .map(|(flow, sent, finished, ready)| FlowStat { flow, sent, finished, ready })
                .collect(),
        };
        let mut buf = bytes::BytesMut::from(&m.encode().unwrap()[..]);
        let got = Message::decode_stream(&mut buf).unwrap().unwrap();
        prop_assert_eq!(got, m);
        prop_assert!(buf.is_empty());
    }
}
