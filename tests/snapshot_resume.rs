//! Snapshot/resume equivalence: resuming the engine from *any* snapshot
//! boundary must reproduce records byte-identical to the uninterrupted
//! run — CoFlow records, round count, end time, and the event log's
//! chained round digests alike.
//!
//! The suite drives the two workloads the issue names: a small FB-like
//! trace and a churn workload (straggler + node failure) long enough to
//! cross 200 scheduling rounds. Each is logged with snapshot cadence
//! k ∈ {1, 7, 50}; then the run is resumed from every snapshot the log
//! contains and compared against the straight-through output.

use saath::eventlog::{
    diff_logs, index_log, verify, ChainDigest, EventLogWriter, LogHeader, SnapshotRef,
};
use saath::prelude::*;
use saath::simulator::{simulate_resumable, ReplayHooks, SimError, SimOutput};
use saath::workload::{gen, DynamicsEvent};

fn small_fb(seed: u64) -> Trace {
    // Sized for ~170 scheduling rounds: resuming at every boundary with
    // k = 1 replays O(rounds²/2) rounds, so the trace must stay small.
    let cfg = gen::GenConfig {
        num_nodes: 16,
        num_coflows: 12,
        span: Duration::from_millis(1_500),
        max_width: 200,
        ..gen::fb_like(seed)
    };
    gen::generate(&cfg)
}

fn churn_trace() -> Trace {
    // ~250 scheduling rounds under `churn_dynamics` (asserted below).
    gen::generate(&gen::small(43, 16, 10))
}

fn churn_dynamics() -> DynamicsSpec {
    DynamicsSpec {
        events: vec![
            DynamicsEvent::Straggler {
                node: NodeId(2),
                at: Time::from_millis(200),
                until: Time::from_secs(2),
                num: 1,
                den: 4,
            },
            DynamicsEvent::NodeFailure {
                node: NodeId(5),
                at: Time::from_millis(900),
                restart_delay: Duration::from_millis(150),
            },
        ],
    }
}

fn header_for(
    trace: &Trace,
    scheduler: &str,
    start_round: u64,
    start_digest: ChainDigest,
) -> LogHeader {
    LogHeader {
        num_nodes: trace.num_nodes as u64,
        port_rate: trace.port_rate.as_u64(),
        delta_ns: SimConfig::default().delta.as_nanos(),
        scheduler: scheduler.into(),
        trace_digest: ChainDigest::ZERO,
        start_round,
        start_digest,
    }
}

/// Runs start-to-finish with logging at cadence `k`; returns the output
/// and the log bytes.
fn logged_run(
    trace: &Trace,
    dynamics: &DynamicsSpec,
    sched: &mut dyn CoflowScheduler,
    k: u64,
) -> (SimOutput, Vec<u8>) {
    let name = sched.name();
    let mut w =
        EventLogWriter::new(Vec::new(), &header_for(trace, name, 0, ChainDigest::ZERO)).unwrap();
    let out = simulate_resumable(
        trace,
        sched,
        &SimConfig::default(),
        dynamics,
        None,
        ReplayHooks {
            sink: Some(&mut w),
            snapshot_every: k,
            resume_from: None,
        },
    )
    .unwrap();
    (out, w.into_inner().unwrap())
}

/// Resumes from `snap` with a fresh scheduler, logging the continuation
/// into a log seeded with the snapshot-point digest.
fn resumed_run(
    trace: &Trace,
    dynamics: &DynamicsSpec,
    sched: &mut dyn CoflowScheduler,
    snap: &SnapshotRef,
) -> (SimOutput, Vec<u8>) {
    let name = sched.name();
    let mut w = EventLogWriter::new(
        Vec::new(),
        &header_for(trace, name, snap.round, snap.digest),
    )
    .unwrap();
    let out = simulate_resumable(
        trace,
        sched,
        &SimConfig::default(),
        dynamics,
        None,
        ReplayHooks {
            sink: Some(&mut w),
            snapshot_every: 0,
            resume_from: Some(&snap.blob),
        },
    )
    .unwrap();
    (out, w.into_inner().unwrap())
}

/// The workhorse: log the full run at cadence `k`, then resume from
/// every snapshot boundary and demand byte-identical everything.
fn assert_resume_equivalence(
    trace: &Trace,
    dynamics: &DynamicsSpec,
    mk_sched: &dyn Fn() -> Box<dyn CoflowScheduler>,
    k: u64,
) -> u64 {
    let baseline = simulate(trace, &mut *mk_sched(), &SimConfig::default(), dynamics).unwrap();
    let (full_out, full_log) = logged_run(trace, dynamics, &mut *mk_sched(), k);
    // Logging and snapshotting must not perturb the simulation.
    assert_eq!(
        baseline.records, full_out.records,
        "logging changed records"
    );
    assert_eq!(baseline.rounds, full_out.rounds);
    assert_eq!(baseline.end, full_out.end);

    let summary = verify(&full_log[..]).expect("full log fails verification");
    assert_eq!(summary.rounds, full_out.rounds, "one record per round");
    let idx = index_log(&full_log).unwrap();
    assert_eq!(
        idx.snapshots.len() as u64,
        full_out.rounds / k,
        "expected a snapshot at every multiple of k the run crossed"
    );

    for snap in &idx.snapshots {
        let (out, resumed_log) = resumed_run(trace, dynamics, &mut *mk_sched(), snap);
        assert_eq!(
            out.records, full_out.records,
            "resume at round {} produced different records",
            snap.round
        );
        assert_eq!(
            out.rounds, full_out.rounds,
            "resume at round {}",
            snap.round
        );
        assert_eq!(out.end, full_out.end, "resume at round {}", snap.round);
        assert_eq!(out.unfinished, full_out.unfinished);

        // The continuation's chain must end on the same digest as the
        // uninterrupted log's...
        let resumed_summary = verify(&resumed_log[..]).expect("resumed log fails verification");
        assert_eq!(
            resumed_summary.digest, summary.digest,
            "resume at round {} chains to a different digest",
            snap.round
        );
        assert_eq!(
            resumed_summary.start_round + resumed_summary.rounds,
            summary.rounds,
        );
        // ...and the differ must see nothing over the overlap.
        let d = diff_logs(&full_log, &resumed_log).unwrap();
        assert_eq!(
            d.first_divergent_round,
            None,
            "resume at round {} diverged: {}",
            snap.round,
            d.render()
        );
        assert_eq!(d.compared, full_out.rounds - snap.round);
    }
    full_out.rounds
}

#[test]
fn fb_trace_resumes_at_every_boundary() {
    let trace = small_fb(17);
    let dynamics = DynamicsSpec::none();
    let mk: Box<dyn Fn() -> Box<dyn CoflowScheduler>> =
        Box::new(|| Box::new(Saath::with_defaults()));
    for k in [1, 7, 50] {
        let rounds = assert_resume_equivalence(&trace, &dynamics, &*mk, k);
        assert!(
            rounds > 50,
            "FB workload too short ({rounds} rounds) to exercise k = {k}"
        );
    }
}

#[test]
fn churn_workload_resumes_at_every_boundary() {
    let trace = churn_trace();
    let dynamics = churn_dynamics();
    let mk: Box<dyn Fn() -> Box<dyn CoflowScheduler>> =
        Box::new(|| Box::new(Saath::with_defaults()));
    for k in [1, 7, 50] {
        let rounds = assert_resume_equivalence(&trace, &dynamics, &*mk, k);
        assert!(
            rounds >= 200,
            "churn workload must cross 200 rounds, got {rounds}"
        );
    }
}

#[test]
fn aalo_resumes_cleanly() {
    // Aalo keeps no historical state (its book rebuilds from the view),
    // so its snapshots carry an empty scheduler blob — the resume path
    // must work for that shape too.
    let trace = churn_trace();
    let dynamics = churn_dynamics();
    let mk: Box<dyn Fn() -> Box<dyn CoflowScheduler>> =
        Box::new(|| Box::new(Aalo::with_defaults()));
    assert_resume_equivalence(&trace, &dynamics, &*mk, 13);
}

#[test]
fn resume_rejects_mismatched_runs() {
    let trace = churn_trace();
    let dynamics = churn_dynamics();
    let (_, log) = logged_run(&trace, &dynamics, &mut Saath::with_defaults(), 10);
    let idx = index_log(&log).unwrap();
    let snap = idx.snapshots.first().expect("no snapshot in log");

    // Wrong scheduler: the blob names saath, we resume under aalo.
    let err = simulate_resumable(
        &trace,
        &mut Aalo::with_defaults(),
        &SimConfig::default(),
        &dynamics,
        None,
        ReplayHooks {
            sink: None,
            snapshot_every: 0,
            resume_from: Some(&snap.blob),
        },
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Snapshot(_)), "{err}");

    // Wrong trace shape.
    let other = gen::generate(&gen::small(43, 12, 20));
    let err = simulate_resumable(
        &other,
        &mut Saath::with_defaults(),
        &SimConfig::default(),
        &dynamics,
        None,
        ReplayHooks {
            sink: None,
            snapshot_every: 0,
            resume_from: Some(&snap.blob),
        },
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Snapshot(_)), "{err}");

    // Truncated blob.
    let err = simulate_resumable(
        &trace,
        &mut Saath::with_defaults(),
        &SimConfig::default(),
        &dynamics,
        None,
        ReplayHooks {
            sink: None,
            snapshot_every: 0,
            resume_from: Some(&snap.blob[..snap.blob.len() / 2]),
        },
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Snapshot(_)), "{err}");
}
