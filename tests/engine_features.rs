//! End-to-end coverage of the engine features the headline experiments
//! don't exercise: pipelined data availability, event-driven δ=0 mode,
//! deep DAGs, the livelock safety valve, and the two Aalo inter-queue
//! models.

use saath::prelude::*;
use saath::workload::dag;

fn one_flow_trace(size: Bytes, available_after: Duration) -> Trace {
    let mut f = FlowSpec::new(NodeId(0), NodeId(1), size);
    f.available_after = available_after;
    Trace {
        num_nodes: 2,
        port_rate: Rate::gbps(1),
        coflows: vec![CoflowSpec::new(CoflowId(0), Time::ZERO, vec![f])],
    }
}

/// §4.3 pipelining: a flow whose data appears 2 s after CoFlow arrival
/// cannot start earlier, under any scheduler.
#[test]
fn pipelined_data_availability_delays_start() {
    let trace = one_flow_trace(Bytes(125_000_000), Duration::from_secs(2));
    for p in [Policy::saath(), Policy::aalo(), Policy::UcTcp] {
        let out = run_policy(&trace, &p, &SimConfig::default(), &DynamicsSpec::none()).unwrap();
        let cct = out.records[0].cct().as_secs_f64();
        // 2 s unavailable + 1 s transfer (+ δ slack).
        assert!((cct - 3.0).abs() < 0.05, "{}: cct {cct}", p.name());
    }
}

/// δ = 0 is the idealized event-driven coordinator: strictly no worse
/// than any finite δ, and exact on a single flow.
#[test]
fn event_driven_mode_is_exact() {
    let trace = one_flow_trace(Bytes(125_000_000), Duration::ZERO);
    let ideal = SimConfig {
        delta: Duration::ZERO,
        ..Default::default()
    };
    let out = run_policy(&trace, &Policy::saath(), &ideal, &DynamicsSpec::none()).unwrap();
    assert_eq!(
        out.records[0].cct(),
        Duration::from_secs(1),
        "event-driven must be exact"
    );

    // And a contended workload is never worse under δ=0 than δ=8ms.
    let trace = saath::workload::gen::generate(&saath::workload::gen::small(23, 10, 30));
    let delta8 = run_policy(
        &trace,
        &Policy::saath(),
        &SimConfig::default(),
        &DynamicsSpec::none(),
    )
    .unwrap();
    let delta0 = run_policy(&trace, &Policy::saath(), &ideal, &DynamicsSpec::none()).unwrap();
    assert!(
        delta0.avg_cct_secs() <= delta8.avg_cct_secs() * 1.01,
        "δ=0 ({}) worse than δ=8ms ({})",
        delta0.avg_cct_secs(),
        delta8.avg_cct_secs()
    );
}

/// A five-wave MapReduce job as a serialized CoFlow chain (§4.3
/// "multiple waves"): waves run strictly one after another.
#[test]
fn multi_wave_chain_serializes() {
    let wave = |id: u32| {
        CoflowSpec::new(
            CoflowId(id),
            Time::ZERO,
            vec![
                FlowSpec::new(NodeId(0), NodeId(2), Bytes(62_500_000)),
                FlowSpec::new(NodeId(1), NodeId(3), Bytes(62_500_000)),
            ],
        )
    };
    let coflows = dag::chain((0..5).map(wave).collect());
    let trace = Trace {
        num_nodes: 4,
        port_rate: Rate::gbps(1),
        coflows,
    };
    let out = run_policy(
        &trace,
        &Policy::saath(),
        &SimConfig::default(),
        &DynamicsSpec::none(),
    )
    .unwrap();
    assert_eq!(out.records.len(), 5);
    for w in out.records.windows(2) {
        assert!(
            w[1].released >= w[0].finish,
            "wave {} started before wave {} finished",
            w[1].id,
            w[0].id
        );
    }
    // Five waves of 0.5 s each.
    let makespan = out.records.last().unwrap().finish.as_secs_f64();
    assert!((makespan - 2.5).abs() < 0.1, "makespan {makespan}");
}

/// The livelock safety valve: a coordinator that never grants rates
/// trips the round limit instead of spinning forever.
#[test]
fn round_limit_catches_livelock() {
    struct NullScheduler;
    impl saath::core::CoflowScheduler for NullScheduler {
        fn name(&self) -> &'static str {
            "null"
        }
        fn compute(
            &mut self,
            _view: &saath::core::view::ClusterView<'_>,
            _bank: &mut saath::fabric::PortBank,
            _out: &mut saath::core::view::Schedule,
        ) {
        }
    }
    let trace = one_flow_trace(Bytes(1_000_000), Duration::ZERO);
    let cfg = SimConfig {
        max_rounds: 1000,
        ..Default::default()
    };
    let err = simulate(&trace, &mut NullScheduler, &cfg, &DynamicsSpec::none()).unwrap_err();
    assert!(matches!(err, saath::simulator::SimError::RoundLimit(1000)));
}

/// The two Aalo inter-queue models differ exactly as designed: under
/// weighted sharing a demoted CoFlow keeps trickling; under strict
/// priority it stops while higher queues are busy.
#[test]
fn aalo_weighted_vs_strict_priority() {
    use saath::simulator::simulate;
    // One long CoFlow that demotes early, plus a stream of fresh
    // CoFlows keeping Q0 busy on the same sender.
    let mut coflows = vec![CoflowSpec::new(
        CoflowId(0),
        Time::ZERO,
        vec![FlowSpec::new(NodeId(0), NodeId(1), Bytes::mb(100))],
    )];
    for i in 1..=20 {
        coflows.push(CoflowSpec::new(
            CoflowId(i),
            Time::from_millis(40 * i as u64),
            vec![FlowSpec::new(NodeId(0), NodeId(2), Bytes::mb(5))],
        ));
    }
    let trace = Trace {
        num_nodes: 3,
        port_rate: Rate::gbps(1),
        coflows,
    };

    let cfg = SimConfig::default();
    let mut weighted = Aalo::with_defaults();
    let w = simulate(&trace, &mut weighted, &cfg, &DynamicsSpec::none()).unwrap();
    let mut strict = Aalo::strict_priority(QueueConfig::default());
    let s = simulate(&trace, &mut strict, &cfg, &DynamicsSpec::none()).unwrap();

    assert_eq!(w.records.len(), 21);
    assert_eq!(s.records.len(), 21);
    // The fresh Q0 stream pays for the weighted trickle to the demoted
    // CoFlow: under strict priority it owns the port outright.
    let fresh_avg = |recs: &[CoflowRecord]| {
        recs.iter()
            .filter(|r| r.id != CoflowId(0))
            .map(|r| r.cct().as_secs_f64())
            .sum::<f64>()
            / 20.0
    };
    assert!(
        fresh_avg(&w.records) > fresh_avg(&s.records),
        "weighted sharing must slow the fresh stream: {} vs {}",
        fresh_avg(&w.records),
        fresh_avg(&s.records)
    );
}

/// Records expose flow-level FCTs consistent with the CoFlow times.
#[test]
fn record_internal_consistency() {
    let trace = saath::workload::gen::generate(&saath::workload::gen::small(29, 12, 40));
    let out = run_policy(
        &trace,
        &Policy::saath(),
        &SimConfig::default(),
        &DynamicsSpec::none(),
    )
    .unwrap();
    for r in &out.records {
        let max_fct = r.flow_fcts.iter().max().copied().unwrap();
        assert_eq!(
            r.released + max_fct,
            r.finish,
            "{}: last flow's FCT must define the finish time",
            r.id
        );
        assert_eq!(r.flow_sizes.len(), r.width);
        assert_eq!(r.total_bytes, r.flow_sizes.iter().copied().sum());
    }
}
