//! Cross-crate guarantees of the incremental simulation engine:
//!
//! 1. **Determinism** — the same seeded trace, policy, and dynamics
//!    always produce byte-identical [`CoflowRecord`]s.
//! 2. **Equivalence** — the incremental epoch loop ([`simulate`])
//!    produces records byte-identical to the straightforward
//!    recompute-everything loop ([`simulate_reference`]) it replaced,
//!    including under stragglers and node failures.
//!
//! The in-crate tests cover the paper's worked examples; these run a
//! scaled-down FB-like workload (the generator preset calibrated to the
//! paper's Facebook trace) through the public facade, so any future
//! engine change that breaks replay fidelity fails here too.

use saath::prelude::*;
use saath::simulator::simulate_reference;
use saath::workload::{gen, DynamicsEvent};

/// A scaled-down FB-like workload: same mix/bin/placement structure as
/// the paper's Facebook preset, fewer CoFlows so the reference loop
/// stays fast in CI.
fn mini_fb(seed: u64) -> Trace {
    let cfg = gen::GenConfig {
        num_nodes: 40,
        num_coflows: 60,
        span: Duration::from_secs(40),
        max_width: 1_600,
        ..gen::fb_like(seed)
    };
    gen::generate(&cfg)
}

fn stress_dynamics() -> DynamicsSpec {
    DynamicsSpec {
        events: vec![
            DynamicsEvent::Straggler {
                node: NodeId(3),
                at: Time::from_secs(2),
                until: Time::from_secs(12),
                num: 1,
                den: 5,
            },
            DynamicsEvent::NodeFailure {
                node: NodeId(7),
                at: Time::from_secs(5),
                restart_delay: Duration::from_millis(400),
            },
        ],
    }
}

#[test]
fn replay_is_deterministic() {
    let trace = mini_fb(11);
    let cfg = SimConfig::default();
    let dynamics = stress_dynamics();
    for policy in [Policy::saath(), Policy::aalo()] {
        let a = run_policy(&trace, &policy, &cfg, &dynamics).unwrap();
        let b = run_policy(&trace, &policy, &cfg, &dynamics).unwrap();
        assert_eq!(
            a.records,
            b.records,
            "{} replay not deterministic",
            policy.name()
        );
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.end, b.end);
    }
}

#[test]
fn incremental_loop_matches_reference_on_fb_like() {
    let trace = mini_fb(23);
    let cfg = SimConfig::default();
    let inc = simulate(
        &trace,
        &mut Saath::with_defaults(),
        &cfg,
        &DynamicsSpec::none(),
    )
    .unwrap();
    let re = simulate_reference(
        &trace,
        &mut Saath::with_defaults(),
        &cfg,
        &DynamicsSpec::none(),
    )
    .unwrap();
    assert_eq!(inc.records, re.records);
    assert_eq!(inc.rounds, re.rounds);
    assert_eq!(inc.end, re.end);
    assert_eq!(inc.records.len(), trace.coflows.len());
}

#[test]
fn incremental_loop_matches_reference_under_dynamics() {
    let trace = mini_fb(31);
    let cfg = SimConfig::default();
    let dynamics = stress_dynamics();
    let inc = simulate(&trace, &mut Saath::with_defaults(), &cfg, &dynamics).unwrap();
    let re = simulate_reference(&trace, &mut Saath::with_defaults(), &cfg, &dynamics).unwrap();
    assert_eq!(inc.records, re.records);
    assert_eq!(inc.rounds, re.rounds);
    assert_eq!(inc.end, re.end);
}

#[test]
fn telemetry_threading_is_inert() {
    // Threading a live `Telemetry` handle through the engine must not
    // change the simulation, whatever the feature state: records,
    // round count, and end time stay byte-identical to the plain
    // `simulate` entry point.
    let trace = mini_fb(59);
    let cfg = SimConfig::default();
    let dynamics = stress_dynamics();
    let plain = simulate(&trace, &mut Saath::with_defaults(), &cfg, &dynamics).unwrap();
    let mut tele = saath::telemetry::Telemetry::with_jsonl();
    let instrumented = saath::simulator::simulate_with_telemetry(
        &trace,
        &mut Saath::with_defaults(),
        &cfg,
        &dynamics,
        Some(&mut tele),
    )
    .unwrap();
    assert_eq!(plain.records, instrumented.records);
    assert_eq!(plain.rounds, instrumented.rounds);
    assert_eq!(plain.end, instrumented.end);
    if saath::telemetry::enabled() {
        assert!(tele.counter(saath::telemetry::Counter::SchedRounds) > 0);
        assert!(!tele.jsonl().is_empty());
    } else {
        // Feature off: the handle must stay untouched (zero-overhead).
        assert_eq!(tele.counter(saath::telemetry::Counter::SchedRounds), 0);
        assert!(tele.jsonl().is_empty());
    }
}

#[test]
fn incremental_contention_matches_full_rebuild_records() {
    // The delta-maintained `k_c` must be invisible in the output: with
    // `incremental_contention` on or off, records, round counts, and
    // end times stay byte-identical — including under stragglers and a
    // node failure, the churn that stresses footprint shrink/reset. (In
    // debug builds the scheduler additionally asserts the incremental
    // `k` against the `contention_into` oracle every single round.)
    let trace = mini_fb(67);
    let cfg = SimConfig::default();
    for dynamics in [DynamicsSpec::none(), stress_dynamics()] {
        let incr = simulate(&trace, &mut Saath::with_defaults(), &cfg, &dynamics).unwrap();
        let rebuilt = simulate(
            &trace,
            &mut Saath::new(SaathConfig {
                incremental_contention: false,
                ..SaathConfig::default()
            }),
            &cfg,
            &dynamics,
        )
        .unwrap();
        assert_eq!(incr.records, rebuilt.records);
        assert_eq!(incr.rounds, rebuilt.rounds);
        assert_eq!(incr.end, rebuilt.end);
    }
}

#[test]
fn incremental_contention_matches_under_skewed_thresholds() {
    // Skew-aware thresholds change *which* flows progress each round,
    // exercising a different footprint-churn pattern; the incremental
    // tracker must still be invisible.
    let trace = mini_fb(71);
    let cfg = SimConfig::default();
    let dynamics = stress_dynamics();
    let mk = |incremental: bool| {
        Saath::new(SaathConfig {
            skew_aware_thresholds: true,
            incremental_contention: incremental,
            ..SaathConfig::default()
        })
    };
    let incr = simulate(&trace, &mut mk(true), &cfg, &dynamics).unwrap();
    let rebuilt = simulate(&trace, &mut mk(false), &cfg, &dynamics).unwrap();
    assert_eq!(incr.records, rebuilt.records);
    assert_eq!(incr.rounds, rebuilt.rounds);
    assert_eq!(incr.end, rebuilt.end);
}

#[test]
fn sharded_probes_match_serial_schedule() {
    // With the `parallel` feature the gang-admission probes run
    // speculatively across shards and merge serially; the schedule must
    // be byte-identical to the serial path for any shard count. Forcing
    // several shards makes this meaningful even on single-core CI.
    // Without the feature, `probe_shards` must be inert.
    let trace = mini_fb(83);
    let cfg = SimConfig::default();
    let dynamics = stress_dynamics();
    let serial = simulate(
        &trace,
        &mut Saath::new(SaathConfig {
            probe_shards: 1,
            ..SaathConfig::default()
        }),
        &cfg,
        &dynamics,
    )
    .unwrap();
    for shards in [0usize, 2, 4, 7] {
        let sharded = simulate(
            &trace,
            &mut Saath::new(SaathConfig {
                probe_shards: shards,
                ..SaathConfig::default()
            }),
            &cfg,
            &dynamics,
        )
        .unwrap();
        assert_eq!(
            serial.records, sharded.records,
            "probe_shards = {shards} changed the schedule"
        );
        assert_eq!(serial.rounds, sharded.rounds);
        assert_eq!(serial.end, sharded.end);
    }
}

#[test]
fn incremental_loop_matches_reference_across_policies_and_deltas() {
    let trace = mini_fb(47);
    let dynamics = stress_dynamics();
    for delta_ms in [0u64, 8, 50] {
        let cfg = SimConfig {
            delta: Duration::from_millis(delta_ms),
            ..Default::default()
        };
        let inc = simulate(&trace, &mut Aalo::with_defaults(), &cfg, &dynamics).unwrap();
        let re = simulate_reference(&trace, &mut Aalo::with_defaults(), &cfg, &dynamics).unwrap();
        assert_eq!(
            inc.records, re.records,
            "aalo diverged at δ = {delta_ms} ms"
        );
        assert_eq!(inc.end, re.end);
    }
}
