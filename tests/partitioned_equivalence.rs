//! Acceptance suite for partitioned-compute sharding
//! (`saath_simulator::PartitionedScheduler`).
//!
//! The oracle contract: S=0 exchanges everything every round (no state
//! omitted), so the partitioned scheduler degenerates to PR 5's
//! replicated mode and must reproduce the single coordinator's records
//! **byte for byte** — including through the mid-run kill drill. S≥1
//! omits state for up to S−1 rounds between summary refreshes; records
//! may then deviate, but the deviation must be *bounded and monotone*:
//! more staleness can only make the schedule less informed, never more.

use saath::metrics::deviation::avg_cct_deviation;
use saath::prelude::*;
use saath::runtime::ShardedScheduler;
use saath::simulator::PartitionedScheduler;
use saath::workload::gen;

fn sim_cfg() -> SimConfig {
    SimConfig {
        delta: Duration::from_millis(400),
        ..Default::default()
    }
}

/// S=0 must be byte-identical to the single coordinator (and therefore
/// to the replicated `ShardedScheduler`) for K ∈ {1, 2, 4}.
#[test]
fn partitioned_s0_is_byte_identical_for_k124() {
    let mut cfg = gen::small(29, 12, 40);
    cfg.span = Duration::from_secs(20);
    let trace = gen::generate(&cfg);

    let mut single = Saath::with_defaults();
    let baseline = simulate(&trace, &mut single, &sim_cfg(), &DynamicsSpec::none()).unwrap();
    assert!(!baseline.records.is_empty());

    for k in [1usize, 2, 4] {
        let mut part = PartitionedScheduler::new(k, 0, SaathConfig::default());
        let out = simulate(&trace, &mut part, &sim_cfg(), &DynamicsSpec::none()).unwrap();
        assert_eq!(
            out.records, baseline.records,
            "K={k} S=0 diverged from the single-coordinator records"
        );
        assert_eq!(part.merge_clamps(), 0, "K={k}: S=0 replicas must agree");
        // The replicated `ShardedScheduler` is the same oracle.
        let mut sharded = ShardedScheduler::new(k, || Box::new(Saath::with_defaults()));
        let rep = simulate(&trace, &mut sharded, &sim_cfg(), &DynamicsSpec::none()).unwrap();
        assert_eq!(out.records, rep.records, "K={k}: S=0 != replicated mode");
    }
}

/// Same bar through the kill drill: all shard policies are recreated
/// mid-run (summaries lost), which at S=0 is exactly the replicated
/// restart path — so records must still match the single-coordinator
/// restart byte for byte.
#[test]
fn partitioned_s0_kill_drill_matches_single_restart() {
    let mut cfg = gen::small(31, 6, 80);
    cfg.span = Duration::from_secs(12);
    let trace = gen::generate(&cfg);
    let drill_at = Time::from_secs(8);

    let mut single =
        ShardedScheduler::with_restart(1, || Box::new(Saath::with_defaults()), drill_at);
    let baseline = simulate(&trace, &mut single, &sim_cfg(), &DynamicsSpec::none()).unwrap();
    assert!(!baseline.records.is_empty());

    // The drill must actually perturb the schedule, or the test is
    // vacuous.
    let mut plain = Saath::with_defaults();
    let no_restart = simulate(&trace, &mut plain, &sim_cfg(), &DynamicsSpec::none()).unwrap();
    assert_ne!(
        baseline.records, no_restart.records,
        "restart drill was a no-op; move drill_at into the active span"
    );

    for k in [1usize, 2, 4] {
        let mut part = PartitionedScheduler::with_restart(k, 0, SaathConfig::default(), drill_at);
        let out = simulate(&trace, &mut part, &sim_cfg(), &DynamicsSpec::none()).unwrap();
        assert_eq!(
            out.records, baseline.records,
            "K={k} S=0 kill drill diverged from the single-coordinator restart"
        );
    }
}

/// A partitioned run at S≥1 must also survive its kill drill: the run
/// completes every CoFlow and stays feasible (merge clamps only, no
/// panics), with summaries rebuilt after the restart.
#[test]
fn partitioned_s4_kill_drill_completes() {
    let mut cfg = gen::small(31, 6, 80);
    cfg.span = Duration::from_secs(12);
    let trace = gen::generate(&cfg);

    let mut part =
        PartitionedScheduler::with_restart(4, 4, SaathConfig::default(), Time::from_secs(8));
    let out = simulate(&trace, &mut part, &sim_cfg(), &DynamicsSpec::none()).unwrap();
    assert_eq!(out.records.len(), trace.coflows.len());
    assert!(part.summary_refreshes() > 0);
}

/// The randomized churn suite: ~200 scheduling rounds of arrivals,
/// completions, and departures per seed. Average CCT deviation against
/// the single-coordinator oracle must be 0 at S=0 and monotone
/// non-decreasing in S (averaged across seeds — a stale summary can
/// accidentally help one seed, but systematically more staleness must
/// not *reduce* deviation).
#[test]
fn churn_cct_deviation_is_monotone_in_staleness() {
    let seeds = [11u64, 23, 47];
    let staleness = [0u64, 1, 4, 16];
    // ~200 rounds: span 16 s at δ = 80 ms.
    let cfg = SimConfig {
        delta: Duration::from_millis(80),
        ..Default::default()
    };
    let mut avg = vec![0.0f64; staleness.len()];
    for &seed in &seeds {
        let mut gcfg = gen::small(seed, 14, 60);
        gcfg.span = Duration::from_secs(16);
        let trace = gen::generate(&gcfg);
        let mut single = Saath::with_defaults();
        let oracle = simulate(&trace, &mut single, &cfg, &DynamicsSpec::none()).unwrap();
        for (si, &s) in staleness.iter().enumerate() {
            let mut part = PartitionedScheduler::new(4, s, SaathConfig::default());
            let out = simulate(&trace, &mut part, &cfg, &DynamicsSpec::none()).unwrap();
            assert_eq!(out.records.len(), oracle.records.len(), "seed {seed} S={s}");
            let dev = avg_cct_deviation(&oracle.records, &out.records)
                .expect("matched records must yield a deviation");
            if s == 0 {
                assert_eq!(dev, 0.0, "seed {seed}: S=0 must be deviation-free");
            }
            avg[si] += dev / seeds.len() as f64;
        }
    }
    for w in avg.windows(2) {
        assert!(
            w[1] >= w[0],
            "avg CCT deviation not monotone in S: {avg:?} over S={staleness:?}"
        );
    }
}
