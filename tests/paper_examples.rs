//! End-to-end reproduction of the paper's worked examples (Figs 1, 4,
//! 5, 8, 17) through the public facade API: the exact CCTs the figures
//! annotate, produced by the real schedulers on the real engine.

use saath::prelude::*;
use saath::workload::paper_examples as ex;

fn cct(records: &[CoflowRecord], id: u32) -> f64 {
    records
        .iter()
        .find(|r| r.id == CoflowId(id))
        .unwrap_or_else(|| panic!("coflow {id} missing"))
        .cct()
        .as_secs_f64()
}

fn avg(records: &[CoflowRecord]) -> f64 {
    records.iter().map(|r| r.cct().as_secs_f64()).sum::<f64>() / records.len() as f64
}

fn run(trace: &Trace, p: &Policy) -> Vec<CoflowRecord> {
    run_policy(trace, p, &SimConfig::default(), &DynamicsSpec::none())
        .unwrap()
        .records
}

const TOL: f64 = 0.05;

/// Fig 1: Aalo's per-port FIFO runs C2 out of sync (average `1.75 t`);
/// Saath's LCoF + all-or-none recovers the optimal order (`1.25 t`).
#[test]
fn fig1_out_of_sync() {
    let trace = ex::fig1_out_of_sync();
    let aalo = run(&trace, &Policy::aalo());
    let saath = run(&trace, &Policy::saath());
    assert!((avg(&aalo) - 1.75).abs() < TOL, "aalo avg {}", avg(&aalo));
    assert!(
        (avg(&saath) - 1.25).abs() < TOL,
        "saath avg {}",
        avg(&saath)
    );
    // The narrow CoFlows C3/C4 are the ones Saath saves.
    assert!((cct(&aalo, 3) - 2.0).abs() < TOL);
    assert!((cct(&saath, 3) - 1.0).abs() < TOL);
    assert!((cct(&saath, 4) - 1.0).abs() < TOL);
    // C2 pays t either way (it is the bottleneck's last CoFlow).
    assert!(cct(&saath, 2) >= 1.95);
}

/// Fig 4: all-or-none alone idles a port (average `2 t`); work
/// conservation backfills it (`1.5 t` here).
#[test]
fn fig4_work_conservation() {
    let trace = ex::fig4_work_conservation();
    let strict = run(
        &trace,
        &Policy::Saath(SaathConfig {
            work_conservation: false,
            ..Default::default()
        }),
    );
    let with_wc = run(&trace, &Policy::saath());
    assert!((avg(&strict) - 2.0).abs() < TOL, "strict {}", avg(&strict));
    assert!((avg(&with_wc) - 1.5).abs() < TOL, "wc {}", avg(&with_wc));
    assert!((cct(&strict, 2) - 3.0).abs() < TOL);
    assert!((cct(&with_wc, 2) - 2.0).abs() < TOL);
}

/// Fig 5: with the queue threshold at `4·B·t`, Aalo's total-bytes rule
/// demotes the blocked wide CoFlow after `2t` of sending; Saath's
/// per-flow rule demotes it after `t` — twice as fast.
#[test]
fn fig5_fast_queue_transition() {
    use saath::core::QueueConfig;
    let b_t = saath::workload::paper_examples::units(10); // B·t bytes
    let q = QueueConfig {
        num_queues: 2,
        first_threshold: Bytes(b_t.as_u64() * 4),
        growth: 10,
    };
    // C2 has 4 flows, but only 2 can send at first (C1 blocks the other
    // two senders). After t of sending, each active flow has B·t bytes.
    let per_flow_progress = b_t;
    let width = 4;

    // Aalo: total sent = 2·B·t ≤ 4·B·t ⇒ still in Q0 after t, needs 2t.
    assert_eq!(q.queue_for_total(Bytes(per_flow_progress.as_u64() * 2)), 0);
    assert_eq!(
        q.queue_for_total(Bytes(per_flow_progress.as_u64() * 4 + 1)),
        1
    );

    // Saath: per-flow share is B·t ⇒ the first flow to exceed it (just
    // past t) demotes the whole CoFlow.
    assert_eq!(q.queue_for_per_flow(per_flow_progress, width), 0);
    assert_eq!(
        q.queue_for_per_flow(Bytes(per_flow_progress.as_u64() + 1), width),
        1
    );

    // And end-to-end: replaying the Fig 5 trace, the wide CoFlow under
    // Saath leaves Q0 roughly twice as early as under Aalo's rule —
    // observable as C2's flows yielding the contended senders sooner.
    let trace = ex::fig5_queue_transition();
    let saath = run(&trace, &Policy::saath());
    let aalo = run(&trace, &Policy::aalo());
    assert_eq!(saath.len(), 2);
    assert_eq!(aalo.len(), 2);
    // C1 (the long narrow CoFlow) finishes no later under Saath.
    assert!(cct(&saath, 1) <= cct(&aalo, 1) + TOL);
}

/// Fig 8: the documented LCoF limitation — scheduling the two
/// low-contention-but-long CoFlows first costs `2.83 t` average versus
/// the optimal `2.66 t` (which SEBF, knowing sizes, achieves).
#[test]
fn fig8_lcof_limitation() {
    let trace = ex::fig8_lcof_limitation();
    let saath = run(&trace, &Policy::saath());
    assert!(
        (avg(&saath) - 2.8333).abs() < TOL,
        "saath avg {}",
        avg(&saath)
    );
    assert!((cct(&saath, 1) - 3.5).abs() < TOL);

    let sebf = run(&trace, &Policy::Varys);
    assert!((avg(&sebf) - 2.6667).abs() < TOL, "sebf avg {}", avg(&sebf));
    assert!((cct(&sebf, 1) - 1.0).abs() < TOL, "optimal runs C1 first");
}

/// Fig 17 / Appendix A: SJF (SEBF here — C1's bottleneck of 5 is the
/// shortest) averages `9.3 t`; contention-aware LWTF averages `8.3 t`.
#[test]
fn fig17_sjf_suboptimal() {
    let trace = ex::fig17_sjf_suboptimal();
    let sebf = run(&trace, &Policy::Varys);
    let lwtf = run(&trace, &Policy::Lwtf);
    assert!((avg(&sebf) - 9.3333).abs() < TOL, "sebf {}", avg(&sebf));
    assert!((avg(&lwtf) - 8.3333).abs() < TOL, "lwtf {}", avg(&lwtf));
    // Exact per-CoFlow times of the appendix.
    assert!((cct(&sebf, 1) - 5.0).abs() < TOL);
    assert!((cct(&sebf, 2) - 11.0).abs() < TOL);
    assert!((cct(&sebf, 3) - 12.0).abs() < TOL);
    assert!((cct(&lwtf, 2) - 6.0).abs() < TOL);
    assert!((cct(&lwtf, 3) - 7.0).abs() < TOL);
    assert!((cct(&lwtf, 1) - 12.0).abs() < TOL);
}
