//! Cross-crate invariants: every scheduling policy, run through the
//! full engine on generated workloads, satisfies the properties the
//! evaluation relies on.

use saath::prelude::*;
use saath::workload::gen;

fn all_policies() -> Vec<Policy> {
    vec![
        Policy::saath(),
        Policy::Saath(SaathConfig::ablation_an()),
        Policy::Saath(SaathConfig::ablation_an_pf()),
        Policy::aalo(),
        Policy::Varys,
        Policy::Scf,
        Policy::Srtf,
        Policy::Lwtf,
        Policy::UcTcp,
    ]
}

/// Every policy completes every CoFlow of a contended workload — no
/// starvation, no livelock — and CCT accounting is sane.
#[test]
fn all_policies_complete_all_coflows() {
    let trace = gen::generate(&gen::small(21, 20, 70));
    let lower_bound: std::collections::HashMap<CoflowId, u64> = trace
        .coflows
        .iter()
        .map(|c| {
            // A CoFlow can never beat its bottleneck port running alone.
            let mut per_port = std::collections::HashMap::new();
            for f in &c.flows {
                *per_port.entry(("u", f.src)).or_insert(0u64) += f.size.as_u64();
                *per_port.entry(("d", f.dst)).or_insert(0u64) += f.size.as_u64();
            }
            let bottleneck = per_port.values().max().copied().unwrap_or(0);
            (c.id, bottleneck)
        })
        .collect();

    for p in all_policies() {
        let out = run_policy(&trace, &p, &SimConfig::default(), &DynamicsSpec::none())
            .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        assert_eq!(
            out.records.len(),
            trace.coflows.len(),
            "{} lost CoFlows",
            p.name()
        );
        assert_eq!(out.unfinished, 0, "{}", p.name());
        for r in &out.records {
            assert!(r.finish >= r.released, "{}: time ran backwards", p.name());
            assert_eq!(r.width, r.flow_fcts.len(), "{}: fct arity", p.name());
            // Physics: CCT ≥ bottleneck bytes / port rate.
            let min_ns =
                saath::simcore::units::transfer_time(Bytes(lower_bound[&r.id]), trace.port_rate)
                    .as_nanos();
            assert!(
                r.cct().as_nanos() >= min_ns,
                "{}: {} finished faster than its bottleneck allows ({} < {min_ns})",
                p.name(),
                r.id,
                r.cct().as_nanos(),
            );
            // Every flow finishes within the CoFlow's span.
            for fct in &r.flow_fcts {
                assert!(*fct <= r.cct(), "{}: flow outlived its CoFlow", p.name());
            }
        }
    }
}

/// Same seed, same policy → bit-identical records (full determinism
/// through generation + simulation).
#[test]
fn end_to_end_determinism() {
    let t1 = gen::generate(&gen::small(5, 15, 40));
    let t2 = gen::generate(&gen::small(5, 15, 40));
    assert_eq!(t1, t2);
    for p in [Policy::saath(), Policy::aalo(), Policy::UcTcp] {
        let a = run_policy(&t1, &p, &SimConfig::default(), &DynamicsSpec::none()).unwrap();
        let b = run_policy(&t2, &p, &SimConfig::default(), &DynamicsSpec::none()).unwrap();
        assert_eq!(a.records, b.records, "{}", p.name());
    }
}

/// The headline ordering on a contended workload: Saath beats Aalo at
/// the median; clairvoyant Varys is at least as good as Saath overall;
/// everything beats UC-TCP's tail.
#[test]
fn speedup_ordering_shape() {
    // A contended slice: compressed arrivals on few nodes. 90 CoFlows
    // over 15 s keeps several CoFlows in flight at once — the regime the
    // paper's claims are about. (At 40 s the median CoFlow runs *alone*,
    // where all policies are within one 8 ms coordination epoch of each
    // other and per-CoFlow ratios only measure quantization noise.)
    let mut cfg = gen::small(9, 16, 90);
    cfg.span = Duration::from_secs(15);
    let trace = gen::generate(&cfg);
    let sim = SimConfig::default();
    let run = |p: &Policy| {
        run_policy(&trace, p, &sim, &DynamicsSpec::none())
            .unwrap()
            .records
    };
    let aalo = run(&Policy::aalo());
    let saath = run(&Policy::saath());
    let varys = run(&Policy::Varys);
    let uctcp = run(&Policy::UcTcp);

    let s_over_a = SpeedupSummary::compute(&aalo, &saath).unwrap();
    assert!(
        s_over_a.median >= 1.0,
        "Saath lost to Aalo at the median: {s_over_a}"
    );

    let v_overall = SpeedupSummary::compute(&saath, &varys).unwrap();
    assert!(
        v_overall.overall >= 0.95,
        "online Saath should not beat clairvoyant Varys overall: {v_overall}"
    );

    let s_over_uc = SpeedupSummary::compute(&uctcp, &saath).unwrap();
    assert!(
        s_over_uc.p90 >= 1.5,
        "Saath should clearly beat UC-TCP in the tail: {s_over_uc}"
    );
    assert!(
        s_over_uc.median >= 0.9,
        "Saath should not lose to UC-TCP at the median: {s_over_uc}"
    );
}

/// Dynamics: a failed node slows exactly the CoFlows that touch it,
/// under every online policy.
#[test]
fn failures_are_contained() {
    let trace = gen::generate(&gen::small(31, 12, 30));
    let victim = NodeId(3);
    let dynamics = DynamicsSpec {
        events: vec![saath::workload::DynamicsEvent::NodeFailure {
            node: victim,
            at: Time::from_secs(2),
            restart_delay: Duration::from_millis(500),
        }],
    };
    for p in [Policy::saath(), Policy::aalo()] {
        let clean = run_policy(&trace, &p, &SimConfig::default(), &DynamicsSpec::none()).unwrap();
        let failed = run_policy(&trace, &p, &SimConfig::default(), &dynamics).unwrap();
        assert_eq!(failed.records.len(), trace.coflows.len(), "{}", p.name());
        for (c, f) in clean.records.iter().zip(&failed.records) {
            let touches = trace
                .coflows
                .iter()
                .find(|x| x.id == c.id)
                .unwrap()
                .flows
                .iter()
                .any(|fl| fl.src == victim || fl.dst == victim);
            if !touches && f.cct().as_nanos() > 2 * c.cct().as_nanos() + 1_000_000_000 {
                // Untouched CoFlows may shift (shared ports with victims)
                // but should not blow up wildly; a 2×+1s growth on a
                // non-touching CoFlow would indicate state corruption.
                panic!("{}: unrelated CoFlow {} blew up", p.name(), c.id);
            }
        }
    }
}

/// Arrival-scaling is the contention knob the paper says it is: faster
/// arrivals (higher A) never reduce total backlog time.
#[test]
fn arrival_compression_increases_ccts() {
    let trace = gen::generate(&gen::small(17, 14, 50));
    let sim = SimConfig::default();
    let mut prev_avg = 0.0;
    for a in [1u64, 2, 4] {
        let scaled = saath::workload::transform::scale_arrivals(&trace, a, 1);
        let out = run_policy(&scaled, &Policy::saath(), &sim, &DynamicsSpec::none()).unwrap();
        let avg = out.avg_cct_secs();
        assert!(
            avg + 1e-6 >= prev_avg * 0.9,
            "A={a}: avg CCT {avg} collapsed vs previous {prev_avg}"
        );
        prev_avg = avg;
    }
}
