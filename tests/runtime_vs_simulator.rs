//! The distributed runtime and the discrete-event simulator implement
//! the same coordination protocol around the same scheduler code; on
//! the same trace their CCTs must agree up to emulation noise (thread
//! scheduling jitter, δ-granular measurement).

use saath::prelude::*;
use saath::runtime::{emulate, EmulationConfig, ShardedScheduler};
use saath::workload::gen;

#[test]
fn emulation_tracks_simulation() {
    // Modest contention so jitter stays small relative to CCTs.
    let mut cfg = gen::small(13, 10, 16);
    cfg.span = Duration::from_secs(16);
    let trace = gen::generate(&cfg);

    // Simulator at the emulation's δ for apples-to-apples staleness.
    let sim_cfg = SimConfig {
        delta: Duration::from_millis(400),
        ..Default::default()
    };
    let sim = run_policy(&trace, &Policy::saath(), &sim_cfg, &DynamicsSpec::none()).unwrap();

    let emu_cfg = EmulationConfig {
        scale: 20,
        wall_deadline: std::time::Duration::from_secs(120),
        ..Default::default()
    };
    let emu = emulate(&trace, &|| Box::new(Saath::with_defaults()), &emu_cfg);
    assert!(!emu.coordinator.timed_out, "emulation timed out");
    assert_eq!(emu.coordinator.records.len(), sim.records.len());

    // Compare per-CoFlow CCTs: emulation is δ-granular and jittery, so
    // allow generous slack — but the two must be the same phenomenon,
    // not vaguely similar numbers.
    let mut ratios = Vec::new();
    for (s, e) in sim.records.iter().zip(&emu.coordinator.records) {
        assert_eq!(s.id, e.id);
        let sim_s = s.cct().as_secs_f64();
        let emu_s = e.cct().as_secs_f64();
        ratios.push(emu_s / sim_s.max(1e-9));
        assert!(
            emu_s < sim_s * 5.0 + 3.0,
            "{}: emulated {emu_s}s vs simulated {sim_s}s",
            s.id
        );
    }
    // The emulation's stats→compute→push pipeline adds a couple of δ of
    // lag per scheduling decision that the simulator's idealized
    // same-boundary application does not model, so the emulation runs
    // somewhat slower on average — but the two must stay the same
    // phenomenon, not vaguely similar numbers.
    // Aggregate comparison is robust to tiny-CCT coflows whose ratio is
    // dominated by one δ of lag.
    let sim_avg = sim.avg_cct_secs();
    let emu_avg = emu
        .coordinator
        .records
        .iter()
        .map(|r| r.cct().as_secs_f64())
        .sum::<f64>()
        / emu.coordinator.records.len() as f64;
    let agg = emu_avg / sim_avg.max(1e-9);
    assert!(
        (0.5..4.0).contains(&agg),
        "systematic emulation/simulation divergence: avg {emu_avg}s vs {sim_avg}s ({agg}x), per-coflow ratios {ratios:?}"
    );
}

/// The sharded coordinator's acceptance bar: byte-identical records vs
/// the single-coordinator path, proven in the deterministic simulator
/// domain (the wall-clock emulation jitters timestamps, so there the
/// sharded harness tests assert completion instead). Every shard runs
/// the full policy over the full view and emits only the CoFlows it
/// owns; the reconciler's flow-id-ordered merge reassembles exactly
/// the global schedule, so records must match bit for bit.
#[test]
fn sharded_records_are_byte_identical_to_single_coordinator() {
    let mut cfg = gen::small(29, 12, 40);
    cfg.span = Duration::from_secs(20);
    let trace = gen::generate(&cfg);
    let sim_cfg = SimConfig {
        delta: Duration::from_millis(400),
        ..Default::default()
    };

    let mut single = Saath::with_defaults();
    let baseline = simulate(&trace, &mut single, &sim_cfg, &DynamicsSpec::none()).unwrap();
    assert!(!baseline.records.is_empty());

    for k in [1usize, 2, 4] {
        let mut sharded = ShardedScheduler::new(k, || Box::new(Saath::with_defaults()));
        let out = simulate(&trace, &mut sharded, &sim_cfg, &DynamicsSpec::none()).unwrap();
        assert_eq!(
            out.records, baseline.records,
            "K={k} shards diverged from the single-coordinator records"
        );
    }
}

/// Same bar with the failover drill: all replicas rebuild mid-run.
/// K=1-with-restart *is* the single-coordinator restart path (one
/// replica, recreated at the drill time — exactly what the runtime's
/// `restart_at` does), so K ∈ {2, 4} with the same drill must
/// reproduce its records byte for byte.
#[test]
fn sharded_restart_drill_matches_single_coordinator_restart() {
    // Heavy contention: restart behaviour is only observable through
    // the starvation deadlines (the one piece of cross-round scheduler
    // state), which need long queues to fire.
    let mut cfg = gen::small(31, 6, 80);
    cfg.span = Duration::from_secs(12);
    let trace = gen::generate(&cfg);
    let sim_cfg = SimConfig {
        delta: Duration::from_millis(400),
        ..Default::default()
    };
    let drill_at = Time::from_secs(8);

    let mut single =
        ShardedScheduler::with_restart(1, || Box::new(Saath::with_defaults()), drill_at);
    let baseline = simulate(&trace, &mut single, &sim_cfg, &DynamicsSpec::none()).unwrap();
    assert!(!baseline.records.is_empty());

    // The drill must actually change behaviour relative to no-restart —
    // otherwise this test would pass vacuously.
    let mut plain = Saath::with_defaults();
    let no_restart = simulate(&trace, &mut plain, &sim_cfg, &DynamicsSpec::none()).unwrap();
    assert_ne!(
        baseline.records, no_restart.records,
        "restart drill was a no-op; move drill_at into the active span"
    );

    for k in [2usize, 4] {
        let mut sharded =
            ShardedScheduler::with_restart(k, || Box::new(Saath::with_defaults()), drill_at);
        let out = simulate(&trace, &mut sharded, &sim_cfg, &DynamicsSpec::none()).unwrap();
        assert_eq!(
            out.records, baseline.records,
            "K={k} restart drill diverged from the single-coordinator restart"
        );
    }
}

#[test]
fn emulation_relative_ordering_matches_simulation() {
    // Saath should beat Aalo (or tie) in both worlds on a contended
    // workload; the *comparison*, not just the absolute numbers, must
    // carry over — that is what Fig 15 claims for the real testbed.
    let mut cfg = gen::small(19, 8, 20);
    cfg.span = Duration::from_secs(10);
    let trace = gen::generate(&cfg);

    let emu_cfg = EmulationConfig {
        scale: 20,
        delta: Duration::from_millis(100),
        tick: Duration::from_millis(25),
        wall_deadline: std::time::Duration::from_secs(120),
        ..Default::default()
    };
    let saath = emulate(&trace, &|| Box::new(Saath::with_defaults()), &emu_cfg);
    let aalo = emulate(&trace, &|| Box::new(Aalo::with_defaults()), &emu_cfg);
    assert!(!saath.coordinator.timed_out && !aalo.coordinator.timed_out);

    let emu_speedup =
        SpeedupSummary::compute(&aalo.coordinator.records, &saath.coordinator.records).unwrap();

    let sim_cfg = SimConfig {
        delta: Duration::from_millis(100),
        ..Default::default()
    };
    let sim_saath = run_policy(&trace, &Policy::saath(), &sim_cfg, &DynamicsSpec::none()).unwrap();
    let sim_aalo = run_policy(&trace, &Policy::aalo(), &sim_cfg, &DynamicsSpec::none()).unwrap();
    let sim_speedup = SpeedupSummary::compute(&sim_aalo.records, &sim_saath.records).unwrap();

    // Same direction, same ballpark (ratio of medians within 2×).
    let ratio = emu_speedup.median / sim_speedup.median;
    assert!(
        (0.5..2.0).contains(&ratio),
        "emulated {emu_speedup} vs simulated {sim_speedup}"
    );
    assert!(
        emu_speedup.median >= 1.0 || sim_speedup.median < 1.1,
        "simulation says Saath wins but the emulation disagrees: \
         emulated {emu_speedup} vs simulated {sim_speedup}"
    );
}
