//! The differential harness end-to-end: event logs from equivalent runs
//! (sharded K ∈ {2, 4} coordinators vs single) must report *no
//! divergence*, and a run intentionally perturbed at round r must be
//! pinned to exactly round r with a field diff naming the flow and its
//! ports.

use saath::core::view::{ClusterView, CoflowScheduler, Schedule};
use saath::eventlog::{diff_logs, verify, ChainDigest, EventLogWriter, LogHeader};
use saath::fabric::PortBank;
use saath::prelude::*;
use saath::runtime::ShardedScheduler;
use saath::simulator::{simulate_resumable, ReplayHooks};
use saath::workload::gen;

fn trace() -> Trace {
    gen::generate(&gen::small(71, 14, 24))
}

fn header_for(trace: &Trace, scheduler: &str) -> LogHeader {
    LogHeader {
        num_nodes: trace.num_nodes as u64,
        port_rate: trace.port_rate.as_u64(),
        delta_ns: SimConfig::default().delta.as_nanos(),
        scheduler: scheduler.into(),
        trace_digest: ChainDigest::ZERO,
        start_round: 0,
        start_digest: ChainDigest::ZERO,
    }
}

fn log_run(trace: &Trace, sched: &mut dyn CoflowScheduler) -> Vec<u8> {
    let mut w = EventLogWriter::new(Vec::new(), &header_for(trace, sched.name())).unwrap();
    simulate_resumable(
        trace,
        sched,
        &SimConfig::default(),
        &DynamicsSpec::none(),
        None,
        ReplayHooks {
            sink: Some(&mut w),
            snapshot_every: 0,
            resume_from: None,
        },
    )
    .unwrap();
    w.into_inner().unwrap()
}

#[test]
fn sharded_coordinators_log_no_divergence() {
    let trace = trace();
    let single = log_run(&trace, &mut Saath::with_defaults());
    for k in [2usize, 4] {
        let mut sharded = ShardedScheduler::new(k, || Box::new(Saath::with_defaults()));
        let sharded_log = log_run(&trace, &mut sharded);
        let d = diff_logs(&single, &sharded_log).unwrap();
        assert_eq!(
            d.first_divergent_round,
            None,
            "K = {k} shards diverged from single coordinator: {}",
            d.render()
        );
        assert!(d.compared > 0);
        assert_eq!(d.only_in_a, 0);
        assert_eq!(d.only_in_b, 0);
        // Belt and braces: identical chains end on identical digests.
        assert_eq!(
            verify(&single[..]).unwrap().digest,
            verify(&sharded_log[..]).unwrap().digest
        );
    }
}

/// Wraps a scheduler and halves one granted rate at one chosen round —
/// the "one flipped rate" fault the differ must localize. Lowering a
/// rate keeps every port feasible, so the run stays valid; it just
/// evolves differently from the perturbed round on.
struct PerturbAt {
    inner: Saath,
    at_round: u64,
    round: u64,
    /// What was perturbed: (flow id, original rate), for the assertion.
    hit: Option<(u32, u64)>,
}

impl CoflowScheduler for PerturbAt {
    fn name(&self) -> &'static str {
        // Same name as the clean run: the logs must look comparable for
        // the differ to accept them (that is the realistic failure mode
        // — same build, one bad rate).
        self.inner.name()
    }

    fn compute(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule) {
        self.inner.compute(view, bank, out);
        if self.round == self.at_round {
            if let Some(slot) = out.rates.iter().position(|&(_, r)| r.as_u64() >= 2) {
                let (fid, rate) = out.rates[slot];
                out.rates[slot] = (fid, Rate(rate.as_u64() / 2));
                self.hit = Some((fid.0, rate.as_u64()));
            }
        }
        self.round += 1;
    }
}

#[test]
fn perturbed_rate_is_pinned_to_its_round_flow_and_port() {
    let trace = trace();
    let clean = log_run(&trace, &mut Saath::with_defaults());

    const R: u64 = 57;
    let mut bad_sched = PerturbAt {
        inner: Saath::with_defaults(),
        at_round: R,
        round: 0,
        hit: None,
    };
    let perturbed = log_run(&trace, &mut bad_sched);
    let (flow, orig_rate) = bad_sched.hit.expect("perturbation round never reached");

    let d = diff_logs(&clean, &perturbed).unwrap();
    assert_eq!(
        d.first_divergent_round,
        Some(R),
        "differ missed the perturbed round: {}",
        d.render()
    );
    // The minimal diff names the flipped flow and its ports, and the
    // clean side carries the original rate.
    let rate_diff = d
        .fields
        .iter()
        .find(|f| f.field.contains(&format!("flow {flow} ")))
        .unwrap_or_else(|| panic!("no field diff names flow {flow}: {}", d.render()));
    assert!(
        rate_diff.field.contains("uplink port") && rate_diff.field.contains("downlink port"),
        "diff does not name the ports: {}",
        rate_diff.field
    );
    assert_eq!(rate_diff.a, orig_rate.to_string());
    assert_eq!(rate_diff.b, (orig_rate / 2).to_string());

    // Before the flip the chains agree; from the flip on they never
    // re-join (the digest folds the whole prefix).
    let ci = saath::eventlog::index_log(&clean).unwrap();
    let pi = saath::eventlog::index_log(&perturbed).unwrap();
    assert_eq!(
        ci.rounds[(R - 1) as usize].digest,
        pi.rounds[(R - 1) as usize].digest
    );
    assert_ne!(ci.rounds[R as usize].digest, pi.rounds[R as usize].digest);
}

#[test]
fn incremental_and_reference_runs_could_be_compared_via_records() {
    // The reference loop has no logging hooks by design (it is the
    // frozen specification); cross-checking it against a logged
    // incremental run still works at the record level, which this pins
    // so the two notions of equivalence cannot drift apart silently.
    let trace = trace();
    let logged = {
        let mut w = EventLogWriter::new(Vec::new(), &header_for(&trace, "saath")).unwrap();
        let out = simulate_resumable(
            &trace,
            &mut Saath::with_defaults(),
            &SimConfig::default(),
            &DynamicsSpec::none(),
            None,
            ReplayHooks {
                sink: Some(&mut w),
                snapshot_every: 25,
                resume_from: None,
            },
        )
        .unwrap();
        (out, w.into_inner().unwrap())
    };
    let reference = saath::simulator::simulate_reference(
        &trace,
        &mut Saath::with_defaults(),
        &SimConfig::default(),
        &DynamicsSpec::none(),
    )
    .unwrap();
    assert_eq!(logged.0.records, reference.records);
    assert_eq!(logged.0.rounds, reference.rounds);
    let s = verify(&logged.1[..]).unwrap();
    assert_eq!(s.rounds, reference.rounds);
    assert!(s.snapshots > 0);
}
