//! Quickstart: generate a workload, replay it under Saath and Aalo,
//! and compare CoFlow completion times.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use saath::prelude::*;

fn main() {
    // A deterministic FB-like workload scaled down to run in ~a second:
    // 40 machines, 120 CoFlows with the paper's width/size mix.
    let trace = workload::gen::generate(&workload::gen::small(7, 40, 120));
    println!(
        "workload: {} CoFlows, {} flows, {:.1} GB over {} nodes",
        trace.coflows.len(),
        trace.num_flows(),
        trace.total_bytes().as_u64() as f64 / 1e9,
        trace.num_nodes,
    );

    // Replay with the paper's default parameters (K=10 queues, S=10 MB,
    // E=10, δ=8 ms).
    let cfg = SimConfig::default();
    let aalo = run_policy(&trace, &Policy::aalo(), &cfg, &DynamicsSpec::none()).unwrap();
    let saath = run_policy(&trace, &Policy::saath(), &cfg, &DynamicsSpec::none()).unwrap();

    println!(
        "Aalo : avg CCT {:.3}s over {} CoFlows",
        aalo.avg_cct_secs(),
        aalo.records.len()
    );
    println!(
        "Saath: avg CCT {:.3}s over {} CoFlows",
        saath.avg_cct_secs(),
        saath.records.len()
    );

    let speedup = SpeedupSummary::compute(&aalo.records, &saath.records).unwrap();
    println!("per-CoFlow speedup of Saath over Aalo: {speedup}");

    // The clairvoyant upper bound: Varys (SEBF + MADD) with perfect
    // knowledge of flow sizes.
    let varys = run_policy(&trace, &Policy::Varys, &cfg, &DynamicsSpec::none()).unwrap();
    let vs_varys = SpeedupSummary::compute(&varys.records, &saath.records).unwrap();
    println!("Saath vs clairvoyant Varys (≈1x is the goal): {vs_varys}");
}
