//! A hand-built MapReduce shuffle scenario — the paper's motivating
//! workload (§1): several jobs' shuffles sharing a small cluster, where
//! a wide shuffle head-of-line-blocks narrow ones under FIFO but not
//! under LCoF.
//!
//! ```sh
//! cargo run --release --example mapreduce_shuffle
//! ```

use saath::prelude::*;

/// Builds an M×R shuffle CoFlow with `mb_per_reducer` MB arriving at
/// each reducer.
fn shuffle(
    id: u32,
    arrival_ms: u64,
    mappers: &[u32],
    reducers: &[u32],
    mb_per_reducer: u64,
) -> CoflowSpec {
    let per_flow = Bytes::mb(mb_per_reducer).div_per_flow(mappers.len());
    let mut flows = Vec::new();
    for &r in reducers {
        for &m in mappers {
            flows.push(FlowSpec::new(NodeId(m), NodeId(r), per_flow));
        }
    }
    CoflowSpec::new(CoflowId(id), Time::from_millis(arrival_ms), flows)
}

fn main() {
    // 8 machines. Job 0 is a big 4×4 shuffle across the whole cluster;
    // jobs 1-4 are small 1×1 "joins" that keep arriving under it.
    let mut coflows = vec![shuffle(0, 0, &[0, 1, 2, 3], &[4, 5, 6, 7], 400)];
    for i in 1..=4 {
        coflows.push(shuffle(
            i,
            50 * i as u64,
            &[(i - 1) % 4],
            &[4 + (i - 1) % 4],
            25,
        ));
    }
    let trace = Trace {
        num_nodes: 8,
        port_rate: Rate::gbps(1),
        coflows,
    };
    trace.validate().unwrap();

    let cfg = SimConfig::default();
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "coflow", "aalo CCT", "saath CCT", "speedup"
    );
    let aalo = run_policy(&trace, &Policy::aalo(), &cfg, &DynamicsSpec::none()).unwrap();
    let saath = run_policy(&trace, &Policy::saath(), &cfg, &DynamicsSpec::none()).unwrap();
    for (a, s) in aalo.records.iter().zip(&saath.records) {
        assert_eq!(a.id, s.id);
        println!(
            "{:<12} {:>9.3}s {:>9.3}s {:>9.2}x",
            format!("{} (w={})", a.id, a.width),
            a.cct().as_secs_f64(),
            s.cct().as_secs_f64(),
            a.cct().as_nanos() as f64 / s.cct().as_nanos() as f64,
        );
    }
    println!(
        "\naverage CCT: aalo {:.3}s, saath {:.3}s — the small joins cut ahead of the\n\
         wide shuffle under LCoF + all-or-none, while the shuffle's own completion\n\
         barely moves (its bottleneck ports were always the constraint).",
        aalo.avg_cct_secs(),
        saath.avg_cct_secs()
    );
}
