//! The distributed runtime in action: a real coordinator and one agent
//! thread per node exchanging framed messages over **TCP loopback** —
//! the same code path a multi-host deployment would use — including a
//! mid-run coordinator crash + failover (§5: the coordinator is
//! stateless and rebuilds from the agents' next stats wave).
//!
//! ```sh
//! cargo run --release --example testbed_emulation
//! ```

use saath::prelude::*;
use saath::runtime::{emulate, EmulationConfig, TransportKind};

fn main() {
    // 16 nodes, 40 CoFlows. At time-scale 50 this replays in about two
    // wall-seconds.
    let trace = workload::gen::generate(&workload::gen::small(11, 16, 40));
    println!(
        "emulating {} CoFlows / {} flows on {} agent threads over TCP…",
        trace.coflows.len(),
        trace.num_flows(),
        trace.num_nodes
    );

    let cfg = EmulationConfig {
        transport: TransportKind::Tcp,
        // Kill the coordinator's scheduler partway through: agents keep
        // complying with the last schedule; the replacement rebuilds its
        // state from the next stats reports and re-derives deadlines.
        restart_coordinator_at: Some(Time::from_secs(20)),
        wall_deadline: std::time::Duration::from_secs(120),
        ..Default::default()
    };

    let saath = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
    assert!(!saath.coordinator.timed_out, "emulation timed out");
    println!(
        "saath: {} CoFlows completed, {} schedule epochs, coordinator restarted: {}",
        saath.coordinator.records.len(),
        saath.coordinator.epochs,
        saath.coordinator.restarted,
    );

    let aalo = emulate(&trace, &|| Box::new(Aalo::with_defaults()), &cfg);
    assert!(!aalo.coordinator.timed_out);

    let speedup =
        SpeedupSummary::compute(&aalo.coordinator.records, &saath.coordinator.records).unwrap();
    println!("emulated testbed, Saath over Aalo: {speedup}");
    println!("(timestamps are δ-granular coordinator observations, like a real deployment)");
}
