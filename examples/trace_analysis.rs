//! Workload tooling tour: write a trace in the public
//! `coflow-benchmark` format, parse it back, and reproduce the paper's
//! §2.3 out-of-sync analysis (Fig 2) on it.
//!
//! Pass a path to analyze a real trace file (e.g. the published
//! Facebook trace) instead of a generated one:
//!
//! ```sh
//! cargo run --release --example trace_analysis [FB2010-1Hr-150-0.txt]
//! ```

use saath::metrics::{bins, deviation, percentile};
use saath::prelude::*;
use saath::workload::io;

fn main() {
    let trace = match std::env::args().nth(1) {
        Some(path) => {
            println!("parsing {path}…");
            io::read_coflow_benchmark(std::path::Path::new(&path), Rate::gbps(1))
                .expect("valid coflow-benchmark file")
        }
        None => {
            // Generate, serialize, and re-parse — exercising the full
            // I/O round trip on the published format.
            let t = workload::gen::generate(&workload::gen::small(3, 30, 150));
            let text = io::write_coflow_benchmark(&t);
            println!("(generated a trace and round-tripped it through the text format)");
            io::parse_coflow_benchmark(&text, Rate::gbps(1)).expect("round trip")
        }
    };

    println!(
        "{} nodes, {} CoFlows, {} flows, {:.1} GB total, arrivals span {:.0}s\n",
        trace.num_nodes,
        trace.coflows.len(),
        trace.num_flows(),
        trace.total_bytes().as_u64() as f64 / 1e9,
        trace.arrival_span().as_secs_f64(),
    );

    // Structure: the flow-length mix of §2.3 and Table 1's bins.
    let n = trace.coflows.len() as f64;
    let single = trace.coflows.iter().filter(|c| c.width() == 1).count() as f64 / n;
    let equal = trace
        .coflows
        .iter()
        .filter(|c| c.width() > 1 && c.has_equal_flows())
        .count() as f64
        / n;
    println!(
        "single-flow: {:.0}%   multi equal: {:.0}%   multi uneven: {:.0}%",
        single * 100.0,
        equal * 100.0,
        (1.0 - single - equal) * 100.0
    );
    let mut bin_counts = [0usize; 4];
    for c in &trace.coflows {
        let b = bins::classify(c.total_size(), c.width());
        bin_counts[bins::Bin::ALL.iter().position(|x| *x == b).unwrap()] += 1;
    }
    for (b, count) in bins::Bin::ALL.iter().zip(bin_counts) {
        println!("{}: {:>5.1}%", b.label(), count as f64 / n * 100.0);
    }

    // Behaviour: replay under Aalo and measure the out-of-sync spread.
    println!("\nreplaying under Aalo to measure the out-of-sync problem (Fig 2c)…");
    let out = run_policy(
        &trace,
        &Policy::aalo(),
        &SimConfig::default(),
        &DynamicsSpec::none(),
    )
    .unwrap();
    let (eq_dev, uneq_dev) = deviation::fct_deviation_split(&out.records);
    let p = |v: &[f64], q| percentile(v, q).map(|x| x * 100.0).unwrap_or(f64::NAN);
    println!(
        "normalized FCT deviation, equal-length CoFlows:  P50 {:.0}%  P80 {:.0}%",
        p(&eq_dev, 50.0),
        p(&eq_dev, 80.0)
    );
    println!(
        "normalized FCT deviation, uneven-length CoFlows: P50 {:.0}%  P80 {:.0}%",
        p(&uneq_dev, 50.0),
        p(&uneq_dev, 80.0)
    );
    println!("(the paper reports >12% / >39% and >27% / >50% on the FB trace)");
}
