//! Multi-stage analytics query as a CoFlow DAG (§4.3): a Hive-style
//! diamond — one extract stage feeding two transform stages feeding a
//! final join — scheduled as *one CoFlow per stage*, which lets Saath
//! slow fast stages down without hurting the query's critical path.
//!
//! ```sh
//! cargo run --release --example dag_analytics
//! ```

use saath::prelude::*;
use saath::workload::dag;

fn stage(id: u32, srcs: &[u32], dsts: &[u32], mb: u64) -> CoflowSpec {
    let per_flow = Bytes::mb(mb).div_per_flow(srcs.len() * dsts.len());
    let mut flows = Vec::new();
    for &d in dsts {
        for &s in srcs {
            flows.push(FlowSpec::new(NodeId(s), NodeId(d), per_flow));
        }
    }
    CoflowSpec::new(CoflowId(id), Time::ZERO, flows)
}

fn main() {
    // 10 machines: the query's stages bounce data between two halves.
    let source = stage(0, &[0, 1], &[2, 3, 4, 5], 200);
    let middle = vec![
        stage(1, &[2, 3], &[6, 7], 120),
        stage(2, &[4, 5], &[6, 7], 80),
    ];
    let sink = stage(3, &[6, 7], &[8, 9], 150);
    let query = dag::diamond(source, middle, sink);

    // A competing ad-hoc query shares the cluster.
    let adhoc = CoflowSpec::new(
        CoflowId(4),
        Time::from_millis(100),
        vec![FlowSpec::new(NodeId(2), NodeId(8), Bytes::mb(60))],
    );

    let mut coflows = query;
    coflows.push(adhoc);
    let trace = Trace {
        num_nodes: 10,
        port_rate: Rate::gbps(1),
        coflows,
    };
    trace.validate().unwrap();

    let out = run_policy(
        &trace,
        &Policy::saath(),
        &SimConfig::default(),
        &DynamicsSpec::none(),
    )
    .unwrap();

    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "stage", "released", "finished", "CCT"
    );
    for r in &out.records {
        println!(
            "{:<8} {:>9.3}s {:>9.3}s {:>9.3}s",
            r.id.to_string(),
            r.released.as_secs_f64(),
            r.finish.as_secs_f64(),
            r.cct().as_secs_f64(),
        );
    }

    // The DAG's structure is honored: stage 3 starts only after both
    // middle stages are done, which start only after the source.
    let rec = |i: u32| out.records.iter().find(|r| r.id == CoflowId(i)).unwrap();
    assert!(rec(1).released >= rec(0).finish);
    assert!(rec(2).released >= rec(0).finish);
    assert!(rec(3).released >= rec(1).finish.max(rec(2).finish));
    println!(
        "\nquery makespan: {:.3}s (critical path through the slower transform stage)",
        rec(3).finish.as_secs_f64()
    );
}
