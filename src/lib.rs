//! # saath
//!
//! A production-quality Rust reproduction of **"Saath: Speeding up
//! CoFlows by Exploiting the Spatial Dimension"** (Jajoo, Gandhi, Koh,
//! Hu — CoNEXT 2017).
//!
//! Saath is an online (non-clairvoyant) CoFlow scheduler for datacenter
//! clusters. A *CoFlow* is the set of semantically-synchronized flows of
//! one job stage — the application advances only when the last of them
//! finishes — so the right objective is CoFlow completion time (CCT),
//! not per-flow metrics. Saath improves on Aalo by using the *spatial
//! dimension* of CoFlows (their footprint across many ports at once):
//!
//! * **all-or-none** gang admission — all of a CoFlow's flows are
//!   scheduled together or not at all, killing the *out-of-sync*
//!   problem;
//! * **per-flow queue thresholds** — the priority-queue demotion
//!   threshold is split across a CoFlow's flows, so one fast flow
//!   demotes the whole CoFlow early;
//! * **Least-Contention-First (LCoF)** — within a queue, schedule the
//!   CoFlow that blocks the fewest others first, with FIFO-derived
//!   deadlines guaranteeing starvation freedom.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`simcore`] | `saath-simcore` | deterministic time/events/RNG substrate |
//! | [`fabric`] | `saath-fabric` | big-switch fabric, rate-allocation primitives |
//! | [`workload`] | `saath-workload` | traces, generators, DAGs, dynamics |
//! | [`core`] | `saath-core` | Saath + every baseline scheduler |
//! | [`simulator`] | `saath-simulator` | trace-replay simulation engine |
//! | [`runtime`] | `saath-runtime` | distributed coordinator/agents runtime |
//! | [`metrics`] | `saath-metrics` | CCT statistics, bins, tables |
//! | [`telemetry`] | `saath-telemetry` | zero-overhead counters, mechanism stats, JSONL round traces |
//! | [`eventlog`] | `saath-eventlog` | hash-chained event logs, engine snapshots, first-divergence diffing |
//!
//! ## Quickstart
//!
//! ```
//! use saath::prelude::*;
//!
//! // A 20-node cluster, 30 CoFlows, deterministic seed.
//! let trace = workload::gen::generate(&workload::gen::small(7, 20, 30));
//!
//! // Replay under Saath and under Aalo, then compare CCTs.
//! let cfg = SimConfig::default();
//! let saath = run_policy(&trace, &Policy::saath(), &cfg, &DynamicsSpec::none()).unwrap();
//! let aalo = run_policy(&trace, &Policy::aalo(), &cfg, &DynamicsSpec::none()).unwrap();
//!
//! let speedup = SpeedupSummary::compute(&aalo.records, &saath.records).unwrap();
//! println!("Saath over Aalo: {speedup}");
//! assert_eq!(saath.records.len(), trace.coflows.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use saath_core as core;
pub use saath_eventlog as eventlog;
pub use saath_fabric as fabric;
pub use saath_metrics as metrics;
pub use saath_runtime as runtime;
pub use saath_simcore as simcore;
pub use saath_simulator as simulator;
pub use saath_telemetry as telemetry;
pub use saath_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::core::{
        Aalo, CoflowScheduler, OfflinePolicy, OfflineScheduler, QueueConfig, Saath, SaathConfig,
        UcTcp,
    };
    pub use crate::metrics::{CoflowRecord, SpeedupSummary};
    pub use crate::simcore::{Bytes, CoflowId, Duration, FlowId, NodeId, Rate, Time};
    pub use crate::simulator::{run_policy, simulate, Policy, SimConfig};
    pub use crate::workload::{self, CoflowSpec, DynamicsSpec, FlowSpec, Trace};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_line_up() {
        // The prelude's types are the workspace types, not copies.
        let _: crate::prelude::Bytes = crate::simcore::Bytes::mb(1);
        let cfg = crate::prelude::SaathConfig::default();
        assert!(cfg.all_or_none && cfg.lcof && cfg.per_flow_threshold);
    }
}
