//! Message transports: in-process channels and framed TCP.
//!
//! The coordinator and agents speak [`Message`]s over a [`Transport`].
//! Tests and the default emulation use [`InProcTransport`] (crossbeam
//! channels — zero-copy, no sockets); the `testbed_emulation` example
//! can run the identical binaries over [`TcpTransport`], which frames
//! messages with the `proto` length prefix on a real socket, the way
//! the paper's agents talk to the Azure coordinator VM.

use crate::proto::{Message, ProtoError};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration as WallDuration, Instant};

/// A transport failure.
#[derive(Debug)]
pub enum TransportError {
    /// The peer is gone (channel disconnected / socket closed).
    Disconnected,
    /// A malformed frame arrived.
    Proto(ProtoError),
    /// Socket I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Proto(e) => write!(f, "protocol error: {e}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<ProtoError> for TransportError {
    fn from(e: ProtoError) -> Self {
        TransportError::Proto(e)
    }
}

/// Cumulative per-endpoint traffic counters, maintained by every
/// transport and scraped into the metrics hub each epoch. Bytes are
/// the `proto` **encoded body** sizes (excluding the 4-byte length
/// prefix) for both transports — the in-proc path moves no wire bytes
/// but reports what the framed path would have, so the two transports
/// are comparable on the same dashboard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages sent.
    pub frames_sent: u64,
    /// Messages received.
    pub frames_recv: u64,
    /// Encoded body bytes sent.
    pub bytes_sent: u64,
    /// Encoded body bytes received.
    pub bytes_recv: u64,
    /// `recv_timeout` calls that expired with nothing to deliver —
    /// the poll-retry count of the δ loop.
    pub recv_timeouts: u64,
}

impl TransportStats {
    /// Adds `other` field-wise — used to aggregate a set of links
    /// (e.g. all agent transports) into one series.
    pub fn merge(&mut self, other: &TransportStats) {
        self.frames_sent += other.frames_sent;
        self.frames_recv += other.frames_recv;
        self.bytes_sent += other.bytes_sent;
        self.bytes_recv += other.bytes_recv;
        self.recv_timeouts += other.recv_timeouts;
    }
}

/// A bidirectional message pipe.
pub trait Transport: Send {
    /// Sends one message (non-blocking or cheaply buffered).
    fn send(&mut self, m: &Message) -> Result<(), TransportError>;

    /// Receives the next message, waiting at most `timeout`.
    /// `Ok(None)` = nothing arrived in time.
    fn recv_timeout(&mut self, timeout: WallDuration) -> Result<Option<Message>, TransportError>;

    /// Cumulative traffic counters for this endpoint. The default is
    /// all-zero so third-party transports keep compiling; both
    /// built-in transports maintain real counts.
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }

    /// Switches the endpoint to nonblocking mode: `send` queues frames
    /// in an outbound buffer drained by [`Transport::try_flush`], and
    /// `recv_timeout` returns `Ok(None)` immediately instead of
    /// waiting out its budget (callers wait via readiness polling on
    /// [`Transport::raw_fd`]). The default is a no-op — in-process
    /// channels never block an event loop in the first place.
    fn set_nonblocking(&mut self, _on: bool) -> Result<(), TransportError> {
        Ok(())
    }

    /// Writes as much queued outbound data as the peer will take
    /// without blocking. Returns `true` once the queue is empty.
    fn try_flush(&mut self) -> Result<bool, TransportError> {
        Ok(true)
    }

    /// Outbound bytes queued by nonblocking sends and not yet written
    /// to the wire — the backpressure signal event loops use to park
    /// writers when a peer stalls.
    fn queued_bytes(&self) -> usize {
        0
    }

    /// The raw OS file descriptor for readiness polling, when the
    /// endpoint is socket-backed. `None` for in-process transports.
    #[cfg(unix)]
    fn raw_fd(&self) -> Option<std::os::fd::RawFd> {
        None
    }
}

/// One end of an in-process transport.
pub struct InProcTransport {
    tx: Sender<Message>,
    rx: Receiver<Message>,
    stats: TransportStats,
}

/// Creates a connected pair of in-process endpoints.
pub fn inproc_pair(capacity: usize) -> (InProcTransport, InProcTransport) {
    let (atx, brx) = bounded(capacity);
    let (btx, arx) = bounded(capacity);
    (
        InProcTransport {
            tx: atx,
            rx: arx,
            stats: TransportStats::default(),
        },
        InProcTransport {
            tx: btx,
            rx: brx,
            stats: TransportStats::default(),
        },
    )
}

/// Whether an I/O error kind means "the peer is gone" rather than a
/// transient fault. `BrokenPipe` is what a closed socket surfaces on
/// write; `ConnectionReset` / `ConnectionAborted` are the same death
/// seen from the read side (or a RST) — all three must route to
/// [`TransportError::Disconnected`] so the failover path treats a dead
/// peer uniformly instead of bubbling a generic I/O error.
fn is_disconnect(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
    )
}

impl Transport for InProcTransport {
    fn send(&mut self, m: &Message) -> Result<(), TransportError> {
        // Mirror the framed path's sender-side size check so oversize
        // bugs surface identically under both transports.
        let len = m.encoded_len();
        if len > crate::proto::MAX_FRAME {
            return Err(TransportError::Proto(ProtoError::Oversized(len)));
        }
        self.tx
            .send(m.clone())
            .map_err(|_| TransportError::Disconnected)?;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += len as u64;
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: WallDuration) -> Result<Option<Message>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => {
                self.stats.frames_recv += 1;
                self.stats.bytes_recv += m.encoded_len() as u64;
                Ok(Some(m))
            }
            Err(RecvTimeoutError::Timeout) => {
                self.stats.recv_timeouts += 1;
                Ok(None)
            }
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// A framed TCP endpoint.
pub struct TcpTransport {
    stream: TcpStream,
    buf: BytesMut,
    /// Outbound bytes queued by nonblocking sends, flushed by
    /// [`Transport::try_flush`] as the socket accepts them. A frame is
    /// queued whole, so partial writes never interleave frames.
    out: BytesMut,
    nonblocking: bool,
    stats: TransportStats,
}

impl TcpTransport {
    /// Wraps a connected stream. Disables Nagle — schedule pushes are
    /// latency-critical and tiny.
    pub fn new(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            buf: BytesMut::with_capacity(8192),
            out: BytesMut::new(),
            nonblocking: false,
            stats: TransportStats::default(),
        })
    }

    /// Connects to a coordinator address.
    pub fn connect(addr: &str) -> std::io::Result<TcpTransport> {
        TcpTransport::new(TcpStream::connect(addr)?)
    }

    fn map_write_err(e: std::io::Error) -> TransportError {
        if is_disconnect(e.kind()) {
            TransportError::Disconnected
        } else {
            TransportError::Io(e)
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, m: &Message) -> Result<(), TransportError> {
        let frame = m.encode()?;
        if self.nonblocking {
            // Queue the whole frame, then opportunistically flush.
            // The queue is unbounded here; event loops bound it by
            // checking `queued_bytes()` before generating new frames
            // (see `host::WRITE_HIGH_WATER`), so a stalled peer
            // back-pressures its own producers instead of blocking
            // the shared loop.
            self.out.extend_from_slice(&frame);
            self.stats.frames_sent += 1;
            self.stats.bytes_sent += m.encoded_len() as u64;
            self.try_flush()?;
            return Ok(());
        }
        // Blocking mode: drain anything a nonblocking phase left
        // queued, then write the frame in full.
        if !self.out.is_empty() {
            let queued = self.out.split_to(self.out.len());
            self.stream
                .write_all(&queued)
                .map_err(Self::map_write_err)?;
        }
        self.stream.write_all(&frame).map_err(Self::map_write_err)?;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += m.encoded_len() as u64;
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: WallDuration) -> Result<Option<Message>, TransportError> {
        // Drain any frame already buffered.
        if let Some(m) = Message::decode_stream(&mut self.buf)? {
            self.stats.frames_recv += 1;
            self.stats.bytes_recv += m.encoded_len() as u64;
            return Ok(Some(m));
        }
        // One deadline for the whole call. A partial frame re-enters the
        // read loop with only the *remaining* budget armed, so a peer
        // trickling bytes (one per timeout) cannot hold the caller past
        // its deadline — each partial read used to re-arm the full
        // timeout, stretching a t-deadline wait to frame_len × t.
        let deadline = Instant::now() + timeout;
        let mut chunk = [0u8; 4096];
        loop {
            // Arm the *remaining* budget (min 1 µs so a zero timeout
            // still performs exactly one non-blocking-ish poll). In
            // nonblocking mode the socket returns immediately either
            // way; skip the timeout syscall.
            if !self.nonblocking {
                let remaining = deadline.saturating_duration_since(Instant::now());
                self.stream
                    .set_read_timeout(Some(remaining.max(WallDuration::from_micros(1))))
                    .map_err(TransportError::Io)?;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    if let Some(m) = Message::decode_stream(&mut self.buf)? {
                        self.stats.frames_recv += 1;
                        self.stats.bytes_recv += m.encoded_len() as u64;
                        return Ok(Some(m));
                    }
                    // Partial frame: keep reading, but only within what
                    // is left of the deadline; the incomplete frame
                    // stays buffered for the next call to finish.
                    if Instant::now() >= deadline {
                        self.stats.recv_timeouts += 1;
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    self.stats.recv_timeouts += 1;
                    return Ok(None);
                }
                Err(e) if is_disconnect(e.kind()) => return Err(TransportError::Disconnected),
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn set_nonblocking(&mut self, on: bool) -> Result<(), TransportError> {
        if !on && !self.out.is_empty() {
            // Re-entering blocking mode must not strand queued frames:
            // drain them synchronously first.
            self.stream
                .set_nonblocking(false)
                .map_err(TransportError::Io)?;
            let queued = self.out.split_to(self.out.len());
            self.stream
                .write_all(&queued)
                .map_err(Self::map_write_err)?;
        }
        self.stream
            .set_nonblocking(on)
            .map_err(TransportError::Io)?;
        self.nonblocking = on;
        Ok(())
    }

    fn try_flush(&mut self) -> Result<bool, TransportError> {
        while !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => {
                    let _ = self.out.split_to(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_disconnect(e.kind()) => return Err(TransportError::Disconnected),
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
        Ok(true)
    }

    fn queued_bytes(&self) -> usize {
        self.out.len()
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> Option<std::os::fd::RawFd> {
        use std::os::fd::AsRawFd as _;
        Some(self.stream.as_raw_fd())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FlowStat, RateAssignment};

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello { node: 3 },
            Message::Stats {
                node: 3,
                now_ns: 99,
                flows: vec![FlowStat {
                    flow: 1,
                    sent: 5,
                    finished: false,
                    ready: true,
                }],
            },
            Message::Schedule {
                epoch: 7,
                rates: vec![RateAssignment {
                    flow: 1,
                    rate: 1000,
                }],
            },
            Message::Shutdown,
        ]
    }

    #[test]
    fn inproc_roundtrip_and_timeout() {
        let (mut a, mut b) = inproc_pair(16);
        for m in sample_messages() {
            a.send(&m).unwrap();
            let got = b
                .recv_timeout(WallDuration::from_millis(100))
                .unwrap()
                .unwrap();
            assert_eq!(got, m);
        }
        // Nothing pending → timeout returns None.
        assert!(b
            .recv_timeout(WallDuration::from_millis(5))
            .unwrap()
            .is_none());
        // Reverse direction works too.
        b.send(&Message::Hello { node: 9 }).unwrap();
        assert_eq!(
            a.recv_timeout(WallDuration::from_millis(100)).unwrap(),
            Some(Message::Hello { node: 9 })
        );
    }

    #[test]
    fn inproc_disconnect_is_detected() {
        let (mut a, b) = inproc_pair(4);
        drop(b);
        assert!(matches!(
            a.recv_timeout(WallDuration::from_millis(5)),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            // Echo everything until shutdown.
            loop {
                match t.recv_timeout(WallDuration::from_secs(5)).unwrap() {
                    Some(Message::Shutdown) => {
                        t.send(&Message::Shutdown).unwrap();
                        break;
                    }
                    Some(m) => t.send(&m).unwrap(),
                    None => {}
                }
            }
        });

        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        for m in sample_messages() {
            client.send(&m).unwrap();
            let got = client
                .recv_timeout(WallDuration::from_secs(5))
                .unwrap()
                .unwrap();
            assert_eq!(got, m);
        }
        server.join().unwrap();
    }

    /// A peer trickling one byte per delay must not stretch
    /// `recv_timeout` past its deadline: the remaining budget shrinks on
    /// every partial read instead of re-arming in full. The message must
    /// still assemble across calls once all bytes arrive.
    #[test]
    fn tcp_partial_frames_respect_the_deadline() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let msg = Message::Stats {
            node: 5,
            now_ns: 1_234,
            flows: vec![FlowStat {
                flow: 9,
                sent: 77,
                finished: false,
                ready: true,
            }],
        };
        let frame = msg.encode().unwrap();
        let n_bytes = frame.len();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // One byte every 10 ms: the whole frame takes ~n×10 ms,
            // far beyond any single 40 ms recv budget below.
            for b in frame.iter() {
                stream.write_all(&[*b]).unwrap();
                stream.flush().unwrap();
                std::thread::sleep(WallDuration::from_millis(10));
            }
            // Hold the socket open until the client is done reading.
            std::thread::sleep(WallDuration::from_millis(400));
        });

        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        let budget = WallDuration::from_millis(40);
        let mut got = None;
        let mut calls = 0u32;
        while got.is_none() && calls < 100 {
            let t0 = Instant::now();
            got = client.recv_timeout(budget).unwrap();
            let waited = t0.elapsed();
            calls += 1;
            // The old code re-armed the full timeout per byte, waiting
            // up to n_bytes × budget. 3× slack absorbs scheduler jitter
            // while still catching any per-byte re-arm regression.
            assert!(
                waited < budget * 3,
                "recv_timeout blocked {waited:?} (budget {budget:?}, frame {n_bytes} bytes)"
            );
        }
        assert_eq!(got, Some(msg), "frame never assembled across calls");
        assert!(
            calls > 1,
            "frame arrived in one call — trickle server not trickling?"
        );
        server.join().unwrap();
    }

    /// Both transports report the same frame/byte counts for the same
    /// message set (encoded-body sizes), and timeouts are counted.
    #[test]
    fn transport_stats_agree_across_transports() {
        let msgs = sample_messages();
        let expect_bytes: u64 = msgs.iter().map(|m| m.encoded_len() as u64).sum();

        let (mut a, mut b) = inproc_pair(16);
        for m in &msgs {
            a.send(m).unwrap();
            b.recv_timeout(WallDuration::from_millis(100)).unwrap();
        }
        b.recv_timeout(WallDuration::from_millis(1)).unwrap();
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(
            (sa.frames_sent, sa.bytes_sent),
            (msgs.len() as u64, expect_bytes)
        );
        assert_eq!(
            (sb.frames_recv, sb.bytes_recv),
            (msgs.len() as u64, expect_bytes)
        );
        assert_eq!(sb.recv_timeouts, 1);

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let n = msgs.len();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            let mut got = 0;
            while got < n {
                if t.recv_timeout(WallDuration::from_secs(5))
                    .unwrap()
                    .is_some()
                {
                    got += 1;
                }
            }
            t.stats()
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        for m in &msgs {
            client.send(m).unwrap();
        }
        let server_stats = server.join().unwrap();
        let cs = client.stats();
        assert_eq!(cs, sa, "tcp sender must match inproc sender");
        assert_eq!(
            (server_stats.frames_recv, server_stats.bytes_recv),
            (msgs.len() as u64, expect_bytes)
        );
    }

    #[test]
    fn disconnect_error_kinds_are_unified() {
        // All three "peer is gone" kinds map to Disconnected; everything
        // else stays a plain I/O error for the caller to report.
        assert!(is_disconnect(ErrorKind::BrokenPipe));
        assert!(is_disconnect(ErrorKind::ConnectionReset));
        assert!(is_disconnect(ErrorKind::ConnectionAborted));
        assert!(!is_disconnect(ErrorKind::WouldBlock));
        assert!(!is_disconnect(ErrorKind::PermissionDenied));
    }

    #[test]
    fn oversized_send_fails_on_the_sender() {
        let (mut a, _b) = inproc_pair(4);
        let rates = vec![
            crate::proto::RateAssignment { flow: 0, rate: 0 };
            crate::proto::MAX_FRAME / 12 + 1
        ];
        let err = a
            .send(&Message::Schedule { epoch: 1, rates })
            .expect_err("oversized send must fail");
        assert!(matches!(
            err,
            TransportError::Proto(ProtoError::Oversized(_))
        ));
    }

    /// Nonblocking sends must never block the caller: once the kernel
    /// socket buffer fills, frames queue in the transport's outbound
    /// buffer (`queued_bytes` > 0) and drain via `try_flush` as the
    /// peer reads — with every frame arriving intact and in order.
    #[test]
    fn nonblocking_send_queues_and_flushes_without_blocking() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let big = Message::Stats {
            node: 1,
            now_ns: 2,
            flows: (0..100_000)
                .map(|i| FlowStat {
                    flow: i,
                    sent: i as u64,
                    finished: false,
                    ready: true,
                })
                .collect(),
        };
        let n = 32;
        let expect = big.clone();
        // The server must not read a byte until every send has
        // returned — otherwise a concurrent drain could keep the
        // kernel buffers from ever filling and the queue assertion
        // would be racy.
        let (sends_done_tx, sends_done_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            sends_done_rx.recv().unwrap();
            for _ in 0..n {
                let m = t
                    .recv_timeout(WallDuration::from_secs(10))
                    .unwrap()
                    .expect("frame");
                assert_eq!(m, expect, "frame corrupted across partial writes");
            }
        });

        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        client.set_nonblocking(true).unwrap();
        let mut saw_queue = false;
        let t0 = Instant::now();
        for _ in 0..n {
            client.send(&big).unwrap();
            saw_queue |= client.queued_bytes() > 0;
        }
        // ~45 MB against a socket nobody is reading: the sends must
        // return fast (no blocking) and the overflow — far more than
        // any kernel buffer pair holds — must be queued locally.
        assert!(
            t0.elapsed() < WallDuration::from_secs(5),
            "nonblocking sends blocked for {:?}",
            t0.elapsed()
        );
        assert!(saw_queue, "outbound queue never engaged");
        sends_done_tx.send(()).unwrap();

        let deadline = Instant::now() + WallDuration::from_secs(30);
        while !client.try_flush().unwrap() {
            assert!(Instant::now() < deadline, "flush never completed");
            std::thread::sleep(WallDuration::from_millis(1));
        }
        assert_eq!(client.queued_bytes(), 0);
        server.join().unwrap();
        assert_eq!(client.stats().frames_sent, n as u64);
    }

    #[cfg(unix)]
    #[test]
    fn raw_fd_is_exposed_only_for_sockets() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _srv = std::thread::spawn(move || listener.accept());
        let client = TcpTransport::connect(&addr.to_string()).unwrap();
        assert!(client.raw_fd().is_some());
        let (a, _b) = inproc_pair(4);
        let boxed: Box<dyn Transport> = Box::new(a);
        assert!(boxed.raw_fd().is_none());
        assert_eq!(boxed.queued_bytes(), 0);
    }

    #[test]
    fn tcp_timeout_returns_none() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _keep = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(WallDuration::from_millis(300));
            drop(stream);
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        let got = client.recv_timeout(WallDuration::from_millis(20)).unwrap();
        assert!(got.is_none());
    }
}
