//! Message transports: in-process channels and framed TCP.
//!
//! The coordinator and agents speak [`Message`]s over a [`Transport`].
//! Tests and the default emulation use [`InProcTransport`] (crossbeam
//! channels — zero-copy, no sockets); the `testbed_emulation` example
//! can run the identical binaries over [`TcpTransport`], which frames
//! messages with the `proto` length prefix on a real socket, the way
//! the paper's agents talk to the Azure coordinator VM.

use crate::proto::{Message, ProtoError};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration as WallDuration;

/// A transport failure.
#[derive(Debug)]
pub enum TransportError {
    /// The peer is gone (channel disconnected / socket closed).
    Disconnected,
    /// A malformed frame arrived.
    Proto(ProtoError),
    /// Socket I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Proto(e) => write!(f, "protocol error: {e}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<ProtoError> for TransportError {
    fn from(e: ProtoError) -> Self {
        TransportError::Proto(e)
    }
}

/// A bidirectional message pipe.
pub trait Transport: Send {
    /// Sends one message (non-blocking or cheaply buffered).
    fn send(&mut self, m: &Message) -> Result<(), TransportError>;

    /// Receives the next message, waiting at most `timeout`.
    /// `Ok(None)` = nothing arrived in time.
    fn recv_timeout(&mut self, timeout: WallDuration) -> Result<Option<Message>, TransportError>;
}

/// One end of an in-process transport.
pub struct InProcTransport {
    tx: Sender<Message>,
    rx: Receiver<Message>,
}

/// Creates a connected pair of in-process endpoints.
pub fn inproc_pair(capacity: usize) -> (InProcTransport, InProcTransport) {
    let (atx, brx) = bounded(capacity);
    let (btx, arx) = bounded(capacity);
    (
        InProcTransport { tx: atx, rx: arx },
        InProcTransport { tx: btx, rx: brx },
    )
}

impl Transport for InProcTransport {
    fn send(&mut self, m: &Message) -> Result<(), TransportError> {
        self.tx
            .send(m.clone())
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&mut self, timeout: WallDuration) -> Result<Option<Message>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

/// A framed TCP endpoint.
pub struct TcpTransport {
    stream: TcpStream,
    buf: BytesMut,
}

impl TcpTransport {
    /// Wraps a connected stream. Disables Nagle — schedule pushes are
    /// latency-critical and tiny.
    pub fn new(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            buf: BytesMut::with_capacity(8192),
        })
    }

    /// Connects to a coordinator address.
    pub fn connect(addr: &str) -> std::io::Result<TcpTransport> {
        TcpTransport::new(TcpStream::connect(addr)?)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, m: &Message) -> Result<(), TransportError> {
        let frame = m.encode();
        self.stream.write_all(&frame).map_err(|e| {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                TransportError::Disconnected
            } else {
                TransportError::Io(e)
            }
        })
    }

    fn recv_timeout(&mut self, timeout: WallDuration) -> Result<Option<Message>, TransportError> {
        // Drain any frame already buffered.
        if let Some(m) = Message::decode_stream(&mut self.buf)? {
            return Ok(Some(m));
        }
        self.stream
            .set_read_timeout(Some(timeout.max(WallDuration::from_micros(1))))
            .map_err(TransportError::Io)?;
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    if let Some(m) = Message::decode_stream(&mut self.buf)? {
                        return Ok(Some(m));
                    }
                    // Partial frame: keep reading within the timeout
                    // (approximation: we re-arm the full timeout, which
                    // only ever waits *longer*, never spuriously fails).
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FlowStat, RateAssignment};

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello { node: 3 },
            Message::Stats {
                node: 3,
                now_ns: 99,
                flows: vec![FlowStat {
                    flow: 1,
                    sent: 5,
                    finished: false,
                    ready: true,
                }],
            },
            Message::Schedule {
                epoch: 7,
                rates: vec![RateAssignment {
                    flow: 1,
                    rate: 1000,
                }],
            },
            Message::Shutdown,
        ]
    }

    #[test]
    fn inproc_roundtrip_and_timeout() {
        let (mut a, mut b) = inproc_pair(16);
        for m in sample_messages() {
            a.send(&m).unwrap();
            let got = b
                .recv_timeout(WallDuration::from_millis(100))
                .unwrap()
                .unwrap();
            assert_eq!(got, m);
        }
        // Nothing pending → timeout returns None.
        assert!(b
            .recv_timeout(WallDuration::from_millis(5))
            .unwrap()
            .is_none());
        // Reverse direction works too.
        b.send(&Message::Hello { node: 9 }).unwrap();
        assert_eq!(
            a.recv_timeout(WallDuration::from_millis(100)).unwrap(),
            Some(Message::Hello { node: 9 })
        );
    }

    #[test]
    fn inproc_disconnect_is_detected() {
        let (mut a, b) = inproc_pair(4);
        drop(b);
        assert!(matches!(
            a.recv_timeout(WallDuration::from_millis(5)),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            // Echo everything until shutdown.
            loop {
                match t.recv_timeout(WallDuration::from_secs(5)).unwrap() {
                    Some(Message::Shutdown) => {
                        t.send(&Message::Shutdown).unwrap();
                        break;
                    }
                    Some(m) => t.send(&m).unwrap(),
                    None => {}
                }
            }
        });

        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        for m in sample_messages() {
            client.send(&m).unwrap();
            let got = client
                .recv_timeout(WallDuration::from_secs(5))
                .unwrap()
                .unwrap();
            assert_eq!(got, m);
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_timeout_returns_none() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _keep = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(WallDuration::from_millis(300));
            drop(stream);
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        let got = client.recv_timeout(WallDuration::from_millis(20)).unwrap();
        assert!(got.is_none());
    }
}
