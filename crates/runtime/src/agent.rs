//! The local agent: one per machine (Fig 6).
//!
//! An agent owns the flows whose *sender* is its node. It emulates the
//! machine's NIC with token-bucket byte counters: every tick it credits
//! each flow `rate × elapsed` bytes, capped at the flow's size — the
//! fluid equivalent of a socket draining at an enforced rate, which is
//! all that matters for completion times. Every δ it reports per-flow
//! statistics to the coordinator (bytes sent, finished, data-ready),
//! and whenever a schedule push arrives it applies the new rates —
//! *complying with the previous schedule until then*, exactly as §5
//! prescribes. Stale *and duplicate* pushes (epoch ≤ the last applied
//! one) are ignored, which makes agent behaviour correct across
//! coordinator restarts and idempotent under retransmitted pushes.

use crate::clock::EmuClock;
use crate::metrics::MetricsHub;
use crate::proto::{FlowStat, Message, RateAssignment};
use crate::transport::{Transport, TransportError};
use saath_simcore::units::bytes_in;
use saath_simcore::{Bytes, Duration, Rate, Time};
use saath_telemetry::Phase;
use std::sync::Arc;

/// One flow assigned to an agent (its node is the sender).
#[derive(Clone, Debug)]
pub struct AgentFlow {
    /// Dense flow id (shared with the coordinator's registry).
    pub flow: u32,
    /// Total bytes to move.
    pub size: Bytes,
    /// When the owning CoFlow arrives (simulated time).
    pub activate_at: Time,
    /// When the flow's data becomes available (≥ `activate_at`).
    pub ready_at: Time,
}

struct LiveFlow {
    spec: AgentFlow,
    sent: Bytes,
    rate: Rate,
}

/// Runs one agent until shutdown. Returns the number of schedule
/// epochs applied (diagnostics).
pub fn run_agent(
    node: u32,
    flows: Vec<AgentFlow>,
    transport: Box<dyn Transport>,
    clock: EmuClock,
    delta: Duration,
    tick: Duration,
) -> Result<u64, TransportError> {
    run_agent_with_metrics(node, flows, transport, clock, delta, tick, None)
}

/// [`run_agent`] with an optional handle on the live metrics plane:
/// each schedule application is timed into the `agent_apply` phase
/// (the hub is `Arc`-shared because agents run on their own threads).
#[allow(clippy::too_many_arguments)]
pub fn run_agent_with_metrics(
    node: u32,
    flows: Vec<AgentFlow>,
    mut transport: Box<dyn Transport>,
    clock: EmuClock,
    delta: Duration,
    tick: Duration,
    hub: Option<Arc<MetricsHub>>,
) -> Result<u64, TransportError> {
    transport.send(&Message::Hello { node })?;

    let mut live: Vec<LiveFlow> = flows
        .into_iter()
        .map(|spec| LiveFlow {
            spec,
            sent: Bytes::ZERO,
            rate: Rate::ZERO,
        })
        .collect();
    live.sort_by_key(|f| f.spec.flow);

    let mut last_epoch: u64 = 0;
    let mut epochs_applied: u64 = 0;
    let mut last_advance = clock.now();
    let mut last_report = Time::ZERO;
    let tick_wall = clock.to_wall(tick);

    loop {
        // 1. Apply any pending schedule pushes (newest epoch wins).
        loop {
            match transport.recv_timeout(std::time::Duration::ZERO) {
                Ok(Some(Message::Schedule { epoch, rates })) => {
                    // Strictly newer wins: a duplicated push of the same
                    // epoch (retransmit, shard fan-out) must be a no-op,
                    // not double-counted in `epochs_applied`.
                    if epoch > last_epoch {
                        last_epoch = epoch;
                        epochs_applied += 1;
                        let _span = hub.as_deref().map(|h| h.span(Phase::AgentApply));
                        apply_schedule(&mut live, &rates);
                    }
                }
                Ok(Some(Message::Shutdown)) => return Ok(epochs_applied),
                Ok(Some(_)) | Ok(None) => break,
                Err(TransportError::Disconnected) => return Ok(epochs_applied),
                Err(e) => return Err(e),
            }
        }

        // 2. Advance the emulated NIC by the actually-elapsed time.
        let now = clock.now();
        let dt = now.saturating_since(last_advance);
        last_advance = now;
        for f in &mut live {
            if f.rate.is_zero() || f.sent >= f.spec.size || now < f.spec.ready_at {
                continue;
            }
            f.sent = (f.sent + bytes_in(f.rate, dt)).min(f.spec.size);
        }

        // 3. Report stats every δ.
        if now.saturating_since(last_report) >= delta || last_report == Time::ZERO {
            last_report = now;
            let stats: Vec<FlowStat> = live
                .iter()
                .filter(|f| f.spec.activate_at <= now)
                .map(|f| FlowStat {
                    flow: f.spec.flow,
                    sent: f.sent.as_u64(),
                    finished: f.sent >= f.spec.size,
                    ready: f.spec.ready_at <= now,
                })
                .collect();
            match transport.send(&Message::Stats {
                node,
                now_ns: now.as_nanos(),
                flows: stats,
            }) {
                Ok(()) => {}
                Err(TransportError::Disconnected) => return Ok(epochs_applied),
                Err(e) => return Err(e),
            }
        }

        // 4. Nap until roughly the next tick (the recv poll above keeps
        // schedule latency below one tick).
        match transport.recv_timeout(tick_wall) {
            Ok(Some(Message::Schedule { epoch, rates })) => {
                if epoch > last_epoch {
                    last_epoch = epoch;
                    epochs_applied += 1;
                    let _span = hub.as_deref().map(|h| h.span(Phase::AgentApply));
                    apply_schedule(&mut live, &rates);
                }
            }
            Ok(Some(Message::Shutdown)) => return Ok(epochs_applied),
            Ok(Some(_)) | Ok(None) => {}
            Err(TransportError::Disconnected) => return Ok(epochs_applied),
            Err(e) => return Err(e),
        }
    }
}

fn apply_schedule(live: &mut [LiveFlow], rates: &[RateAssignment]) {
    // Flows absent from a push are paused (§4.2: unlisted = rate 0).
    for f in live.iter_mut() {
        f.rate = Rate::ZERO;
    }
    for r in rates {
        if let Ok(i) = live.binary_search_by_key(&r.flow, |f| f.spec.flow) {
            live[i].rate = Rate(r.rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::inproc_pair;

    /// Drives a one-flow agent through a full lifecycle from the
    /// coordinator's side of the transport.
    #[test]
    fn agent_sends_at_the_assigned_rate_and_reports() {
        let (coord_side, agent_side) = inproc_pair(64);
        let clock = EmuClock::start(100); // 100× wall
        let flow = AgentFlow {
            flow: 7,
            size: Bytes::mb(50),
            activate_at: Time::ZERO,
            ready_at: Time::ZERO,
        };
        let c2 = clock.clone();
        let handle = std::thread::spawn(move || {
            run_agent(
                3,
                vec![flow],
                Box::new(agent_side),
                c2,
                Duration::from_millis(400), // sim δ = 4 ms wall
                Duration::from_millis(100),
            )
        });

        let mut coord: Box<dyn Transport> = Box::new(coord_side);
        // Hello first.
        let hello = coord
            .recv_timeout(std::time::Duration::from_secs(2))
            .unwrap()
            .unwrap();
        assert_eq!(hello, Message::Hello { node: 3 });

        // Give the flow 1 Gbps (sim): 50 MB takes 0.4 sim-s = 4 wall-ms.
        coord
            .send(&Message::Schedule {
                epoch: 1,
                rates: vec![RateAssignment {
                    flow: 7,
                    rate: 125_000_000,
                }],
            })
            .unwrap();

        // Wait for a stats report that shows completion.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut finished = false;
        let mut last_sent = 0;
        while std::time::Instant::now() < deadline && !finished {
            if let Some(Message::Stats { node, flows, .. }) = coord
                .recv_timeout(std::time::Duration::from_millis(200))
                .unwrap()
            {
                assert_eq!(node, 3);
                if let Some(st) = flows.iter().find(|f| f.flow == 7) {
                    assert!(st.sent >= last_sent, "sent must be monotone");
                    assert!(st.sent <= Bytes::mb(50).as_u64(), "overshoot");
                    last_sent = st.sent;
                    finished = st.finished;
                }
            }
        }
        assert!(finished, "flow never finished (sent {last_sent})");

        coord.send(&Message::Shutdown).unwrap();
        let epochs = handle.join().unwrap().unwrap();
        assert!(epochs >= 1);
    }

    #[test]
    fn unready_flows_do_not_send_and_stale_epochs_are_ignored() {
        let (coord_side, agent_side) = inproc_pair(64);
        let clock = EmuClock::start(100);
        let flow = AgentFlow {
            flow: 1,
            size: Bytes::mb(10),
            activate_at: Time::ZERO,
            // Data not ready for 1000 simulated seconds (10 wall s —
            // far beyond this test's observation window).
            ready_at: Time::from_secs(1000),
        };
        let c2 = clock.clone();
        let handle = std::thread::spawn(move || {
            run_agent(
                0,
                vec![flow],
                Box::new(agent_side),
                c2,
                Duration::from_millis(400),
                Duration::from_millis(100),
            )
        });
        let mut coord: Box<dyn Transport> = Box::new(coord_side);
        let _hello = coord
            .recv_timeout(std::time::Duration::from_secs(2))
            .unwrap();

        // Assign a rate with epoch 5, then a *stale* epoch-3 push that
        // would zero it; the agent must keep epoch 5's view... and in
        // either case, send nothing (data not ready).
        coord
            .send(&Message::Schedule {
                epoch: 5,
                rates: vec![RateAssignment {
                    flow: 1,
                    rate: 125_000_000,
                }],
            })
            .unwrap();
        coord
            .send(&Message::Schedule {
                epoch: 3,
                rates: vec![],
            })
            .unwrap();

        std::thread::sleep(std::time::Duration::from_millis(50));
        // Observe stats for a bounded window (the agent reports every
        // few wall-ms, so an unbounded drain would never end).
        let mut sent = None;
        let until = std::time::Instant::now() + std::time::Duration::from_millis(200);
        while std::time::Instant::now() < until {
            if let Some(Message::Stats { flows, .. }) = coord
                .recv_timeout(std::time::Duration::from_millis(20))
                .unwrap()
            {
                if let Some(st) = flows.iter().find(|f| f.flow == 1) {
                    assert!(!st.ready, "flow reported ready far too early");
                    sent = Some(st.sent);
                }
            }
        }
        assert_eq!(sent, Some(0), "unready flow must not send");
        coord.send(&Message::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
    }

    /// A retransmitted push of the *same* epoch must be a no-op: the
    /// agent applies it once and `epochs_applied` counts it once.
    #[test]
    fn duplicate_epoch_pushes_are_applied_once() {
        let (coord_side, agent_side) = inproc_pair(64);
        let clock = EmuClock::start(100);
        let flow = AgentFlow {
            flow: 2,
            size: Bytes::mb(10),
            activate_at: Time::ZERO,
            ready_at: Time::ZERO,
        };
        let c2 = clock.clone();
        let handle = std::thread::spawn(move || {
            run_agent(
                1,
                vec![flow],
                Box::new(agent_side),
                c2,
                Duration::from_millis(400),
                Duration::from_millis(100),
            )
        });
        let mut coord: Box<dyn Transport> = Box::new(coord_side);
        let _hello = coord
            .recv_timeout(std::time::Duration::from_secs(2))
            .unwrap();

        // Push epoch 1 three times (e.g. a shard fan-out duplicating
        // the reconciler's push), then a genuinely new epoch 2.
        let push = Message::Schedule {
            epoch: 1,
            rates: vec![RateAssignment {
                flow: 2,
                rate: 125_000_000,
            }],
        };
        coord.send(&push).unwrap();
        coord.send(&push).unwrap();
        coord.send(&push).unwrap();
        coord
            .send(&Message::Schedule {
                epoch: 2,
                rates: vec![RateAssignment {
                    flow: 2,
                    rate: 250_000_000,
                }],
            })
            .unwrap();

        // Let the agent drain all four pushes before shutting down.
        std::thread::sleep(std::time::Duration::from_millis(100));
        coord.send(&Message::Shutdown).unwrap();
        let epochs = handle.join().unwrap().unwrap();
        assert_eq!(epochs, 2, "duplicates must not inflate epochs_applied");
    }
}
