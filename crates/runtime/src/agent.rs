//! The local agent: one per machine (Fig 6).
//!
//! An agent owns the flows whose *sender* is its node. It emulates the
//! machine's NIC with token-bucket byte counters: every tick it credits
//! each flow `rate × elapsed` bytes, capped at the flow's size — the
//! fluid equivalent of a socket draining at an enforced rate, which is
//! all that matters for completion times. Every δ it reports per-flow
//! statistics to the coordinator (bytes sent, finished, data-ready),
//! and whenever a schedule push arrives it applies the new rates —
//! *complying with the previous schedule until then*, exactly as §5
//! prescribes. Stale *and duplicate* pushes (epoch ≤ the last applied
//! one) are ignored, which makes agent behaviour correct across
//! coordinator restarts and idempotent under retransmitted pushes.
//!
//! The per-agent state machine lives in [`AgentCore`], a plain value
//! with no transport or thread of its own: `on_message` folds in a
//! schedule push, `advance` moves the emulated NIC to `now`, and
//! `take_stats` emits the δ-interval report when one is due. The
//! classic one-thread-per-agent driver ([`run_agent`]) and the
//! multiplexed [`crate::host::run_agent_host`] event loop both drive
//! the same core, so the two wirings cannot drift behaviourally.

use crate::clock::EmuClock;
use crate::metrics::MetricsHub;
use crate::proto::{FlowStat, Message, RateAssignment};
use crate::transport::{Transport, TransportError};
use saath_simcore::units::bytes_in;
use saath_simcore::{Bytes, Duration, Rate, Time};
use saath_telemetry::Phase;
use std::sync::Arc;

/// One flow assigned to an agent (its node is the sender).
#[derive(Clone, Debug)]
pub struct AgentFlow {
    /// Dense flow id (shared with the coordinator's registry).
    pub flow: u32,
    /// Total bytes to move.
    pub size: Bytes,
    /// When the owning CoFlow arrives (simulated time).
    pub activate_at: Time,
    /// When the flow's data becomes available (≥ `activate_at`).
    pub ready_at: Time,
}

struct LiveFlow {
    spec: AgentFlow,
    sent: Bytes,
    rate: Rate,
}

/// The per-agent state machine: NIC byte counters, the last applied
/// schedule epoch, and δ-report bookkeeping. Transport-agnostic — the
/// caller owns the link and the clock and feeds in messages and `now`.
pub struct AgentCore {
    node: u32,
    live: Vec<LiveFlow>,
    last_epoch: u64,
    epochs_applied: u64,
    last_advance: Time,
    /// `None` until the first report is sent — distinguishing "never
    /// reported" from "reported at simulated time zero", so an agent
    /// started before the emulated clock moves off zero reports once,
    /// not once per loop iteration.
    last_report: Option<Time>,
    delta: Duration,
}

impl AgentCore {
    /// Builds the state machine for `node` owning `flows`, reporting
    /// every `delta`. `now` seeds the NIC's last-advance mark.
    pub fn new(node: u32, flows: Vec<AgentFlow>, delta: Duration, now: Time) -> AgentCore {
        let mut live: Vec<LiveFlow> = flows
            .into_iter()
            .map(|spec| LiveFlow {
                spec,
                sent: Bytes::ZERO,
                rate: Rate::ZERO,
            })
            .collect();
        live.sort_by_key(|f| f.spec.flow);
        AgentCore {
            node,
            live,
            last_epoch: 0,
            epochs_applied: 0,
            last_advance: now,
            last_report: None,
            delta,
        }
    }

    /// The node this agent emulates.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Schedule epochs applied so far (diagnostics).
    pub fn epochs_applied(&self) -> u64 {
        self.epochs_applied
    }

    /// The agent's opening handshake frame.
    pub fn hello(&self) -> Message {
        Message::Hello { node: self.node }
    }

    /// Folds one inbound message into the state machine. Returns
    /// `true` when the message was a [`Message::Shutdown`] and the
    /// caller should stop driving this agent.
    pub fn on_message(&mut self, m: &Message, hub: Option<&MetricsHub>) -> bool {
        match m {
            Message::Schedule { epoch, rates } => {
                // Strictly newer wins: a duplicated push of the same
                // epoch (retransmit, shard fan-out) must be a no-op,
                // not double-counted in `epochs_applied`.
                if *epoch > self.last_epoch {
                    self.last_epoch = *epoch;
                    self.epochs_applied += 1;
                    let _span = hub.map(|h| h.span(Phase::AgentApply));
                    apply_schedule(&mut self.live, rates);
                }
                false
            }
            Message::Shutdown => true,
            _ => false,
        }
    }

    /// Advances the emulated NIC to `now`, crediting each flow
    /// `rate × elapsed` bytes. The credited interval is clamped per
    /// flow to `now - max(last_advance, ready_at)`: a flow whose data
    /// became ready mid-tick earns bytes only for the portion of the
    /// tick it was actually ready, instead of a full `dt` of
    /// pre-ready transfer.
    pub fn advance(&mut self, now: Time) {
        let last = self.last_advance;
        self.last_advance = now;
        for f in &mut self.live {
            if f.rate.is_zero() || f.sent >= f.spec.size || now < f.spec.ready_at {
                continue;
            }
            let dt = now.saturating_since(last.max(f.spec.ready_at));
            f.sent = (f.sent + bytes_in(f.rate, dt)).min(f.spec.size);
        }
    }

    /// Whether a δ-interval stats report is due at `now`.
    pub fn stats_due(&self, now: Time) -> bool {
        match self.last_report {
            None => true,
            Some(t) => now.saturating_since(t) >= self.delta,
        }
    }

    /// Builds the δ-interval stats report, or `None` when no report is
    /// due — or when no owned flow has activated yet, so there is
    /// nothing to say (a multiplexed host of 100k mostly-idle agents
    /// must not flood the coordinator with empty frames; the due-mark
    /// is left unset so the first *contentful* report goes out
    /// immediately once a flow activates).
    pub fn take_stats(&mut self, now: Time) -> Option<Message> {
        if !self.stats_due(now) {
            return None;
        }
        let stats: Vec<FlowStat> = self
            .live
            .iter()
            .filter(|f| f.spec.activate_at <= now)
            .map(|f| FlowStat {
                flow: f.spec.flow,
                sent: f.sent.as_u64(),
                finished: f.sent >= f.spec.size,
                ready: f.spec.ready_at <= now,
            })
            .collect();
        if stats.is_empty() {
            return None;
        }
        self.last_report = Some(now);
        Some(Message::Stats {
            node: self.node,
            now_ns: now.as_nanos(),
            flows: stats,
        })
    }
}

/// Runs one agent until shutdown. Returns the number of schedule
/// epochs applied (diagnostics).
pub fn run_agent(
    node: u32,
    flows: Vec<AgentFlow>,
    transport: Box<dyn Transport>,
    clock: EmuClock,
    delta: Duration,
    tick: Duration,
) -> Result<u64, TransportError> {
    run_agent_with_metrics(node, flows, transport, clock, delta, tick, None)
}

/// [`run_agent`] with an optional handle on the live metrics plane:
/// each schedule application is timed into the `agent_apply` phase
/// (the hub is `Arc`-shared because agents run on their own threads).
#[allow(clippy::too_many_arguments)]
pub fn run_agent_with_metrics(
    node: u32,
    flows: Vec<AgentFlow>,
    mut transport: Box<dyn Transport>,
    clock: EmuClock,
    delta: Duration,
    tick: Duration,
    hub: Option<Arc<MetricsHub>>,
) -> Result<u64, TransportError> {
    let mut core = AgentCore::new(node, flows, delta, clock.now());
    transport.send(&core.hello())?;
    let tick_wall = clock.to_wall(tick);

    loop {
        // 1. Apply any pending schedule pushes (newest epoch wins).
        loop {
            match transport.recv_timeout(std::time::Duration::ZERO) {
                Ok(Some(m)) => {
                    if core.on_message(&m, hub.as_deref()) {
                        return Ok(core.epochs_applied());
                    }
                }
                Ok(None) => break,
                Err(TransportError::Disconnected) => return Ok(core.epochs_applied()),
                Err(e) => return Err(e),
            }
        }

        // 2+3. Advance the emulated NIC by the actually-elapsed time,
        // then report stats every δ.
        let now = clock.now();
        core.advance(now);
        if let Some(report) = core.take_stats(now) {
            match transport.send(&report) {
                Ok(()) => {}
                Err(TransportError::Disconnected) => return Ok(core.epochs_applied()),
                Err(e) => return Err(e),
            }
        }

        // 4. Nap until roughly the next tick (the recv poll above keeps
        // schedule latency below one tick).
        match transport.recv_timeout(tick_wall) {
            Ok(Some(m)) => {
                if core.on_message(&m, hub.as_deref()) {
                    return Ok(core.epochs_applied());
                }
            }
            Ok(None) => {}
            Err(TransportError::Disconnected) => return Ok(core.epochs_applied()),
            Err(e) => return Err(e),
        }
    }
}

fn apply_schedule(live: &mut [LiveFlow], rates: &[RateAssignment]) {
    // Flows absent from a push are paused (§4.2: unlisted = rate 0).
    for f in live.iter_mut() {
        f.rate = Rate::ZERO;
    }
    for r in rates {
        if let Ok(i) = live.binary_search_by_key(&r.flow, |f| f.spec.flow) {
            live[i].rate = Rate(r.rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::inproc_pair;

    /// Drives a one-flow agent through a full lifecycle from the
    /// coordinator's side of the transport.
    #[test]
    fn agent_sends_at_the_assigned_rate_and_reports() {
        let (coord_side, agent_side) = inproc_pair(64);
        let clock = EmuClock::start(100); // 100× wall
        let flow = AgentFlow {
            flow: 7,
            size: Bytes::mb(50),
            activate_at: Time::ZERO,
            ready_at: Time::ZERO,
        };
        let c2 = clock.clone();
        let handle = std::thread::spawn(move || {
            run_agent(
                3,
                vec![flow],
                Box::new(agent_side),
                c2,
                Duration::from_millis(400), // sim δ = 4 ms wall
                Duration::from_millis(100),
            )
        });

        let mut coord: Box<dyn Transport> = Box::new(coord_side);
        // Hello first.
        let hello = coord
            .recv_timeout(std::time::Duration::from_secs(2))
            .unwrap()
            .unwrap();
        assert_eq!(hello, Message::Hello { node: 3 });

        // Give the flow 1 Gbps (sim): 50 MB takes 0.4 sim-s = 4 wall-ms.
        coord
            .send(&Message::Schedule {
                epoch: 1,
                rates: vec![RateAssignment {
                    flow: 7,
                    rate: 125_000_000,
                }],
            })
            .unwrap();

        // Wait for a stats report that shows completion.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut finished = false;
        let mut last_sent = 0;
        while std::time::Instant::now() < deadline && !finished {
            if let Some(Message::Stats { node, flows, .. }) = coord
                .recv_timeout(std::time::Duration::from_millis(200))
                .unwrap()
            {
                assert_eq!(node, 3);
                if let Some(st) = flows.iter().find(|f| f.flow == 7) {
                    assert!(st.sent >= last_sent, "sent must be monotone");
                    assert!(st.sent <= Bytes::mb(50).as_u64(), "overshoot");
                    last_sent = st.sent;
                    finished = st.finished;
                }
            }
        }
        assert!(finished, "flow never finished (sent {last_sent})");

        coord.send(&Message::Shutdown).unwrap();
        let epochs = handle.join().unwrap().unwrap();
        assert!(epochs >= 1);
    }

    #[test]
    fn unready_flows_do_not_send_and_stale_epochs_are_ignored() {
        let (coord_side, agent_side) = inproc_pair(64);
        let clock = EmuClock::start(100);
        let flow = AgentFlow {
            flow: 1,
            size: Bytes::mb(10),
            activate_at: Time::ZERO,
            // Data not ready for 1000 simulated seconds (10 wall s —
            // far beyond this test's observation window).
            ready_at: Time::from_secs(1000),
        };
        let c2 = clock.clone();
        let handle = std::thread::spawn(move || {
            run_agent(
                0,
                vec![flow],
                Box::new(agent_side),
                c2,
                Duration::from_millis(400),
                Duration::from_millis(100),
            )
        });
        let mut coord: Box<dyn Transport> = Box::new(coord_side);
        let _hello = coord
            .recv_timeout(std::time::Duration::from_secs(2))
            .unwrap();

        // Assign a rate with epoch 5, then a *stale* epoch-3 push that
        // would zero it; the agent must keep epoch 5's view... and in
        // either case, send nothing (data not ready).
        coord
            .send(&Message::Schedule {
                epoch: 5,
                rates: vec![RateAssignment {
                    flow: 1,
                    rate: 125_000_000,
                }],
            })
            .unwrap();
        coord
            .send(&Message::Schedule {
                epoch: 3,
                rates: vec![],
            })
            .unwrap();

        std::thread::sleep(std::time::Duration::from_millis(50));
        // Observe stats for a bounded window (the agent reports every
        // few wall-ms, so an unbounded drain would never end).
        let mut sent = None;
        let until = std::time::Instant::now() + std::time::Duration::from_millis(200);
        while std::time::Instant::now() < until {
            if let Some(Message::Stats { flows, .. }) = coord
                .recv_timeout(std::time::Duration::from_millis(20))
                .unwrap()
            {
                if let Some(st) = flows.iter().find(|f| f.flow == 1) {
                    assert!(!st.ready, "flow reported ready far too early");
                    sent = Some(st.sent);
                }
            }
        }
        assert_eq!(sent, Some(0), "unready flow must not send");
        coord.send(&Message::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
    }

    /// A retransmitted push of the *same* epoch must be a no-op: the
    /// agent applies it once and `epochs_applied` counts it once.
    #[test]
    fn duplicate_epoch_pushes_are_applied_once() {
        let (coord_side, agent_side) = inproc_pair(64);
        let clock = EmuClock::start(100);
        let flow = AgentFlow {
            flow: 2,
            size: Bytes::mb(10),
            activate_at: Time::ZERO,
            ready_at: Time::ZERO,
        };
        let c2 = clock.clone();
        let handle = std::thread::spawn(move || {
            run_agent(
                1,
                vec![flow],
                Box::new(agent_side),
                c2,
                Duration::from_millis(400),
                Duration::from_millis(100),
            )
        });
        let mut coord: Box<dyn Transport> = Box::new(coord_side);
        let _hello = coord
            .recv_timeout(std::time::Duration::from_secs(2))
            .unwrap();

        // Push epoch 1 three times (e.g. a shard fan-out duplicating
        // the reconciler's push), then a genuinely new epoch 2.
        let push = Message::Schedule {
            epoch: 1,
            rates: vec![RateAssignment {
                flow: 2,
                rate: 125_000_000,
            }],
        };
        coord.send(&push).unwrap();
        coord.send(&push).unwrap();
        coord.send(&push).unwrap();
        coord
            .send(&Message::Schedule {
                epoch: 2,
                rates: vec![RateAssignment {
                    flow: 2,
                    rate: 250_000_000,
                }],
            })
            .unwrap();

        // Let the agent drain all four pushes before shutting down.
        std::thread::sleep(std::time::Duration::from_millis(100));
        coord.send(&Message::Shutdown).unwrap();
        let epochs = handle.join().unwrap().unwrap();
        assert_eq!(epochs, 2, "duplicates must not inflate epochs_applied");
    }

    /// Regression (NIC credit clamp): a flow whose `ready_at` falls
    /// mid-tick must be credited only `now - ready_at`, not the full
    /// `now - last_advance`. The old code overshot by up to one tick
    /// of pre-ready transfer.
    #[test]
    fn mid_tick_ready_at_is_not_credited_before_readiness() {
        let flow = AgentFlow {
            flow: 0,
            size: Bytes::mb(100),
            activate_at: Time::ZERO,
            ready_at: Time::from_millis(500),
        };
        let mut core = AgentCore::new(0, vec![flow], Duration::from_millis(400), Time::ZERO);
        // 1 Gbps = 125 MB/s.
        assert!(!core.on_message(
            &Message::Schedule {
                epoch: 1,
                rates: vec![RateAssignment {
                    flow: 0,
                    rate: 125_000_000,
                }],
            },
            None,
        ));

        // A tick entirely before readiness credits nothing.
        core.advance(Time::from_millis(300));
        let report = core.take_stats(Time::from_millis(300)).unwrap();
        let sent_at = |m: &Message| match m {
            Message::Stats { flows, .. } => flows[0].sent,
            _ => unreachable!(),
        };
        assert_eq!(sent_at(&report), 0, "credited before ready_at");

        // The tick spanning ready_at (300 ms → 1000 ms) credits only
        // the ready half-second: 125 MB/s × 0.5 s = 62.5 MB, not the
        // full 0.7 s (87.5 MB) the unclamped code charged.
        core.advance(Time::from_millis(1000));
        let report = core.take_stats(Time::from_millis(1000)).unwrap();
        assert_eq!(
            sent_at(&report),
            62_500_000,
            "mid-tick ready_at must clamp the credited interval"
        );
    }

    /// Regression (startup stats flood): with the emulated clock still
    /// at zero, every loop iteration used to re-trigger the "never
    /// reported" condition (`last_report == Time::ZERO`) and re-send
    /// stats. The first report must happen exactly once, which
    /// `TransportStats.frames_sent` makes observable.
    #[test]
    fn first_report_at_time_zero_happens_once() {
        let (mut agent_side, _coord_side) = inproc_pair(64);
        let flow = AgentFlow {
            flow: 0,
            size: Bytes::mb(1),
            activate_at: Time::ZERO,
            ready_at: Time::ZERO,
        };
        let mut core = AgentCore::new(4, vec![flow], Duration::from_millis(400), Time::ZERO);
        agent_side.send(&core.hello()).unwrap();
        // Five loop iterations with the clock pinned at zero: only the
        // first may produce a report.
        for _ in 0..5 {
            core.advance(Time::ZERO);
            if let Some(report) = core.take_stats(Time::ZERO) {
                agent_side.send(&report).unwrap();
            }
        }
        assert_eq!(
            agent_side.stats().frames_sent,
            2,
            "hello + exactly one report while the clock sits at zero"
        );
        // Once δ passes, the next report goes out.
        assert!(core.stats_due(Time::from_millis(400)));
        assert!(core.take_stats(Time::from_millis(400)).is_some());
    }

    /// An agent with no activated flows has nothing to say: reports
    /// are withheld (not sent empty), and the first contentful report
    /// goes out as soon as a flow activates.
    #[test]
    fn empty_reports_are_withheld_until_a_flow_activates() {
        let flow = AgentFlow {
            flow: 3,
            size: Bytes::mb(1),
            activate_at: Time::from_secs(5),
            ready_at: Time::from_secs(5),
        };
        let mut core = AgentCore::new(1, vec![flow], Duration::from_millis(400), Time::ZERO);
        assert!(core.take_stats(Time::from_millis(100)).is_none());
        assert!(core.take_stats(Time::from_secs(4)).is_none());
        // Activation: the report goes out immediately, not at the next
        // δ boundary.
        let m = core.take_stats(Time::from_secs(5)).expect("first report");
        match m {
            Message::Stats { flows, .. } => assert_eq!(flows.len(), 1),
            _ => unreachable!(),
        }
    }
}
