//! Multi-coordinator sharding with deterministic reconciliation.
//!
//! The ROADMAP's scalability rung past a single coordinator: CoFlows
//! are hashed across K coordinator **shards** (`saath_core::view::
//! shard_of`), each shard runs the full scheduling policy as a
//! *replica* over the complete cluster view, and a per-δ
//! **reconciliation round** merges the shards' owned slices into one
//! consistent rate assignment before it is pushed to the agents.
//!
//! ## Why replicas, not partitions
//!
//! Saath's decisions are global — the contention matrix couples every
//! CoFlow that shares a port, so a shard scheduling only *its* CoFlows
//! against only *its* ports would produce different (worse) schedules
//! than the single coordinator, breaking the acceptance bar of
//! byte-identical records. Instead each shard deterministically
//! recomputes the full schedule and emits only the slice it owns;
//! because every replica sees the same stats waves in the same δ
//! cadence, the slices are disjoint and their union *is* the global
//! schedule. Sharding therefore does not divide the scheduling compute
//! (the `parallel` feature divides compute *within* a replica); it
//! divides the failure domain — any K−1 shards can die and the
//! reconciler keeps pushing consistent schedules from the survivors'
//! last slices, and a restarted shard resynchronises from a single
//! stats wave (§5's stateless-rebuild property, now per shard).
//!
//! ## Reconciliation order
//!
//! The reconciler flattens the slices, sorts by flow id (a
//! deterministic total order, mirroring the stale-revalidating serial
//! merge the `parallel` feature uses), and clamps each rate to the
//! remaining capacity of the flow's two ports. When replicas agree the
//! union is exactly one feasible schedule and no clamp fires; clamping
//! only shapes the transient where replicas diverge (one missed a
//! stats wave, or one just restarted), where it restores feasibility
//! without coordination.

use crate::clock::EmuClock;
use crate::coordinator::{CoflowRegistry, CoordinatorConfig, CoordinatorReport, ObsState};
use crate::metrics::MetricsHub;
use crate::proto::{Message, RateAssignment};
use crate::transport::{Transport, TransportError, TransportStats};
use saath_core::view::{shard_of, ClusterView, CoflowScheduler, CoflowView, Schedule};
use saath_fabric::PortBank;
use saath_simcore::{FlowId, PortId, Rate, Time};
use saath_telemetry::prom::label_body;
use saath_telemetry::{Counter, Phase, Telemetry};

// The slice merge itself lives in `saath_core::merge` so the
// simulator's in-process sharded schedulers and this reconciler share
// one implementation; re-exported here for API continuity.
pub use saath_core::merge::merge_rates;

/// A [`CoflowScheduler`] that runs K policy replicas and merges their
/// owned slices — the simulator-domain model of the sharded
/// coordinator, used to prove record-equivalence deterministically
/// (the runtime path asserts completion, not byte-equality, because
/// wall-clock timestamps jitter).
pub struct ShardedScheduler {
    replicas: Vec<Box<dyn CoflowScheduler>>,
    make: Box<dyn Fn() -> Box<dyn CoflowScheduler>>,
    /// Recreate every replica at this time — the simulator-domain
    /// failover drill (a shard restart forces a global rebuild so the
    /// replicas stay identical; see [`run_sharded_coordinator`]).
    restart_at: Option<Time>,
    restarted: bool,
    scratch: PortBank,
    slice: Schedule,
    entries: Vec<(FlowId, Rate, PortId, PortId)>,
}

impl ShardedScheduler {
    /// K replicas of the policy `make` builds.
    pub fn new(
        k: usize,
        make: impl Fn() -> Box<dyn CoflowScheduler> + 'static,
    ) -> ShardedScheduler {
        assert!(k > 0, "need at least one shard");
        ShardedScheduler {
            replicas: (0..k).map(|_| make()).collect(),
            make: Box::new(make),
            restart_at: None,
            restarted: false,
            scratch: PortBank::uniform(1, Rate(1)),
            slice: Schedule::default(),
            entries: Vec::new(),
        }
    }

    /// Like [`ShardedScheduler::new`] but recreates *all* replicas on
    /// the first round at or after `at` (failover drill).
    pub fn with_restart(
        k: usize,
        make: impl Fn() -> Box<dyn CoflowScheduler> + 'static,
        at: Time,
    ) -> ShardedScheduler {
        let mut s = ShardedScheduler::new(k, make);
        s.restart_at = Some(at);
        s
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.replicas.len()
    }
}

impl CoflowScheduler for ShardedScheduler {
    fn name(&self) -> &'static str {
        self.replicas[0].name()
    }

    fn requires_clairvoyance(&self) -> bool {
        self.replicas[0].requires_clairvoyance()
    }

    fn compute(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule) {
        let k = self.replicas.len();
        // Failover drill: rebuild every replica, then compute this
        // round with `changed: None` — a fresh policy has no incremental
        // state, so a change *hint* would under-refresh it.
        let mut rebuilt = false;
        if let Some(t) = self.restart_at {
            if !self.restarted && view.now >= t {
                self.replicas = (0..k).map(|_| (self.make)()).collect();
                self.restarted = true;
                rebuilt = true;
            }
        }
        let view = ClusterView {
            now: view.now,
            num_nodes: view.num_nodes,
            coflows: view.coflows,
            changed: if rebuilt { None } else { view.changed },
        };

        // Each replica computes the full schedule on a scratch bank and
        // contributes only the flows of CoFlows it owns.
        self.entries.clear();
        for (i, replica) in self.replicas.iter_mut().enumerate() {
            self.scratch.clone_reset_from(bank);
            self.slice.clear();
            replica.compute(&view, &mut self.scratch, &mut self.slice);
            for cf in view.coflows {
                if shard_of(cf.id, k) != i {
                    continue;
                }
                for f in &cf.flows {
                    let r = self.slice.rate_of(f.id);
                    if !r.is_zero() {
                        let e = f.endpoints(view.num_nodes);
                        self.entries.push((f.id, r, e.src, e.dst));
                    }
                }
            }
        }
        let clamps = merge_rates(&mut self.entries, bank, out);
        debug_assert_eq!(clamps, 0, "agreeing replicas must merge without clamping");
    }

    fn mech_counters(&self) -> Option<&saath_telemetry::MechCounters> {
        self.replicas[0].mech_counters()
    }

    fn queue_occupancy(&self) -> Option<&[usize]> {
        self.replicas[0].queue_occupancy()
    }
}

/// `(uplink, downlink)` of every registered flow, indexed by flow id.
fn flow_endpoints(registry: &CoflowRegistry) -> Vec<(PortId, PortId)> {
    let mut eps = vec![(PortId(0), PortId(0)); registry.total_flows];
    for e in &registry.entries {
        for (fid, src, dst, ..) in &e.flows {
            eps[*fid as usize] = (
                PortId::uplink(*src),
                PortId::downlink(*dst, registry.num_nodes),
            );
        }
    }
    eps
}

/// Owning shard of every registered flow, indexed by flow id.
fn flow_owners(registry: &CoflowRegistry, shards: usize) -> Vec<u32> {
    let mut owners = vec![0u32; registry.total_flows];
    for e in &registry.entries {
        let s = shard_of(e.id, shards) as u32;
        for (fid, ..) in &e.flows {
            owners[*fid as usize] = s;
        }
    }
    owners
}

/// Runs one coordinator shard: a full policy replica driven in
/// lockstep by the reconciler's [`Message::Reconcile`] barriers.
/// Between barriers it folds in the stats reports the reconciler
/// forwards; on each barrier it computes the full schedule at the
/// barrier's timestamp and replies with the slice of CoFlows it owns.
/// Returns the number of reconciliation rounds it computed.
pub fn run_shard(
    shard: usize,
    shards: usize,
    registry: &CoflowRegistry,
    make_sched: &(dyn Fn() -> Box<dyn CoflowScheduler> + Sync),
    mut link: Box<dyn Transport>,
    clairvoyant: bool,
) -> Result<u64, TransportError> {
    let mut sched = make_sched();
    let mut state = ObsState::new(registry);
    let mut views: Vec<CoflowView> = Vec::new();
    let mut bank = PortBank::uniform(registry.num_nodes, registry.port_rate);
    let mut out = Schedule::default();
    let owners = flow_owners(registry, shards);
    let mut rounds = 0u64;
    loop {
        match link.recv_timeout(std::time::Duration::from_millis(50)) {
            Ok(Some(Message::Stats { now_ns, flows, .. })) => {
                state.ingest(&flows, Time(now_ns));
            }
            Ok(Some(Message::Reconcile {
                epoch,
                now_ns,
                rebuild,
            })) => {
                if rebuild {
                    // Global rebuild: every replica recreates its policy
                    // together so they stay identical (policies carry
                    // cross-round state — deadlines, contention — that
                    // a lone fresh replica would lack).
                    sched = make_sched();
                }
                let now = Time(now_ns);
                state.sweep(registry, now);
                state.build_views(registry, now, clairvoyant, &mut views);
                out.clear();
                if !views.is_empty() {
                    bank.reset_round();
                    let view = ClusterView {
                        now,
                        num_nodes: registry.num_nodes,
                        coflows: &views,
                        changed: None,
                    };
                    sched.compute(&view, &mut bank, &mut out);
                }
                rounds += 1;
                let rates: Vec<RateAssignment> = out
                    .rates
                    .iter()
                    .filter(|(f, _)| owners[f.0 as usize] == shard as u32)
                    .map(|(f, r)| RateAssignment {
                        flow: f.0,
                        rate: r.as_u64(),
                    })
                    .collect();
                link.send(&Message::ShardSchedule {
                    shard: shard as u32,
                    epoch,
                    rates,
                })?;
            }
            Ok(Some(Message::Shutdown)) => return Ok(rounds),
            Ok(Some(_)) | Ok(None) => {}
            Err(TransportError::Disconnected) => return Ok(rounds),
            Err(e) => return Err(e),
        }
    }
}

/// Runs one *partitioned* coordinator shard: unlike [`run_shard`] it
/// schedules only the CoFlows it owns, against the latest
/// [`Message::ContentionSummary`] from each peer (rebroadcast by the
/// reconciler). Every `staleness` reconciliation epochs it exports its
/// own summary — sent *before* the slice reply so the reconciler
/// rebroadcasts it while collecting. `staleness == 0` degenerates to
/// [`run_shard`]'s full-replica behavior (call that instead; this
/// asserts S ≥ 1). Returns the number of rounds computed.
#[allow(clippy::too_many_arguments)]
pub fn run_partitioned_shard(
    shard: usize,
    shards: usize,
    staleness: u64,
    registry: &CoflowRegistry,
    cfg: saath_core::SaathConfig,
    mut link: Box<dyn Transport>,
    clairvoyant: bool,
    hub: Option<&MetricsHub>,
) -> Result<u64, TransportError> {
    use saath_core::summary::{port_rates_of_slice, remote_contention, ContentionSummary};
    assert!(staleness >= 1, "S = 0 is run_shard's replicated mode");
    assert!(
        cfg.incremental_contention && cfg.lcof,
        "partitioned mode requires incremental_contention and lcof"
    );
    let mut sched = saath_core::Saath::new(cfg.clone());
    let mut state = ObsState::new(registry);
    let mut views: Vec<CoflowView> = Vec::new();
    let mut owned_views: Vec<CoflowView> = Vec::new();
    let mut bank = PortBank::uniform(registry.num_nodes, registry.port_rate);
    let mut out = Schedule::default();
    let owners = flow_owners(registry, shards);
    let endpoints = flow_endpoints(registry);
    let mut summaries: Vec<ContentionSummary> = vec![ContentionSummary::default(); shards];
    let mut own_summary = ContentionSummary::default();
    let mut entries: Vec<(FlowId, Rate, PortId, PortId)> = Vec::new();
    let mut remote_buf: Vec<(saath_simcore::CoflowId, u32)> = Vec::new();
    let mut port_scratch: Vec<u32> = Vec::new();
    let mut last_export_round: Option<u64> = None;
    let mut rounds = 0u64;
    let labels = label_body(&[("shard", &shard.to_string())]);
    loop {
        match link.recv_timeout(std::time::Duration::from_millis(50)) {
            Ok(Some(Message::Stats { now_ns, flows, .. })) => {
                state.ingest(&flows, Time(now_ns));
            }
            Ok(Some(Message::ContentionSummary { summary })) => {
                let s = summary.shard as usize;
                if s < shards && s != shard {
                    summaries[s] = summary;
                }
            }
            Ok(Some(Message::Reconcile {
                epoch,
                now_ns,
                rebuild,
            })) => {
                if rebuild {
                    // A peer restarted: every shard rebuilds, and stale
                    // summaries from before the rebuild are dropped.
                    sched = saath_core::Saath::new(cfg.clone());
                    for s in &mut summaries {
                        s.clear();
                    }
                    last_export_round = None;
                }
                let now = Time(now_ns);
                state.sweep(registry, now);
                state.build_views(registry, now, clairvoyant, &mut views);
                owned_views.clear();
                owned_views.extend(
                    views
                        .iter()
                        .filter(|c| shard_of(c.id, shards) == shard)
                        .cloned(),
                );
                rounds += 1;
                out.clear();
                if !owned_views.is_empty() {
                    // Remote k_c addends from the latest summaries.
                    remote_buf.clear();
                    for c in &owned_views {
                        let add = remote_contention(
                            c,
                            registry.num_nodes,
                            &summaries,
                            shard as u32,
                            &mut port_scratch,
                        );
                        if add > 0 {
                            remote_buf.push((c.id, add));
                        }
                    }
                    sched.set_remote_contention(&remote_buf);
                    // Pre-charge every peer's claimed port capacity,
                    // down to a reserve of capacity/K per port so
                    // backoff stays partial and no peer can monopolize
                    // a hot port (see `saath_simulator::partitioned`).
                    bank.reset_round();
                    for t in (0..shards).filter(|&t| t != shard) {
                        for &(p, r) in &summaries[t].port_rates {
                            let pid = PortId(p);
                            let reserve = bank.capacity(pid).as_u64() / shards as u64;
                            let chargeable =
                                Rate(bank.remaining(pid).as_u64().saturating_sub(reserve));
                            let give = Rate(r).min(chargeable);
                            if !give.is_zero() {
                                bank.allocate(pid, give);
                            }
                        }
                    }
                    let view = ClusterView {
                        now,
                        num_nodes: registry.num_nodes,
                        coflows: &owned_views,
                        changed: None,
                    };
                    sched.compute(&view, &mut bank, &mut out);
                }
                if let Some(h) = hub {
                    let age = last_export_round.map(|e| rounds - e).unwrap_or(rounds);
                    h.set("saath_summary_age_rounds", &labels, age);
                    if last_export_round.map(|e| rounds - e > 1).unwrap_or(true) {
                        h.incr(
                            "saath_stale_order_decisions_total",
                            &labels,
                            owned_views.len() as u64,
                        );
                    }
                }
                let due = match last_export_round {
                    None => true,
                    Some(e) => rounds - e >= staleness,
                };
                if due {
                    entries.clear();
                    for &(f, r) in &out.rates {
                        let (src, dst) = endpoints[f.0 as usize];
                        entries.push((f, r, src, dst));
                    }
                    sched.export_summary(shard as u32, rounds, &mut own_summary);
                    port_rates_of_slice(&entries, &mut own_summary.port_rates);
                    if let Some(h) = hub {
                        h.incr(
                            "saath_summary_bytes_exchanged_total",
                            &labels,
                            (own_summary.encoded_len() * shards.saturating_sub(1)) as u64,
                        );
                    }
                    link.send(&Message::ContentionSummary {
                        summary: own_summary.clone(),
                    })?;
                    last_export_round = Some(rounds);
                }
                let rates: Vec<RateAssignment> = out
                    .rates
                    .iter()
                    .filter(|(f, _)| owners[f.0 as usize] == shard as u32)
                    .map(|(f, r)| RateAssignment {
                        flow: f.0,
                        rate: r.as_u64(),
                    })
                    .collect();
                link.send(&Message::ShardSchedule {
                    shard: shard as u32,
                    epoch,
                    rates,
                })?;
            }
            Ok(Some(Message::Shutdown)) => return Ok(rounds),
            Ok(Some(_)) | Ok(None) => {}
            Err(TransportError::Disconnected) => return Ok(rounds),
            Err(e) => return Err(e),
        }
    }
}

/// Kill-and-respawn drill for one shard: at simulated time `at` the
/// reconciler shuts the shard's link down and swaps in `spare` — a
/// pre-connected link to a standby replica of the same shard — then
/// broadcasts a global rebuild on the next barrier.
pub struct ShardFailover {
    /// Which shard to restart.
    pub shard: usize,
    /// When (simulated time).
    pub at: Time,
    /// Link to the standby replica that takes over.
    pub spare: Box<dyn Transport>,
}

/// The reconciler: drains agent stats, forwards them to every shard,
/// issues a per-δ [`Message::Reconcile`] barrier, merges the shards'
/// slices in deterministic flow-id order with port-capacity clamping,
/// and pushes the merged schedule to the agents. A shard that misses a
/// barrier contributes its previous slice (the agents would keep
/// complying with it anyway); a shard restart swaps in the spare link
/// and forces a global rebuild.
///
/// Owns completion bookkeeping (the records), exactly like
/// [`crate::coordinator::run_coordinator`], and terminates the same
/// way: shutdown broadcast once every registered CoFlow completes, or
/// on the wall-clock watchdog.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_coordinator(
    registry: &CoflowRegistry,
    agents: &mut [Box<dyn Transport>],
    mut shard_links: Vec<Box<dyn Transport>>,
    mut failover: Option<ShardFailover>,
    clock: &EmuClock,
    cfg: &CoordinatorConfig,
    mut tele: Option<&mut Telemetry>,
    hub: Option<&MetricsHub>,
) -> CoordinatorReport {
    let shards = shard_links.len();
    assert!(shards >= 1, "sharded coordinator needs at least one shard");
    let mut state = ObsState::new(registry);
    let mut epochs: u64 = 0;
    let mut restarted = false;
    let mut pending_rebuild = false;
    let mut last_slices: Vec<Vec<RateAssignment>> = vec![Vec::new(); shards];
    // Per-shard label bodies (pre-rendered once) and the epoch of each
    // shard's last *fresh* slice, for the replica-lag gauge.
    let shard_labels: Vec<String> = (0..shards)
        .map(|i| label_body(&[("shard", &i.to_string())]))
        .collect();
    let mut last_fresh_epoch: Vec<u64> = vec![0; shards];
    let mut bank = PortBank::uniform(registry.num_nodes, registry.port_rate);
    let mut out = Schedule::default();
    let mut entries: Vec<(FlowId, Rate, PortId, PortId)> = Vec::new();
    let endpoints = flow_endpoints(registry);
    let started_wall = std::time::Instant::now();
    let delta_wall = clock.to_wall(cfg.delta);
    // Budget for collecting shard replies: a couple of δ intervals, so
    // a healthy shard always makes it and a dead one costs bounded time
    // before its previous slice is reused.
    let reply_budget = delta_wall.max(std::time::Duration::from_millis(5)) * 2;

    let shutdown_all = |agents: &mut [Box<dyn Transport>],
                        links: &mut [Box<dyn Transport>],
                        failover: &mut Option<ShardFailover>| {
        for a in agents.iter_mut() {
            let _ = a.send(&Message::Shutdown);
        }
        for l in links.iter_mut() {
            let _ = l.send(&Message::Shutdown);
        }
        // An unused spare's standby replica must also be released.
        if let Some(f) = failover.take() {
            let mut spare = f.spare;
            let _ = spare.send(&Message::Shutdown);
        }
    };

    loop {
        if started_wall.elapsed() > cfg.wall_deadline {
            shutdown_all(agents, &mut shard_links, &mut failover);
            return CoordinatorReport {
                records: state.into_sorted_records(),
                epochs,
                timed_out: true,
                restarted,
            };
        }

        // Failover drill: kill the shard's link, swap in the standby.
        if let Some(f) = &failover {
            if clock.now() >= f.at {
                let f = failover.take().expect("checked above");
                let _ = shard_links[f.shard].send(&Message::Shutdown);
                shard_links[f.shard] = f.spare;
                // The standby replica is fresh; force every other
                // replica to rebuild too so they stay identical.
                pending_rebuild = true;
                restarted = true;
                if let Some(h) = hub {
                    h.incr(
                        "saath_shard_standby_rebuilds_total",
                        &shard_labels[f.shard],
                        1,
                    );
                }
                if saath_telemetry::enabled() {
                    if let Some(t) = tele.as_deref_mut() {
                        t.incr(Counter::CoordShardRebuilds);
                    }
                }
            }
        }

        // Drain agent stats: ingest for completion bookkeeping and
        // forward verbatim to every shard (each replica sees the same
        // waves, which is what keeps their schedules identical).
        let now = clock.now();
        let t_round = tele.as_ref().map(|_| std::time::Instant::now());
        let mut stats_msgs: u64 = 0;
        {
            let _span = hub.map(|h| h.span(Phase::CoordObsRecv));
            for a in agents.iter_mut() {
                loop {
                    match a.recv_timeout(std::time::Duration::ZERO) {
                        Ok(Some(Message::Stats {
                            node,
                            now_ns,
                            flows,
                        })) => {
                            stats_msgs += 1;
                            if saath_telemetry::enabled() {
                                if let Some(t) = tele.as_deref_mut() {
                                    t.incr(Counter::CoordStatsMsgs);
                                }
                            }
                            state.ingest(&flows, now);
                            let fwd = Message::Stats {
                                node,
                                now_ns,
                                flows,
                            };
                            for l in shard_links.iter_mut() {
                                let _ = l.send(&fwd);
                            }
                        }
                        // Multiplexed host links interleave hellos with
                        // stats; skip strays, keep draining.
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(TransportError::Disconnected) => break,
                        Err(_) => break,
                    }
                }
            }
        }
        if let Some(h) = hub {
            if stats_msgs > 0 {
                h.incr("saath_coord_stats_msgs_total", "", stats_msgs);
            }
        }

        if state.sweep(registry, now) {
            shutdown_all(agents, &mut shard_links, &mut failover);
            if let Some(h) = hub {
                // Final gauge values — the epoch loop won't run again.
                h.set("saath_active_coflows", "", 0);
                h.set("saath_completed_coflows", "", state.records.len() as u64);
            }
            return CoordinatorReport {
                records: state.into_sorted_records(),
                epochs,
                timed_out: false,
                restarted,
            };
        }

        if state.has_active(registry, now) {
            let span_reconcile = hub.map(|h| h.span(Phase::CoordReconcile));
            // Barrier: every shard computes at the same timestamp.
            let barrier = Message::Reconcile {
                epoch: epochs + 1,
                now_ns: now.as_nanos(),
                rebuild: pending_rebuild,
            };
            pending_rebuild = false;
            for l in shard_links.iter_mut() {
                let _ = l.send(&barrier);
            }

            // Collect one slice per shard, discarding stale replies
            // from rounds that previously timed out.
            let deadline = std::time::Instant::now() + reply_budget;
            let mut got: Vec<Option<Vec<RateAssignment>>> = (0..shards).map(|_| None).collect();
            let mut rebroadcast: Vec<Message> = Vec::new();
            for (li, l) in shard_links.iter_mut().enumerate() {
                loop {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    match l.recv_timeout(left) {
                        Ok(Some(Message::ShardSchedule {
                            shard,
                            epoch,
                            rates,
                        })) => {
                            if epoch == epochs + 1 {
                                got[shard as usize] = Some(rates);
                                break;
                            }
                            // Stale — keep draining within the budget.
                        }
                        Ok(Some(Message::ContentionSummary { summary })) => {
                            // Partitioned shards export these before
                            // their slice reply; relay to every *other*
                            // shard once this collect pass is done.
                            if let Some(h) = hub {
                                h.incr(
                                    "saath_summary_bytes_exchanged_total",
                                    &shard_labels[li],
                                    (summary.encoded_len() * shards.saturating_sub(1)) as u64,
                                );
                            }
                            rebroadcast.push(Message::ContentionSummary { summary });
                        }
                        Ok(Some(_)) | Ok(None) => break,
                        Err(_) => break,
                    }
                }
            }
            for m in &rebroadcast {
                let from = match m {
                    Message::ContentionSummary { summary } => summary.shard as usize,
                    _ => unreachable!("only summaries are queued for relay"),
                };
                for (i, l) in shard_links.iter_mut().enumerate() {
                    if i != from {
                        let _ = l.send(m);
                    }
                }
            }
            epochs += 1;

            // Merge: fresh slices replace the cache; a missing shard
            // falls back to its previous slice (the agents would keep
            // complying with it regardless — this just keeps the merged
            // push consistent with that reality).
            entries.clear();
            for (i, slice) in got.into_iter().enumerate() {
                match slice {
                    Some(rates) => {
                        if let Some(h) = hub {
                            h.incr("saath_shard_slices_total", &shard_labels[i], 1);
                        }
                        if saath_telemetry::enabled() {
                            if let Some(t) = tele.as_deref_mut() {
                                t.incr(Counter::CoordShardSlices);
                            }
                        }
                        last_slices[i] = rates;
                        last_fresh_epoch[i] = epochs;
                    }
                    None => {
                        if let Some(h) = hub {
                            h.incr("saath_shard_fallback_slices_total", &shard_labels[i], 1);
                        }
                        if saath_telemetry::enabled() {
                            if let Some(t) = tele.as_deref_mut() {
                                t.incr(Counter::CoordShardFallbacks);
                            }
                        }
                    }
                }
                for r in &last_slices[i] {
                    let (src, dst) = endpoints[r.flow as usize];
                    entries.push((FlowId(r.flow), Rate(r.rate), src, dst));
                }
            }
            bank.reset_round();
            out.clear();
            // Rotated by epoch: a no-op for agreeing replicas (zero
            // clamps), but spreads clamp damage across flows when
            // partitioned shards overcommit on stale summaries.
            let clamps =
                saath_core::merge::merge_rates_rotated(&mut entries, &mut bank, &mut out, epochs);
            drop(span_reconcile);
            if let Some(h) = hub {
                if clamps > 0 {
                    h.incr("saath_shard_merge_clamps_total", "", clamps);
                }
                for (i, labels) in shard_labels.iter().enumerate() {
                    h.set(
                        "saath_shard_replica_lag_epochs",
                        labels,
                        epochs - last_fresh_epoch[i],
                    );
                }
            }
            if saath_telemetry::enabled() {
                if let Some(t) = tele.as_deref_mut() {
                    t.add(Counter::CoordMergeClamps, clamps);
                }
            }

            let push = Message::Schedule {
                epoch: epochs,
                rates: out
                    .rates
                    .iter()
                    .map(|(f, r)| RateAssignment {
                        flow: f.0,
                        rate: r.as_u64(),
                    })
                    .collect(),
            };
            {
                let _span = hub.map(|h| h.span(Phase::CoordBroadcast));
                for a in agents.iter_mut() {
                    let _ = a.send(&push);
                    if saath_telemetry::enabled() {
                        if let Some(t) = tele.as_deref_mut() {
                            t.incr(Counter::CoordScheduleMsgs);
                        }
                    }
                }
            }
            if let Some(h) = hub {
                h.incr("saath_coord_epochs_total", "", 1);
                h.incr("saath_coord_schedule_msgs_total", "", agents.len() as u64);
            }
            if saath_telemetry::enabled() {
                if let Some(t) = tele.as_deref_mut() {
                    t.incr(Counter::CoordEpochs);
                }
            }
        }
        if let Some(h) = hub {
            h.set(
                "saath_active_coflows",
                "",
                state.active_count(registry, now),
            );
            h.set("saath_completed_coflows", "", state.records.len() as u64);
            let mut agent_link = TransportStats::default();
            for a in agents.iter() {
                agent_link.merge(&a.stats());
            }
            h.set_transport("link=\"agent\"", &agent_link);
            let mut shard_link = TransportStats::default();
            for l in shard_links.iter() {
                shard_link.merge(&l.stats());
            }
            h.set_transport("link=\"shard\"", &shard_link);
        }
        if saath_telemetry::enabled() {
            if let Some(t) = tele.as_deref_mut() {
                if let Some(started) = t_round {
                    t.sync_round_ns.observe(started.elapsed().as_nanos() as u64);
                }
            }
        }

        std::thread::sleep(delta_wall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saath_core::Saath;
    use saath_simcore::NodeId;

    #[test]
    fn merge_is_identity_on_a_feasible_union() {
        let mut bank = PortBank::uniform(4, Rate(100));
        let up0 = PortId::uplink(NodeId(0));
        let dn2 = PortId::downlink(NodeId(2), 4);
        let up1 = PortId::uplink(NodeId(1));
        let dn3 = PortId::downlink(NodeId(3), 4);
        // Disjoint slices arriving out of order, jointly feasible.
        let mut entries = vec![
            (FlowId(7), Rate(60), up1, dn3),
            (FlowId(2), Rate(100), up0, dn2),
            (FlowId(9), Rate(40), up1, dn3),
        ];
        let mut out = Schedule::default();
        let clamps = merge_rates(&mut entries, &mut bank, &mut out);
        assert_eq!(clamps, 0);
        assert_eq!(
            out.rates,
            vec![
                (FlowId(2), Rate(100)),
                (FlowId(7), Rate(60)),
                (FlowId(9), Rate(40)),
            ],
            "sorted by flow id, rates untouched"
        );
    }

    #[test]
    fn merge_clamps_conflicting_claims_deterministically() {
        let mut bank = PortBank::uniform(2, Rate(100));
        let up0 = PortId::uplink(NodeId(0));
        let dn1 = PortId::downlink(NodeId(1), 2);
        // Two diverged replicas both claimed the same uplink in full.
        let mut entries = vec![
            (FlowId(5), Rate(100), up0, dn1),
            (FlowId(1), Rate(100), up0, dn1),
        ];
        let mut out = Schedule::default();
        let clamps = merge_rates(&mut entries, &mut bank, &mut out);
        // Lowest flow id wins the capacity; the later claim clamps to 0.
        assert_eq!(clamps, 1);
        assert_eq!(out.rates, vec![(FlowId(1), Rate(100))]);
        assert_eq!(out.rate_of(FlowId(5)), Rate::ZERO);
    }

    #[test]
    fn sharded_scheduler_reports_replica_zero() {
        let s = ShardedScheduler::new(3, || Box::new(Saath::with_defaults()));
        assert_eq!(s.shards(), 3);
        assert_eq!(s.name(), Saath::with_defaults().name());
        assert!(!s.requires_clairvoyance());
    }
}
