//! Readiness polling for the multiplexed agent host.
//!
//! The workspace vendors no `libc` crate and pulls in no async
//! runtime, so this module declares the one C function the event loop
//! needs — `poll(2)` — itself, at the stdlib-FFI level. It is the
//! *only* unsafe code in the crate (the crate root is
//! `#![deny(unsafe_code)]`; this module carries a scoped allow), and
//! the surface is a single safe wrapper: [`wait_fd`] blocks until one
//! file descriptor is readable/writable or a timeout elapses.
//!
//! On non-Unix targets [`wait_fd`] degrades to a plain sleep that
//! reports the descriptor as ready, which turns the event loop into a
//! correct (if less efficient) periodic poller — the same behaviour
//! the in-process transport gets.

use std::time::Duration;

/// What [`wait_fd`] observed on the descriptor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Data (or EOF) can be read without blocking.
    pub readable: bool,
    /// The socket will accept writes without blocking.
    pub writable: bool,
    /// The peer hung up or the descriptor is in an error state; the
    /// next read will surface the exact condition.
    pub hangup: bool,
}

impl Readiness {
    /// Whether anything at all happened before the timeout.
    pub fn any(&self) -> bool {
        self.readable || self.writable || self.hangup
    }
}

#[cfg(unix)]
#[allow(unsafe_code)] // the crate-wide deny is lifted only for this FFI shim
mod sys {
    use super::Readiness;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        /// `nfds_t` is `unsigned long` on every Unix libc we target.
        fn poll(
            fds: *mut PollFd,
            nfds: core::ffi::c_ulong,
            timeout: core::ffi::c_int,
        ) -> core::ffi::c_int;
    }

    pub fn wait_fd(
        fd: std::os::fd::RawFd,
        want_write: bool,
        timeout: Duration,
    ) -> std::io::Result<Readiness> {
        let mut events = POLLIN;
        if want_write {
            events |= POLLOUT;
        }
        let mut pfd = PollFd {
            fd,
            events,
            revents: 0,
        };
        // Round the timeout *up* to whole milliseconds so a 2 ms tick
        // does not busy-spin as a 1 ms poll, and clamp to the i32 the
        // C ABI takes.
        let ms = timeout.as_micros().div_ceil(1000).min(i32::MAX as u128) as core::ffi::c_int;
        loop {
            // SAFETY: `pfd` is a valid, properly-aligned `pollfd` for
            // the duration of the call, and `nfds` is exactly 1.
            let rc = unsafe { poll(&mut pfd as *mut PollFd, 1, ms) };
            if rc >= 0 {
                return Ok(Readiness {
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry with the full timeout — the host loop's
            // tick cadence tolerates the (rare) over-wait.
        }
    }
}

/// Waits until `fd` is readable — and, with `want_write`, writable —
/// or `timeout` elapses. A zero timeout is a nonblocking readiness
/// probe. Returns what was observed; all-false means the timeout
/// expired quietly.
#[cfg(unix)]
pub fn wait_fd(
    fd: std::os::fd::RawFd,
    want_write: bool,
    timeout: Duration,
) -> std::io::Result<Readiness> {
    sys::wait_fd(fd, want_write, timeout)
}

/// Portable fallback: sleeps out the timeout and conservatively
/// reports the descriptor ready, degrading readiness-driven loops to
/// periodic polling.
#[cfg(not(unix))]
pub fn wait_fd(_fd: i32, want_write: bool, timeout: Duration) -> std::io::Result<Readiness> {
    std::thread::sleep(timeout);
    Ok(Readiness {
        readable: true,
        writable: want_write,
        hangup: false,
    })
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd as _;
    use std::time::Instant;

    fn loopback_pair() -> (std::net::TcpStream, std::net::TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn quiet_socket_times_out_without_readiness() {
        let (client, _server) = loopback_pair();
        let t0 = Instant::now();
        let r = wait_fd(client.as_raw_fd(), false, Duration::from_millis(30)).unwrap();
        assert!(!r.any(), "nothing was sent, nothing should be ready: {r:?}");
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "returned {:?} early",
            t0.elapsed()
        );
    }

    #[test]
    fn written_bytes_wake_the_poller() {
        let (client, mut server) = loopback_pair();
        server.write_all(b"x").unwrap();
        let r = wait_fd(client.as_raw_fd(), false, Duration::from_secs(5)).unwrap();
        assert!(r.readable, "pending byte must poll readable: {r:?}");
        // An idle socket with room in its send buffer is writable too.
        let r = wait_fd(client.as_raw_fd(), true, Duration::from_secs(5)).unwrap();
        assert!(r.writable, "send buffer has room, POLLOUT expected: {r:?}");
    }

    #[test]
    fn peer_close_reports_readable_or_hangup() {
        let (client, server) = loopback_pair();
        drop(server);
        let r = wait_fd(client.as_raw_fd(), false, Duration::from_secs(5)).unwrap();
        // EOF surfaces as POLLIN (read returns 0) and often POLLHUP.
        assert!(r.readable || r.hangup, "close went unnoticed: {r:?}");
    }
}
