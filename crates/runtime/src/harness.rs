//! The testbed-emulation harness: wires a coordinator and one agent per
//! node together over the chosen transport and replays a trace.

use crate::agent::{run_agent_with_metrics, AgentFlow};
use crate::clock::EmuClock;
use crate::coordinator::{
    run_coordinator_with_telemetry, CoflowRegistry, CoordinatorConfig, CoordinatorReport,
};
use crate::host::run_agent_host;
use crate::metrics::{MetricsHub, MetricsServer};
use crate::proto::Message;
use crate::shard::{run_partitioned_shard, run_shard, run_sharded_coordinator, ShardFailover};
use crate::transport::{inproc_pair, TcpTransport, Transport};
use saath_core::view::CoflowScheduler;
use saath_simcore::{Duration, Time};
use saath_workload::Trace;
use std::sync::Arc;

/// Which wire the coordinator and agents use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Crossbeam channels (fast; the default for tests).
    InProc,
    /// Real framed TCP over loopback — the same code path a multi-host
    /// deployment would use.
    Tcp,
}

/// Emulation parameters.
#[derive(Clone, Debug)]
pub struct EmulationConfig {
    /// Simulated seconds per wall second.
    pub scale: u64,
    /// Coordination interval δ in *simulated* time. Coarser than the
    /// simulator's 8 ms because thread scheduling replaces the paper's
    /// dedicated machines; at the default `scale` 50 / `delta` 400 ms,
    /// the coordinator still wakes every 8 wall-milliseconds.
    pub delta: Duration,
    /// Agent NIC tick (simulated), ≤ δ.
    pub tick: Duration,
    /// Transport between coordinator and agents.
    pub transport: TransportKind,
    /// Expose ground-truth sizes (clairvoyant policies).
    pub clairvoyant: bool,
    /// Kill and restart the coordinator's scheduler at this simulated
    /// time (failover drill).
    pub restart_coordinator_at: Option<Time>,
    /// Number of coordinator shards. `1` (the default) is the classic
    /// single coordinator; `≥ 2` hashes CoFlows across that many policy
    /// replicas reconciled every δ (see [`crate::shard`]).
    pub shards: usize,
    /// Kill shard 0 at this simulated time and swap in a pre-spawned
    /// standby replica (sharded failover drill; requires `shards ≥ 2`).
    pub restart_shard_at: Option<Time>,
    /// Partition the scheduling compute across the shards instead of
    /// replicating it: each shard schedules only its owned CoFlows
    /// against bounded-staleness contention summaries from its peers
    /// (see [`crate::shard::run_partitioned_shard`]). Requires
    /// `shards ≥ 2` and `staleness ≥ 1`; the default Saath policy is
    /// used per shard (`make_sched` is ignored in this mode).
    pub partitioned: bool,
    /// Summary refresh period in reconciliation epochs (partitioned
    /// mode only).
    pub staleness: u64,
    /// Wall-clock watchdog for the whole emulation.
    pub wall_deadline: std::time::Duration,
    /// Serve live Prometheus metrics at this address for the duration
    /// of the emulation (e.g. `"127.0.0.1:9898"`, or port `0` for an
    /// ephemeral one). `None` (the default) disables the whole metrics
    /// plane — no hub, no server, no per-epoch bookkeeping.
    pub metrics_addr: Option<String>,
    /// Agents per multiplexed host thread. `0` (the default) keeps the
    /// classic one-thread-per-agent wiring; `≥ 1` runs the nodes in
    /// `ceil(nodes / multiplex)` readiness-driven
    /// [`crate::host::run_agent_host`] event loops, each sharing one
    /// link to the coordinator — `O(hosts)` threads and sockets
    /// instead of `O(nodes)`, the wiring that reaches 100k emulated
    /// ports. Works with both transports and with sharded
    /// coordinators; coordinator records are identical to the
    /// threaded wiring up to wall-clock timestamp jitter.
    pub multiplex: usize,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            scale: 50,
            delta: Duration::from_millis(400),
            tick: Duration::from_millis(100),
            transport: TransportKind::InProc,
            clairvoyant: false,
            restart_coordinator_at: None,
            shards: 1,
            restart_shard_at: None,
            partitioned: false,
            staleness: 1,
            wall_deadline: std::time::Duration::from_secs(60),
            metrics_addr: None,
            multiplex: 0,
        }
    }
}

/// The emulation's outcome: coordinator-observed records plus agent
/// diagnostics.
pub struct EmulationReport {
    /// Per-CoFlow results (δ-granular timestamps, like a real testbed).
    pub coordinator: CoordinatorReport,
    /// Schedule epochs each agent applied.
    pub agent_epochs: Vec<u64>,
    /// Reconciliation rounds each shard computed (empty when
    /// `shards == 1`; the standby replica, if any, is the last entry).
    pub shard_epochs: Vec<u64>,
    /// The final Prometheus exposition page, when
    /// [`EmulationConfig::metrics_addr`] was set — the same text the
    /// live `/metrics` endpoint served, rendered once more after the
    /// run so callers can dump it to a file.
    pub metrics: Option<String>,
}

type Links = Vec<Box<dyn Transport>>;

/// Builds `n` connected transport pairs of the requested kind. The
/// first vector holds the coordinator/reconciler sides, the second the
/// agent/shard/host sides, index-aligned. `capacity` bounds the
/// in-process channels (ignored for TCP); host links scale it with
/// the number of agents they multiplex.
///
/// TCP links are identified by a wiring-time `Hello { node: i }` each
/// connector sends first, consumed by [`accept_identified`] — **not**
/// by accept order, which loopback does not guarantee to match the
/// connector spawn order. Shard links go through the same handshake
/// (their "node" is the shard slot), so every `link_pairs` caller
/// gets identity-aligned pairs.
fn link_pairs(kind: TransportKind, n: usize, capacity: usize) -> (Links, Links) {
    let mut near: Links = Vec::with_capacity(n);
    let mut far: Links = Vec::with_capacity(n);
    match kind {
        TransportKind::InProc => {
            for _ in 0..n {
                let (c, a) = inproc_pair(capacity);
                near.push(Box::new(c));
                far.push(Box::new(a));
            }
        }
        TransportKind::Tcp => {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("local addr");
            let connectors: Vec<_> = (0..n)
                .map(|i| {
                    std::thread::spawn(move || {
                        let mut t = TcpTransport::connect(&addr.to_string()).expect("connect");
                        t.send(&Message::Hello { node: i as u32 })
                            .expect("identify link");
                        t
                    })
                })
                .collect();
            near = accept_identified(&listener, n);
            for c in connectors {
                far.push(Box::new(c.join().expect("peer connect")));
            }
        }
    }
    (near, far)
}

/// Accepts `n` connections and slots each by the identifying
/// `Hello { node }` it sends first, returning links index-aligned
/// with the connectors' declared identities regardless of the order
/// the OS surfaced the connections. The wiring hello is consumed
/// here; it is not part of the link's application traffic.
fn accept_identified(listener: &std::net::TcpListener, n: usize) -> Links {
    let mut slots: Vec<Option<Box<dyn Transport>>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        let (stream, _) = listener.accept().expect("accept");
        let mut t = TcpTransport::new(stream).expect("wrap");
        let hello = t
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("read identifying hello")
            .expect("peer sent nothing within the wiring deadline");
        match hello {
            Message::Hello { node } => {
                let i = node as usize;
                assert!(i < n, "link identity {i} out of range (n = {n})");
                assert!(slots[i].is_none(), "duplicate link identity {i}");
                slots[i] = Some(Box::new(t));
            }
            other => panic!("expected identifying Hello, got {other:?}"),
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every identity seen exactly once"))
        .collect()
}

/// Replays `trace` on an emulated cluster: one agent thread per node,
/// the coordinator (or, with `cfg.shards ≥ 2`, the reconciler plus one
/// thread per shard) on the calling thread's side.
pub fn emulate(
    trace: &Trace,
    make_sched: &(dyn Fn() -> Box<dyn CoflowScheduler> + Sync),
    cfg: &EmulationConfig,
) -> EmulationReport {
    trace.validate().expect("invalid trace");
    assert!(cfg.shards >= 1, "shards must be at least 1");
    assert!(
        cfg.restart_shard_at.is_none() || cfg.shards >= 2,
        "the shard failover drill needs shards >= 2"
    );
    assert!(
        !cfg.partitioned || (cfg.shards >= 2 && cfg.staleness >= 1),
        "partitioned mode needs shards >= 2 and staleness >= 1"
    );
    assert!(
        !cfg.partitioned || cfg.restart_shard_at.is_none(),
        "the standby-swap drill is a replicated-mode feature; partitioned \
         shards rebuild via the reconciler's global rebuild instead"
    );

    // Dense flow ids in trace order; each flow is owned by its sender.
    let mut per_node: Vec<Vec<AgentFlow>> = vec![Vec::new(); trace.num_nodes];
    let mut next = 0u32;
    for c in &trace.coflows {
        for f in &c.flows {
            per_node[f.src.index()].push(AgentFlow {
                flow: next,
                size: f.size,
                activate_at: c.arrival,
                ready_at: c.arrival + f.available_after,
            });
            next += 1;
        }
    }

    let registry = CoflowRegistry::from_trace(trace);
    let clock = EmuClock::start(cfg.scale);

    // Optional live metrics plane: one hub shared by the coordinator,
    // shards, and agents, served over HTTP for the run's duration.
    let hub = cfg
        .metrics_addr
        .as_ref()
        .map(|_| Arc::new(MetricsHub::new()));
    let mut server = match (&cfg.metrics_addr, &hub) {
        (Some(addr), Some(h)) => {
            let s = MetricsServer::serve(addr, Arc::clone(h)).expect("bind metrics endpoint");
            // Resolve port 0 for the user — they can only curl the
            // endpoint if they learn the ephemeral port during the run.
            eprintln!("metrics: serving http://{}/metrics", s.addr());
            Some(s)
        }
        _ => None,
    };

    // Wire transports and launch agents: one thread per node in the
    // classic wiring, or `ceil(nodes / multiplex)` readiness-driven
    // host threads each multiplexing `multiplex` agents over one
    // shared link. Every handle yields the epochs of the agents it
    // drove, in node order, so the report is wiring-agnostic.
    let mut handles: Vec<std::thread::JoinHandle<Vec<u64>>> = Vec::new();
    let mut coord_sides = if cfg.multiplex == 0 {
        let (coord_sides, agent_sides) = link_pairs(cfg.transport, trace.num_nodes, 1024);
        for (node, (flows, transport)) in per_node.into_iter().zip(agent_sides).enumerate() {
            let clock = clock.clone();
            let delta = cfg.delta;
            let tick = cfg.tick;
            let hub = hub.clone();
            handles.push(std::thread::spawn(move || {
                run_agent_with_metrics(node as u32, flows, transport, clock, delta, tick, hub)
                    .map(|e| vec![e])
                    .unwrap_or_else(|_| vec![0])
            }));
        }
        coord_sides
    } else {
        let per_host = cfg.multiplex;
        let hosts = trace.num_nodes.div_ceil(per_host);
        // A host link carries every hosted agent's frames; give the
        // in-process variant room for a full δ wave from each.
        let (coord_sides, host_sides) = link_pairs(cfg.transport, hosts, (4 * per_host).max(1024));
        let mut nodes = per_node.into_iter().enumerate();
        for (host, transport) in host_sides.into_iter().enumerate() {
            let agents: Vec<(u32, Vec<AgentFlow>)> = nodes
                .by_ref()
                .take(per_host)
                .map(|(node, flows)| (node as u32, flows))
                .collect();
            let hosted = agents.len();
            let clock = clock.clone();
            let delta = cfg.delta;
            let tick = cfg.tick;
            let hub = hub.clone();
            handles.push(std::thread::spawn(move || {
                run_agent_host(host, agents, transport, clock, delta, tick, hub)
                    .unwrap_or_else(|_| vec![0; hosted])
            }));
        }
        coord_sides
    };

    // Run the coordinator (or reconciler + shard threads) here.
    let coord_cfg = CoordinatorConfig {
        delta: cfg.delta,
        clairvoyant: cfg.clairvoyant,
        restart_at: cfg.restart_coordinator_at,
        wall_deadline: cfg.wall_deadline,
    };
    let (coordinator, shard_epochs) = if cfg.shards <= 1 {
        let report = run_coordinator_with_telemetry(
            &registry,
            make_sched,
            &mut coord_sides,
            &clock,
            &coord_cfg,
            None,
            hub.as_deref(),
        );
        (report, Vec::new())
    } else {
        // One link per shard, plus one for the standby replica the
        // failover drill swaps in.
        let spare = usize::from(cfg.restart_shard_at.is_some());
        let (mut recon_sides, shard_sides) = link_pairs(cfg.transport, cfg.shards + spare, 1024);
        let spare_recon_side = (spare == 1).then(|| recon_sides.pop().expect("spare link"));
        let failover = cfg.restart_shard_at.map(|at| ShardFailover {
            shard: 0,
            at,
            spare: spare_recon_side.expect("spare link"),
        });
        let registry_ref = &registry;
        let clairvoyant = cfg.clairvoyant;
        let shards = cfg.shards;
        let partitioned = cfg.partitioned;
        let staleness = cfg.staleness;
        let hub_ref = hub.as_deref();
        std::thread::scope(|s| {
            let shard_handles: Vec<_> = shard_sides
                .into_iter()
                .enumerate()
                .map(|(i, link)| {
                    // The extra link (index `shards`) is the standby
                    // replica of shard 0, idle until swapped in.
                    let shard = if i < shards { i } else { 0 };
                    s.spawn(move || {
                        if partitioned {
                            run_partitioned_shard(
                                shard,
                                shards,
                                staleness,
                                registry_ref,
                                saath_core::SaathConfig::default(),
                                link,
                                clairvoyant,
                                hub_ref,
                            )
                        } else {
                            run_shard(shard, shards, registry_ref, make_sched, link, clairvoyant)
                        }
                    })
                })
                .collect();
            let report = run_sharded_coordinator(
                registry_ref,
                &mut coord_sides,
                recon_sides,
                failover,
                &clock,
                &coord_cfg,
                None,
                hub.as_deref(),
            );
            let shard_epochs = shard_handles
                .into_iter()
                .map(|h| h.join().expect("shard panicked").unwrap_or(0))
                .collect();
            (report, shard_epochs)
        })
    };

    // Agents exit on Shutdown (sent by the coordinator) or disconnect.
    drop(coord_sides);
    let agent_epochs: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("agent panicked"))
        .collect();

    // Render the final page after every writer has exited, then stop
    // the endpoint.
    let metrics = hub.as_ref().map(|h| h.render());
    if let Some(s) = server.as_mut() {
        s.shutdown();
    }

    EmulationReport {
        coordinator,
        agent_epochs,
        shard_epochs,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saath_core::{Aalo, Saath};
    use saath_simcore::{Bytes, CoflowId, NodeId, Rate};
    use saath_workload::{CoflowSpec, FlowSpec};

    fn small_trace(n_coflows: usize) -> Trace {
        // A deterministic mesh on 6 nodes; sizes a few MB so an
        // emulation at scale 50 finishes in well under a second of
        // wall time per coflow batch.
        let mut coflows = Vec::new();
        for i in 0..n_coflows {
            let src = (i % 3) as u32;
            let dst = 3 + (i % 3) as u32;
            coflows.push(CoflowSpec::new(
                CoflowId(i as u32),
                Time::from_millis(200 * i as u64),
                vec![
                    FlowSpec::new(NodeId(src), NodeId(dst), Bytes::mb(20)),
                    FlowSpec::new(NodeId((src + 1) % 3), NodeId(dst), Bytes::mb(20)),
                ],
            ));
        }
        Trace {
            num_nodes: 6,
            port_rate: Rate::gbps(1),
            coflows,
        }
    }

    #[test]
    fn inproc_emulation_completes_all_coflows() {
        let trace = small_trace(6);
        let report = emulate(
            &trace,
            &|| Box::new(Saath::with_defaults()),
            &EmulationConfig::default(),
        );
        assert!(!report.coordinator.timed_out, "emulation timed out");
        assert_eq!(report.coordinator.records.len(), 6);
        assert!(report.coordinator.epochs > 0);
        // Every agent that owned flows applied at least one schedule.
        assert!(report.agent_epochs.iter().take(3).all(|&e| e > 0));
        // CCTs are positive and bounded by the emulated horizon.
        for r in &report.coordinator.records {
            let cct = r.cct().as_secs_f64();
            assert!(cct > 0.0 && cct < 120.0, "cct {cct}");
        }
    }

    #[test]
    fn tcp_emulation_matches_inproc_shape() {
        let trace = small_trace(4);
        let cfg = EmulationConfig {
            transport: TransportKind::Tcp,
            ..Default::default()
        };
        let report = emulate(&trace, &|| Box::new(Aalo::with_defaults()), &cfg);
        assert!(!report.coordinator.timed_out);
        assert_eq!(report.coordinator.records.len(), 4);
    }

    /// The live metrics plane during a TCP emulation: `/metrics` must
    /// be fetchable and parseable mid-run, and the final report must
    /// carry the same families.
    #[test]
    fn tcp_emulation_serves_live_metrics() {
        use std::io::{Read as _, Write as _};

        let trace = small_trace(4);
        // emulate() blocks this thread, so the mid-run fetch comes from
        // a helper thread — which needs to know the port up front.
        // Reserve an ephemeral one by bind-and-release.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let cfg = EmulationConfig {
            transport: TransportKind::Tcp,
            metrics_addr: Some(addr.to_string()),
            ..Default::default()
        };

        let fetcher = std::thread::spawn(move || {
            // Poll until the run is far enough along that the page has
            // content; bounded so a broken server cannot hang the test.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let mut last = String::new();
            while std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(50));
                let Ok(mut s) = std::net::TcpStream::connect(addr) else {
                    continue;
                };
                if write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").is_err() {
                    continue;
                }
                let mut page = String::new();
                if s.read_to_string(&mut page).is_err() {
                    continue;
                }
                if page.contains("saath_coord_epochs_total") {
                    last = page;
                    break;
                }
            }
            last
        });

        let report = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
        let live_page = fetcher.join().unwrap();

        assert!(!report.coordinator.timed_out);
        assert_eq!(report.coordinator.records.len(), 4);
        assert!(
            live_page.starts_with("HTTP/1.1 200 OK"),
            "mid-run /metrics fetch failed: {live_page:?}"
        );
        assert!(live_page.contains("# TYPE saath_coord_epochs_total counter"));

        // Every line of the exposition body must parse: comments, or
        // `name[{labels}] integer`.
        let final_page = report.metrics.expect("metrics_addr set");
        for line in final_page.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').unwrap_or((line, ""));
            assert!(
                value.parse::<u64>().is_ok(),
                "non-integer sample in exposition: {line}"
            );
        }
        assert!(final_page.contains("saath_transport_frames_sent_total{link=\"agent\"}"));
        assert!(final_page.contains("saath_active_coflows 0"));
        assert!(final_page.contains("saath_completed_coflows 4"));
        assert!(final_page.contains("saath_epoch_phase_ns_count{phase=\"coord_schedule\"}"));
        assert!(final_page.contains("saath_epoch_phase_ns_count{phase=\"agent_apply\"}"));
    }

    #[test]
    fn coordinator_failover_recovers() {
        let trace = small_trace(6);
        let cfg = EmulationConfig {
            // Restart mid-replay (coflows span ~1.2 sim-seconds).
            restart_coordinator_at: Some(Time::from_millis(600)),
            ..Default::default()
        };
        let report = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
        assert!(report.coordinator.restarted, "failover never injected");
        assert!(!report.coordinator.timed_out);
        assert_eq!(
            report.coordinator.records.len(),
            6,
            "all CoFlows must survive a coordinator restart"
        );
    }

    #[test]
    fn sharded_emulation_completes_all_coflows() {
        let trace = small_trace(6);
        let cfg = EmulationConfig {
            shards: 2,
            ..Default::default()
        };
        let report = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
        assert!(!report.coordinator.timed_out, "sharded emulation timed out");
        assert_eq!(report.coordinator.records.len(), 6);
        assert!(report.coordinator.epochs > 0);
        assert_eq!(report.shard_epochs.len(), 2);
        // Lockstep barriers: every shard computes every round.
        assert!(report.shard_epochs.iter().all(|&e| e > 0));
        assert!(report.agent_epochs.iter().take(3).all(|&e| e > 0));
    }

    #[test]
    fn sharded_emulation_over_tcp() {
        let trace = small_trace(4);
        let cfg = EmulationConfig {
            transport: TransportKind::Tcp,
            shards: 2,
            ..Default::default()
        };
        let report = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
        assert!(!report.coordinator.timed_out);
        assert_eq!(report.coordinator.records.len(), 4);
        assert_eq!(report.shard_epochs.len(), 2);
    }

    /// Partitioned mode over the real transport stack: every CoFlow
    /// completes, every shard computes rounds, and the metrics plane
    /// carries the summary-exchange families.
    #[test]
    fn partitioned_emulation_completes_with_summary_metrics() {
        let trace = small_trace(6);
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let cfg = EmulationConfig {
            shards: 2,
            partitioned: true,
            staleness: 2,
            metrics_addr: Some(addr.to_string()),
            ..Default::default()
        };
        let report = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
        assert!(
            !report.coordinator.timed_out,
            "partitioned emulation timed out"
        );
        assert_eq!(report.coordinator.records.len(), 6);
        assert_eq!(report.shard_epochs.len(), 2);
        assert!(report.shard_epochs.iter().all(|&e| e > 0));
        let page = report.metrics.expect("metrics_addr set");
        assert!(
            page.contains("saath_summary_bytes_exchanged_total"),
            "summaries never crossed the shard boundary:\n{page}"
        );
        assert!(page.contains("# TYPE saath_summary_age_rounds gauge"));
    }

    #[test]
    #[should_panic(expected = "partitioned mode needs shards >= 2")]
    fn partitioned_without_shards_is_rejected() {
        let trace = small_trace(1);
        let cfg = EmulationConfig {
            partitioned: true,
            ..Default::default()
        };
        let _ = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
    }

    #[test]
    fn shard_failover_drill_recovers() {
        let trace = small_trace(6);
        let cfg = EmulationConfig {
            shards: 2,
            // Kill shard 0 mid-replay (coflows span ~1.2 sim-seconds);
            // the pre-spawned standby replica takes over.
            restart_shard_at: Some(Time::from_millis(600)),
            ..Default::default()
        };
        let report = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
        assert!(report.coordinator.restarted, "drill never injected");
        assert!(!report.coordinator.timed_out);
        assert_eq!(
            report.coordinator.records.len(),
            6,
            "all CoFlows must survive a shard restart"
        );
        // 2 shards + the standby replica.
        assert_eq!(report.shard_epochs.len(), 3);
        // The standby computed rounds after the swap.
        assert!(
            *report.shard_epochs.last().unwrap() > 0,
            "standby replica never took over"
        );
    }

    #[test]
    #[should_panic(expected = "needs shards >= 2")]
    fn shard_drill_without_shards_is_rejected() {
        let trace = small_trace(1);
        let cfg = EmulationConfig {
            restart_shard_at: Some(Time::from_millis(100)),
            ..Default::default()
        };
        let _ = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
    }

    /// Regression (accept-order wiring): loopback accept order is not
    /// guaranteed to match connector spawn order, so links must be
    /// slotted by their identifying `Hello`, not positionally. The
    /// connectors here arrive in *reverse* identity order on purpose;
    /// each accepted link must still land in its declared slot.
    #[test]
    fn tcp_links_are_identified_not_positionally_aligned() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let n = 4usize;
        let connectors: Vec<_> = (0..n)
            .map(|i| {
                std::thread::spawn(move || {
                    // Identity 0 arrives last, identity n-1 first.
                    std::thread::sleep(std::time::Duration::from_millis(30 * (n - i) as u64));
                    let mut t = TcpTransport::connect(&addr.to_string()).unwrap();
                    t.send(&Message::Hello { node: i as u32 }).unwrap();
                    // A distinguishing follow-up frame per identity.
                    t.send(&Message::Stats {
                        node: i as u32,
                        now_ns: i as u64,
                        flows: vec![],
                    })
                    .unwrap();
                    t
                })
            })
            .collect();
        let mut near = accept_identified(&listener, n);
        for (i, link) in near.iter_mut().enumerate() {
            let m = link
                .recv_timeout(std::time::Duration::from_secs(5))
                .unwrap()
                .unwrap();
            match m {
                Message::Stats { node, .. } => {
                    assert_eq!(node as usize, i, "slot {i} is cross-wired");
                }
                other => panic!("expected the identity stats frame, got {other:?}"),
            }
        }
        for c in connectors {
            c.join().unwrap();
        }
    }

    /// The deterministic portion of a record set: ids, arrivals,
    /// widths, byte totals, and flow sizes. `finish`/`flow_fcts` are
    /// wall-clock-quantized (δ-granular real time) and differ run to
    /// run even between two threaded executions, so equivalence is
    /// asserted on everything the wiring can actually influence.
    fn deterministic_parts(
        records: &[saath_metrics::CoflowRecord],
    ) -> Vec<(CoflowId, Time, usize, Bytes, Vec<Bytes>)> {
        let mut parts: Vec<_> = records
            .iter()
            .map(|r| {
                (
                    r.id,
                    r.arrival,
                    r.width,
                    r.total_bytes,
                    r.flow_sizes.clone(),
                )
            })
            .collect();
        // Completion order is wall-dependent; identity is not.
        parts.sort_by_key(|p| p.0);
        parts
    }

    /// Multiplexed hosts must be a pure wiring change: same records
    /// (all CoFlows complete, same deterministic fields), same
    /// per-node epoch coverage — here over in-process links, with the
    /// 6 nodes packed 2-per-host.
    #[test]
    fn multiplexed_inproc_matches_threaded_records() {
        let trace = small_trace(6);
        let threaded = emulate(
            &trace,
            &|| Box::new(Saath::with_defaults()),
            &EmulationConfig::default(),
        );
        let cfg = EmulationConfig {
            multiplex: 2,
            ..Default::default()
        };
        let multiplexed = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
        assert!(!threaded.coordinator.timed_out);
        assert!(!multiplexed.coordinator.timed_out, "multiplexed run hung");
        assert_eq!(
            deterministic_parts(&threaded.coordinator.records),
            deterministic_parts(&multiplexed.coordinator.records),
            "multiplexing changed the coordinator's records"
        );
        // One epoch count per *agent* (not per host), in node order.
        assert_eq!(multiplexed.agent_epochs.len(), 6);
        assert!(multiplexed.agent_epochs.iter().take(3).all(|&e| e > 0));
    }

    /// The same equivalence over real TCP, with a host count that
    /// does not divide the node count evenly (6 nodes, 4 per host →
    /// hosts of 4 and 2).
    #[test]
    fn multiplexed_tcp_matches_threaded_records() {
        let trace = small_trace(4);
        let threaded = emulate(
            &trace,
            &|| Box::new(Saath::with_defaults()),
            &EmulationConfig {
                transport: TransportKind::Tcp,
                ..Default::default()
            },
        );
        let cfg = EmulationConfig {
            transport: TransportKind::Tcp,
            multiplex: 4,
            ..Default::default()
        };
        let multiplexed = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
        assert!(!threaded.coordinator.timed_out);
        assert!(!multiplexed.coordinator.timed_out, "multiplexed run hung");
        assert_eq!(multiplexed.coordinator.records.len(), 4);
        assert_eq!(
            deterministic_parts(&threaded.coordinator.records),
            deterministic_parts(&multiplexed.coordinator.records),
            "multiplexing changed the coordinator's records over TCP"
        );
        assert_eq!(multiplexed.agent_epochs.len(), 6);
    }

    /// Multiplexed wiring composes with sharded coordinators: host
    /// links feed the reconciler, which forwards to the shards.
    #[test]
    fn multiplexed_sharded_emulation_completes() {
        let trace = small_trace(4);
        let cfg = EmulationConfig {
            shards: 2,
            multiplex: 3,
            ..Default::default()
        };
        let report = emulate(&trace, &|| Box::new(Saath::with_defaults()), &cfg);
        assert!(!report.coordinator.timed_out);
        assert_eq!(report.coordinator.records.len(), 4);
        assert_eq!(report.shard_epochs.len(), 2);
        assert!(report.shard_epochs.iter().all(|&e| e > 0));
        assert_eq!(report.agent_epochs.len(), 6);
    }

    #[test]
    #[should_panic(expected = "arrival-released traces only")]
    fn dag_traces_are_rejected() {
        let mut trace = small_trace(2);
        trace.coflows[1].deps = vec![CoflowId(0)];
        let _ = emulate(
            &trace,
            &|| Box::new(Saath::with_defaults()),
            &EmulationConfig::default(),
        );
    }
}
