//! The coordinator ↔ agent wire protocol.
//!
//! Hand-rolled binary framing over `bytes`: every frame is
//!
//! ```text
//! ┌─────────────┬─────────┬──────────┬───────────┐
//! │ len: u32 BE │ version │ type: u8 │ payload … │
//! └─────────────┴─────────┴──────────┴───────────┘
//! ```
//!
//! where `len` counts everything after itself. Integers are big-endian.
//! The protocol is deliberately tiny — the paper's agents piggyback all
//! coordination on one periodic stats report and one schedule push, and
//! that economy is why its local agents cost ~1.7 MB of memory (§7.3).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use saath_core::summary::ContentionSummary;

/// Protocol version byte; bumped on any incompatible change.
pub const VERSION: u8 = 1;

/// Maximum acceptable frame length (sanity bound against corrupt
/// length prefixes).
pub const MAX_FRAME: usize = 16 << 20;

/// Statistics for one flow, as reported by the sending agent (§5:
/// "per-flow bytes sent so far and which flows finished in this
/// interval", plus the §4.3 data-readiness bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowStat {
    /// Dense flow id.
    pub flow: u32,
    /// Bytes sent so far.
    pub sent: u64,
    /// Whether the flow completed.
    pub finished: bool,
    /// Whether the flow has data available to send.
    pub ready: bool,
}

/// One rate assignment within a schedule push.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateAssignment {
    /// Dense flow id.
    pub flow: u32,
    /// Assigned rate, bytes/second.
    pub rate: u64,
}

/// Every message that crosses the coordinator ↔ agent boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Agent announces itself (sent once per connection; repeated after
    /// a reconnect, which is how coordinator failover resynchronizes).
    Hello {
        /// The agent's node index.
        node: u32,
    },
    /// Periodic per-δ stats report from an agent.
    Stats {
        /// Reporting node.
        node: u32,
        /// The agent's local emulated time, nanoseconds (lets the
        /// coordinator reason about staleness).
        now_ns: u64,
        /// Stats for flows whose *sender* is this node.
        flows: Vec<FlowStat>,
    },
    /// Schedule push from the coordinator.
    Schedule {
        /// Monotone epoch counter (agents ignore stale epochs).
        epoch: u64,
        /// New rates; flows absent from the list pause.
        rates: Vec<RateAssignment>,
    },
    /// One shard coordinator's slice of the global schedule: the rates
    /// for the flows whose CoFlows the shard owns (sharded mode only;
    /// shard → reconciler).
    ShardSchedule {
        /// The reporting shard's index.
        shard: u32,
        /// The reconciliation epoch this slice answers.
        epoch: u64,
        /// Rates for the shard's owned flows.
        rates: Vec<RateAssignment>,
    },
    /// Reconciliation-round barrier from the reconciler to every shard
    /// coordinator: compute a schedule for the view as of `now_ns` and
    /// answer with a [`Message::ShardSchedule`] tagged `epoch`.
    Reconcile {
        /// The reconciliation epoch being opened.
        epoch: u64,
        /// The reconciler's emulated time, nanoseconds — shards build
        /// their views at this instant so every replica sees the same
        /// arrival frontier.
        now_ns: u64,
        /// When set, the shard must discard its scheduler state and
        /// rebuild from the latest stats (failover reconciliation: a
        /// restarted shard forces every peer to re-derive state, the
        /// sharded equivalent of the §5 single-coordinator restart).
        rebuild: bool,
    },
    /// One shard's bounded-staleness contention summary (partitioned
    /// mode only; shard → reconciler, which rebroadcasts it to every
    /// other shard). Carried verbatim — the simulator's
    /// `summary_bytes_exchanged` accounting assumes this framing, so
    /// [`ContentionSummary::encoded_len`] and this codec must agree
    /// (roundtrip-tested below).
    ContentionSummary {
        /// The exported summary; its `shard`/`round` fields identify
        /// the sender and its scheduling round.
        summary: ContentionSummary,
    },
    /// Orderly shutdown (harness → everyone).
    Shutdown,
}

/// An encode/decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Frame shorter than its header or payload truncated.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown message type byte.
    BadType(u8),
    /// Length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            ProtoError::BadType(t) => write!(f, "unknown message type {t}"),
            ProtoError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for ProtoError {}

const T_HELLO: u8 = 1;
const T_STATS: u8 = 2;
const T_SCHEDULE: u8 = 3;
const T_SHUTDOWN: u8 = 4;
const T_SHARD_SCHEDULE: u8 = 5;
const T_RECONCILE: u8 = 6;
const T_CONTENTION_SUMMARY: u8 = 7;

impl Message {
    /// Exact frame-body length (everything after the 4-byte prefix)
    /// this message encodes to. Cheap — no buffer is built — so senders
    /// can reject oversized messages before allocating anything.
    pub fn encoded_len(&self) -> usize {
        2 + match self {
            Message::Hello { .. } => 4,
            Message::Stats { flows, .. } => 16 + 13 * flows.len(),
            Message::Schedule { rates, .. } => 12 + 12 * rates.len(),
            Message::ShardSchedule { rates, .. } => 16 + 12 * rates.len(),
            Message::Reconcile { .. } => 17,
            Message::ContentionSummary { summary } => summary.encoded_len(),
            Message::Shutdown => 0,
        }
    }

    /// Encodes into a length-prefixed frame.
    ///
    /// Fails with [`ProtoError::Oversized`] when the body would exceed
    /// [`MAX_FRAME`] — the receiver's `decode_stream` would reject such
    /// a frame mid-stream anyway, so the failure belongs on the sender,
    /// where the message (and its flow count) is still in context.
    pub fn encode(&self) -> Result<Bytes, ProtoError> {
        let body_len = self.encoded_len();
        if body_len > MAX_FRAME {
            return Err(ProtoError::Oversized(body_len));
        }
        let mut body = BytesMut::with_capacity(body_len);
        body.put_u8(VERSION);
        match self {
            Message::Hello { node } => {
                body.put_u8(T_HELLO);
                body.put_u32(*node);
            }
            Message::Stats {
                node,
                now_ns,
                flows,
            } => {
                body.put_u8(T_STATS);
                body.put_u32(*node);
                body.put_u64(*now_ns);
                body.put_u32(flows.len() as u32);
                for f in flows {
                    body.put_u32(f.flow);
                    body.put_u64(f.sent);
                    body.put_u8(u8::from(f.finished) | (u8::from(f.ready) << 1));
                }
            }
            Message::Schedule { epoch, rates } => {
                body.put_u8(T_SCHEDULE);
                body.put_u64(*epoch);
                body.put_u32(rates.len() as u32);
                for r in rates {
                    body.put_u32(r.flow);
                    body.put_u64(r.rate);
                }
            }
            Message::ShardSchedule {
                shard,
                epoch,
                rates,
            } => {
                body.put_u8(T_SHARD_SCHEDULE);
                body.put_u32(*shard);
                body.put_u64(*epoch);
                body.put_u32(rates.len() as u32);
                for r in rates {
                    body.put_u32(r.flow);
                    body.put_u64(r.rate);
                }
            }
            Message::Reconcile {
                epoch,
                now_ns,
                rebuild,
            } => {
                body.put_u8(T_RECONCILE);
                body.put_u64(*epoch);
                body.put_u64(*now_ns);
                body.put_u8(u8::from(*rebuild));
            }
            Message::ContentionSummary { summary } => {
                body.put_u8(T_CONTENTION_SUMMARY);
                body.put_u32(summary.shard);
                body.put_u64(summary.round);
                body.put_u32(summary.port_coflows.len() as u32);
                for &(p, c) in &summary.port_coflows {
                    body.put_u32(p);
                    body.put_u32(c);
                }
                body.put_u32(summary.port_rates.len() as u32);
                for &(p, r) in &summary.port_rates {
                    body.put_u32(p);
                    body.put_u64(r);
                }
                body.put_u32(summary.queue_coflows.len() as u32);
                for &c in &summary.queue_coflows {
                    body.put_u32(c);
                }
                body.put_u32(summary.queue_kc_sum.len() as u32);
                for &s in &summary.queue_kc_sum {
                    body.put_u64(s);
                }
            }
            Message::Shutdown => {
                body.put_u8(T_SHUTDOWN);
            }
        }
        debug_assert_eq!(body.len(), body_len, "encoded_len out of sync");
        let mut frame = BytesMut::with_capacity(4 + body.len());
        frame.put_u32(body.len() as u32);
        frame.extend_from_slice(&body);
        Ok(frame.freeze())
    }

    /// Decodes one frame *body* (everything after the length prefix).
    pub fn decode_body(mut body: Bytes) -> Result<Message, ProtoError> {
        if body.remaining() < 2 {
            return Err(ProtoError::Truncated);
        }
        let version = body.get_u8();
        if version != VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let ty = body.get_u8();
        let need = |b: &Bytes, n: usize| {
            if b.remaining() < n {
                Err(ProtoError::Truncated)
            } else {
                Ok(())
            }
        };
        match ty {
            T_HELLO => {
                need(&body, 4)?;
                Ok(Message::Hello {
                    node: body.get_u32(),
                })
            }
            T_STATS => {
                need(&body, 16)?;
                let node = body.get_u32();
                let now_ns = body.get_u64();
                let n = body.get_u32() as usize;
                if n > MAX_FRAME / 13 {
                    return Err(ProtoError::Oversized(n));
                }
                need(&body, n * 13)?;
                let mut flows = Vec::with_capacity(n);
                for _ in 0..n {
                    let flow = body.get_u32();
                    let sent = body.get_u64();
                    let bits = body.get_u8();
                    flows.push(FlowStat {
                        flow,
                        sent,
                        finished: bits & 1 != 0,
                        ready: bits & 2 != 0,
                    });
                }
                Ok(Message::Stats {
                    node,
                    now_ns,
                    flows,
                })
            }
            T_SCHEDULE => {
                need(&body, 12)?;
                let epoch = body.get_u64();
                let n = body.get_u32() as usize;
                if n > MAX_FRAME / 12 {
                    return Err(ProtoError::Oversized(n));
                }
                need(&body, n * 12)?;
                let mut rates = Vec::with_capacity(n);
                for _ in 0..n {
                    let flow = body.get_u32();
                    let rate = body.get_u64();
                    rates.push(RateAssignment { flow, rate });
                }
                Ok(Message::Schedule { epoch, rates })
            }
            T_SHARD_SCHEDULE => {
                need(&body, 16)?;
                let shard = body.get_u32();
                let epoch = body.get_u64();
                let n = body.get_u32() as usize;
                if n > MAX_FRAME / 12 {
                    return Err(ProtoError::Oversized(n));
                }
                need(&body, n * 12)?;
                let mut rates = Vec::with_capacity(n);
                for _ in 0..n {
                    let flow = body.get_u32();
                    let rate = body.get_u64();
                    rates.push(RateAssignment { flow, rate });
                }
                Ok(Message::ShardSchedule {
                    shard,
                    epoch,
                    rates,
                })
            }
            T_RECONCILE => {
                need(&body, 17)?;
                let epoch = body.get_u64();
                let now_ns = body.get_u64();
                let rebuild = body.get_u8() != 0;
                Ok(Message::Reconcile {
                    epoch,
                    now_ns,
                    rebuild,
                })
            }
            T_CONTENTION_SUMMARY => {
                need(&body, 16)?;
                let mut summary = ContentionSummary {
                    shard: body.get_u32(),
                    round: body.get_u64(),
                    ..Default::default()
                };
                let n = body.get_u32() as usize;
                if n > MAX_FRAME / 8 {
                    return Err(ProtoError::Oversized(n));
                }
                need(&body, n * 8 + 4)?;
                summary.port_coflows.reserve(n);
                for _ in 0..n {
                    let p = body.get_u32();
                    let c = body.get_u32();
                    summary.port_coflows.push((p, c));
                }
                let n = body.get_u32() as usize;
                if n > MAX_FRAME / 12 {
                    return Err(ProtoError::Oversized(n));
                }
                need(&body, n * 12 + 4)?;
                summary.port_rates.reserve(n);
                for _ in 0..n {
                    let p = body.get_u32();
                    let r = body.get_u64();
                    summary.port_rates.push((p, r));
                }
                let n = body.get_u32() as usize;
                if n > MAX_FRAME / 4 {
                    return Err(ProtoError::Oversized(n));
                }
                need(&body, n * 4 + 4)?;
                summary.queue_coflows.reserve(n);
                for _ in 0..n {
                    summary.queue_coflows.push(body.get_u32());
                }
                let n = body.get_u32() as usize;
                if n > MAX_FRAME / 8 {
                    return Err(ProtoError::Oversized(n));
                }
                need(&body, n * 8)?;
                summary.queue_kc_sum.reserve(n);
                for _ in 0..n {
                    summary.queue_kc_sum.push(body.get_u64());
                }
                Ok(Message::ContentionSummary { summary })
            }
            T_SHUTDOWN => Ok(Message::Shutdown),
            other => Err(ProtoError::BadType(other)),
        }
    }

    /// Splits one complete frame off the front of `buf`, if present.
    /// Returns `Ok(None)` when more bytes are needed.
    pub fn decode_stream(buf: &mut BytesMut) -> Result<Option<Message>, ProtoError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::Oversized(len));
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        buf.advance(4);
        let body = buf.split_to(len).freeze();
        Message::decode_body(body).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let frame = m.encode().unwrap();
        assert_eq!(
            frame.len(),
            4 + m.encoded_len(),
            "encoded_len must match the actual frame"
        );
        let mut buf = BytesMut::from(&frame[..]);
        let got = Message::decode_stream(&mut buf).unwrap().unwrap();
        assert_eq!(got, m);
        assert!(buf.is_empty(), "leftover bytes after decode");
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::Hello { node: 7 });
        roundtrip(Message::Shutdown);
        roundtrip(Message::ShardSchedule {
            shard: 2,
            epoch: 11,
            rates: vec![RateAssignment {
                flow: 4,
                rate: 2_000,
            }],
        });
        roundtrip(Message::Reconcile {
            epoch: 9,
            now_ns: 77_000,
            rebuild: true,
        });
        roundtrip(Message::Reconcile {
            epoch: 10,
            now_ns: 78_000,
            rebuild: false,
        });
        roundtrip(Message::Stats {
            node: 3,
            now_ns: 123_456_789,
            flows: vec![
                FlowStat {
                    flow: 0,
                    sent: 10,
                    finished: false,
                    ready: true,
                },
                FlowStat {
                    flow: 9,
                    sent: u64::MAX,
                    finished: true,
                    ready: false,
                },
            ],
        });
        roundtrip(Message::ContentionSummary {
            summary: ContentionSummary {
                shard: 3,
                round: 17,
                port_coflows: vec![(0, 2), (9, 1)],
                port_rates: vec![(0, 125_000_000), (9, 1)],
                queue_coflows: vec![1, 0, 2],
                queue_kc_sum: vec![4, 0, 9],
            },
        });
        roundtrip(Message::ContentionSummary {
            summary: ContentionSummary::default(),
        });
        roundtrip(Message::Schedule {
            epoch: 42,
            rates: vec![
                RateAssignment {
                    flow: 1,
                    rate: 125_000_000,
                },
                RateAssignment { flow: 2, rate: 0 },
            ],
        });
    }

    #[test]
    fn stats_flags_pack_independently() {
        for (finished, ready) in [(false, false), (true, false), (false, true), (true, true)] {
            roundtrip(Message::Stats {
                node: 0,
                now_ns: 0,
                flows: vec![FlowStat {
                    flow: 1,
                    sent: 2,
                    finished,
                    ready,
                }],
            });
        }
    }

    #[test]
    fn oversized_messages_fail_at_encode_time() {
        // A Stats report that would exceed MAX_FRAME must be rejected by
        // the *sender*, with the offending size, not abort the
        // receiver's stream mid-decode.
        let flows = vec![
            FlowStat {
                flow: 0,
                sent: 0,
                finished: false,
                ready: true,
            };
            MAX_FRAME / 13 + 1
        ];
        let m = Message::Stats {
            node: 0,
            now_ns: 0,
            flows,
        };
        assert!(m.encoded_len() > MAX_FRAME);
        assert!(matches!(m.encode(), Err(ProtoError::Oversized(_))));

        // Schedule pushes are bounded the same way.
        let rates = vec![RateAssignment { flow: 0, rate: 0 }; MAX_FRAME / 12 + 1];
        let m = Message::Schedule { epoch: 1, rates };
        assert!(matches!(m.encode(), Err(ProtoError::Oversized(_))));
    }

    #[test]
    fn streaming_decode_handles_partial_and_multiple_frames() {
        let a = Message::Hello { node: 1 }.encode().unwrap();
        let b = Message::Shutdown.encode().unwrap();
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);

        // Feed byte by byte: no frame until complete.
        let mut buf = BytesMut::new();
        let mut decoded = Vec::new();
        for byte in stream.iter() {
            buf.extend_from_slice(&[*byte]);
            while let Some(m) = Message::decode_stream(&mut buf).unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, vec![Message::Hello { node: 1 }, Message::Shutdown]);
    }

    #[test]
    fn rejects_bad_version_and_type() {
        let mut frame = BytesMut::new();
        frame.put_u32(2);
        frame.put_u8(99); // bad version
        frame.put_u8(T_HELLO);
        let mut buf = frame.clone();
        assert_eq!(
            Message::decode_stream(&mut buf),
            Err(ProtoError::BadVersion(99))
        );

        let mut frame = BytesMut::new();
        frame.put_u32(2);
        frame.put_u8(VERSION);
        frame.put_u8(200); // bad type
        let mut buf = frame;
        assert_eq!(
            Message::decode_stream(&mut buf),
            Err(ProtoError::BadType(200))
        );
    }

    #[test]
    fn rejects_truncated_and_oversized() {
        // Truncated payload: claims a hello but has no node.
        let mut frame = BytesMut::new();
        frame.put_u32(2);
        frame.put_u8(VERSION);
        frame.put_u8(T_HELLO);
        let mut buf = frame;
        assert_eq!(Message::decode_stream(&mut buf), Err(ProtoError::Truncated));

        // Oversized length prefix.
        let mut frame = BytesMut::new();
        frame.put_u32((MAX_FRAME + 1) as u32);
        let mut buf = frame;
        assert!(matches!(
            Message::decode_stream(&mut buf),
            Err(ProtoError::Oversized(_))
        ));

        // Stats with an absurd element count.
        let mut frame = BytesMut::new();
        frame.put_u32(18);
        frame.put_u8(VERSION);
        frame.put_u8(T_STATS);
        frame.put_u32(0);
        frame.put_u64(0);
        frame.put_u32(u32::MAX);
        let mut buf = frame;
        assert!(matches!(
            Message::decode_stream(&mut buf),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn empty_buffer_wants_more() {
        let mut buf = BytesMut::new();
        assert_eq!(Message::decode_stream(&mut buf), Ok(None));
        buf.extend_from_slice(&[0, 0]);
        assert_eq!(Message::decode_stream(&mut buf), Ok(None));
    }
}
