//! The multiplexed agent host: N emulated agents, one thread.
//!
//! The classic harness wiring spends one blocking thread per agent,
//! which caps emulation size at OS-thread scale. [`run_agent_host`]
//! instead drives N [`AgentCore`] state machines from a single
//! readiness-driven event loop over **one shared link** to the
//! coordinator:
//!
//! 1. **Hello** — every hosted agent's handshake frame is queued at
//!    startup.
//! 2. **Apply-schedule** — inbound frames are drained nonblockingly;
//!    a schedule push is applied to every hosted agent (each core
//!    keeps its own strictly-newer-wins epoch guard).
//! 3. **Advance-NIC** — each agent's token-bucket counters move to
//!    `now`. Crediting uses actually-elapsed time, so a host that
//!    falls behind its tick cadence stays byte-correct — it just
//!    ticks coarser.
//! 4. **Report-stats** — agents whose δ report is due enqueue it,
//!    unless the link's outbound queue is over the high-water mark,
//!    in which case the writer is **parked**: the report is deferred
//!    (its due-mark stays set) and retried once the peer drains. A
//!    stalled coordinator therefore back-pressures exactly the agents
//!    behind the stalled link and costs bounded memory, instead of
//!    blocking a thread per agent or queueing unboundedly.
//!
//! Between iterations the loop sleeps in `poll(2)` ([`crate::poll`])
//! on the link's socket, waking early on readability (a schedule
//! push), on writability when a flush is pending, or at the NIC tick
//! deadline otherwise. Partial frames in either direction are already
//! resumable at the transport layer — a short read parks the frame in
//! the receive buffer, a short write parks the remainder in the send
//! queue — so no agent ever blocks the loop mid-frame. Over the
//! in-process transport (no file descriptor) the loop blocks in
//! `recv_timeout` with the tick as its budget, which is the same
//! cadence without the readiness wake-ups.

use crate::agent::{AgentCore, AgentFlow};
use crate::clock::EmuClock;
use crate::metrics::MetricsHub;
use crate::proto::Message;
use crate::transport::{Transport, TransportError};
use saath_simcore::Duration;
use saath_telemetry::prom::label_body;
use saath_telemetry::Phase;
use std::sync::Arc;

/// Outbound bytes a host link may queue before stats writers are
/// parked. One δ wave from a fully-loaded host is well under this, so
/// parking only engages when the peer actually stalls.
pub const WRITE_HIGH_WATER: usize = 256 * 1024;

/// Runs `agents` — `(node, owned flows)` pairs — multiplexed on one
/// thread over one shared `link`, until the coordinator sends
/// [`Message::Shutdown`] or the link drops. Returns the schedule
/// epochs each agent applied, in the order the agents were given.
///
/// `host` labels this host's metrics series; with a `hub`, the loop
/// maintains `saath_host_agents`, `saath_host_ready_events_total`,
/// and `saath_host_parked_writers_total`.
#[allow(clippy::too_many_arguments)]
pub fn run_agent_host(
    host: usize,
    agents: Vec<(u32, Vec<AgentFlow>)>,
    mut link: Box<dyn Transport>,
    clock: EmuClock,
    delta: Duration,
    tick: Duration,
    hub: Option<Arc<MetricsHub>>,
) -> Result<Vec<u64>, TransportError> {
    link.set_nonblocking(true)?;
    let now0 = clock.now();
    let mut cores: Vec<AgentCore> = agents
        .into_iter()
        .map(|(node, flows)| AgentCore::new(node, flows, delta, now0))
        .collect();

    let labels = hub
        .is_some()
        .then(|| label_body(&[("host", &host.to_string())]));
    if let (Some(h), Some(l)) = (hub.as_deref(), labels.as_deref()) {
        h.set("saath_host_agents", l, cores.len() as u64);
    }

    let epochs = |cores: &[AgentCore]| cores.iter().map(AgentCore::epochs_applied).collect();

    for c in &cores {
        match link.send(&c.hello()) {
            Ok(()) => {}
            Err(TransportError::Disconnected) => return Ok(epochs(&cores)),
            Err(e) => return Err(e),
        }
    }

    let tick_wall = clock.to_wall(tick);
    #[cfg(unix)]
    let fd = link.raw_fd();
    let mut ready_events: u64 = 0;
    let mut parked_writers: u64 = 0;

    loop {
        // Drain everything the link has buffered. A single socket
        // carries every hosted agent's traffic, so one wake-up may
        // deliver many frames.
        loop {
            match link.recv_timeout(std::time::Duration::ZERO) {
                Ok(Some(m)) => {
                    if matches!(m, Message::Shutdown) {
                        // Best-effort: let a final stats wave out.
                        let _ = link.try_flush();
                        return Ok(epochs(&cores));
                    }
                    if matches!(m, Message::Schedule { .. }) {
                        // One apply-span for the whole host, not one
                        // per agent — the push is applied N times.
                        let _span = hub.as_deref().map(|h| h.span(Phase::AgentApply));
                        for c in &mut cores {
                            c.on_message(&m, None);
                        }
                    }
                }
                Ok(None) => break,
                Err(TransportError::Disconnected) => return Ok(epochs(&cores)),
                Err(e) => return Err(e),
            }
        }

        // Advance every NIC, then emit the due reports — parking
        // writers while the outbound queue is over the high-water
        // mark so a stalled peer costs bounded memory.
        let now = clock.now();
        let mut parked_now: u64 = 0;
        for c in &mut cores {
            c.advance(now);
            if !c.stats_due(now) {
                continue;
            }
            if link.queued_bytes() > WRITE_HIGH_WATER {
                parked_now += 1;
                continue;
            }
            if let Some(report) = c.take_stats(now) {
                match link.send(&report) {
                    Ok(()) => {}
                    Err(TransportError::Disconnected) => return Ok(epochs(&cores)),
                    Err(e) => return Err(e),
                }
            }
        }
        match link.try_flush() {
            Ok(_fully) => {}
            Err(TransportError::Disconnected) => return Ok(epochs(&cores)),
            Err(e) => return Err(e),
        }
        parked_writers += parked_now;
        if let (Some(h), Some(l)) = (hub.as_deref(), labels.as_deref()) {
            if parked_now > 0 {
                h.set("saath_host_parked_writers_total", l, parked_writers);
            }
        }

        // Sleep until the next tick — or earlier, on socket readiness.
        #[cfg(unix)]
        let waited_via_poll = if let Some(fd) = fd {
            let want_write = link.queued_bytes() > 0;
            match crate::poll::wait_fd(fd, want_write, tick_wall) {
                Ok(r) => {
                    if r.any() {
                        ready_events += 1;
                        if let (Some(h), Some(l)) = (hub.as_deref(), labels.as_deref()) {
                            h.set("saath_host_ready_events_total", l, ready_events);
                        }
                    }
                    // A hangup is not an exit by itself: the drain
                    // loop above will read the frames still buffered
                    // and then surface the disconnect.
                    true
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        } else {
            false
        };
        #[cfg(not(unix))]
        let waited_via_poll = false;

        if !waited_via_poll {
            // In-process link: the channel itself is the wake-up
            // source. The received frame is handled exactly like the
            // drain loop would.
            match link.recv_timeout(tick_wall) {
                Ok(Some(m)) => {
                    ready_events += 1;
                    if let (Some(h), Some(l)) = (hub.as_deref(), labels.as_deref()) {
                        h.set("saath_host_ready_events_total", l, ready_events);
                    }
                    if matches!(m, Message::Shutdown) {
                        let _ = link.try_flush();
                        return Ok(epochs(&cores));
                    }
                    if matches!(m, Message::Schedule { .. }) {
                        let _span = hub.as_deref().map(|h| h.span(Phase::AgentApply));
                        for c in &mut cores {
                            c.on_message(&m, None);
                        }
                    }
                }
                Ok(None) => {}
                Err(TransportError::Disconnected) => return Ok(epochs(&cores)),
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FlowStat, RateAssignment};
    use crate::transport::inproc_pair;
    use saath_simcore::{Bytes, Time};

    /// One host, three agents, one shared in-process link: schedules
    /// fan out to every hosted agent, stats come back tagged per
    /// node, and shutdown returns one epoch count per agent.
    #[test]
    fn host_multiplexes_agents_over_one_link() {
        let (mut coord, host_side) = inproc_pair(1024);
        let clock = EmuClock::start(100);
        let agents: Vec<(u32, Vec<AgentFlow>)> = (0..3)
            .map(|n| {
                (
                    n,
                    vec![AgentFlow {
                        flow: n,
                        size: Bytes::mb(20),
                        activate_at: Time::ZERO,
                        ready_at: Time::ZERO,
                    }],
                )
            })
            .collect();
        let c2 = clock.clone();
        let handle = std::thread::spawn(move || {
            run_agent_host(
                0,
                agents,
                Box::new(host_side),
                c2,
                Duration::from_millis(400),
                Duration::from_millis(100),
                None,
            )
        });

        // All three hellos arrive on the single link.
        let mut hellos = Vec::new();
        for _ in 0..3 {
            match coord
                .recv_timeout(std::time::Duration::from_secs(2))
                .unwrap()
                .unwrap()
            {
                Message::Hello { node } => hellos.push(node),
                other => panic!("expected hello, got {other:?}"),
            }
        }
        hellos.sort_unstable();
        assert_eq!(hellos, vec![0, 1, 2]);

        // One push serves every hosted agent (1 Gbps each).
        coord
            .send(&Message::Schedule {
                epoch: 1,
                rates: (0..3)
                    .map(|f| RateAssignment {
                        flow: f,
                        rate: 125_000_000,
                    })
                    .collect(),
            })
            .unwrap();

        // Each agent finishes its 20 MB and reports under its own
        // node id over the shared link.
        let mut finished = std::collections::BTreeSet::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while finished.len() < 3 && std::time::Instant::now() < deadline {
            if let Some(Message::Stats { node, flows, .. }) = coord
                .recv_timeout(std::time::Duration::from_millis(100))
                .unwrap()
            {
                if flows.iter().any(|f: &FlowStat| f.finished) {
                    finished.insert(node);
                }
            }
        }
        assert_eq!(finished.len(), 3, "finished: {finished:?}");

        coord.send(&Message::Shutdown).unwrap();
        let epochs = handle.join().unwrap().unwrap();
        assert_eq!(epochs.len(), 3);
        assert!(epochs.iter().all(|&e| e >= 1), "epochs: {epochs:?}");
    }
}
