//! The global coordinator (Fig 6, §5).
//!
//! Every δ the coordinator (1) drains the agents' stats reports,
//! (2) rebuilds its view of the cluster *from those reports alone* —
//! it is stateless across intervals, the property the paper uses for
//! cheap failover — (3) runs whatever [`CoflowScheduler`] policy it was
//! given, and (4) pushes the schedule to every agent with a monotone
//! epoch. CoFlow registration is the [`CoflowRegistry`]: in the paper
//! the framework calls `register()`/`deregister()` over REST; here the
//! harness preloads the registry from the trace, which is equivalent
//! because registration happens at arrival times the coordinator only
//! acts on once they pass.

use crate::clock::EmuClock;
use crate::metrics::MetricsHub;
use crate::proto::{FlowStat, Message, RateAssignment};
use crate::transport::{Transport, TransportError, TransportStats};
use saath_core::view::{ClusterView, CoflowScheduler, CoflowView, FlowView, Schedule};
use saath_fabric::PortBank;
use saath_metrics::CoflowRecord;
use saath_simcore::{Bytes, CoflowId, Duration, FlowId, NodeId, Rate, Time};
use saath_telemetry::{Counter, Phase, Telemetry};
use saath_workload::Trace;

/// Static description of one registered CoFlow.
pub(crate) struct RegEntry {
    pub(crate) id: CoflowId,
    pub(crate) arrival: Time,
    pub(crate) job: Option<saath_simcore::JobId>,
    /// `(flow id, src, dst, size, ready offset)`.
    pub(crate) flows: Vec<(u32, NodeId, NodeId, Bytes, Duration)>,
}

/// The coordinator's CoFlow registry, preloaded from a trace.
pub struct CoflowRegistry {
    pub(crate) entries: Vec<RegEntry>,
    pub(crate) num_nodes: usize,
    pub(crate) port_rate: Rate,
    pub(crate) total_flows: usize,
}

impl CoflowRegistry {
    /// Builds a registry with the same dense flow ids the harness hands
    /// to agents (flows numbered in trace order).
    ///
    /// # Panics
    /// Panics on traces with DAG dependencies — the emulation registers
    /// CoFlows at arrival like the paper's testbed replay; DAG release
    /// is a simulator feature.
    pub fn from_trace(trace: &Trace) -> CoflowRegistry {
        let mut entries = Vec::with_capacity(trace.coflows.len());
        let mut next_flow = 0u32;
        for c in &trace.coflows {
            assert!(
                c.deps.is_empty(),
                "testbed emulation replays arrival-released traces only"
            );
            let flows = c
                .flows
                .iter()
                .map(|f| {
                    let id = next_flow;
                    next_flow += 1;
                    (id, f.src, f.dst, f.size, f.available_after)
                })
                .collect();
            entries.push(RegEntry {
                id: c.id,
                arrival: c.arrival,
                job: c.job,
                flows,
            });
        }
        CoflowRegistry {
            entries,
            num_nodes: trace.num_nodes,
            port_rate: trace.port_rate,
            total_flows: next_flow as usize,
        }
    }

    /// Number of registered CoFlows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Coordinator tuning.
pub struct CoordinatorConfig {
    /// Scheduling interval δ (simulated time).
    pub delta: Duration,
    /// Expose ground-truth sizes to the scheduler (clairvoyant runs).
    pub clairvoyant: bool,
    /// Recreate the scheduler at this simulated time — emulates a
    /// coordinator crash + failover; agents keep complying with the
    /// last schedule and the fresh scheduler rebuilds its state from
    /// the next stats wave (deadlines are re-derived, §5).
    pub restart_at: Option<Time>,
    /// Wall-clock watchdog: give up after this much real time.
    pub wall_deadline: std::time::Duration,
}

/// The stateless-rebuild core of the coordinator: latest per-flow
/// observations, CoFlow completion bookkeeping, and view construction —
/// everything a δ round derives from the agents' reports alone. Shared
/// by the single coordinator, each shard replica, and the reconciler,
/// so all three rebuild *the same* view from the same stats wave.
pub(crate) struct ObsState {
    obs: Vec<FlowObs>,
    done: Vec<Option<Time>>,
    pub(crate) records: Vec<CoflowRecord>,
}

/// Latest per-flow stats (dense).
#[derive(Clone, Copy)]
struct FlowObs {
    sent: u64,
    finished: bool,
    finished_at: Time,
    ready: Option<bool>,
}

impl ObsState {
    pub(crate) fn new(registry: &CoflowRegistry) -> ObsState {
        ObsState {
            obs: vec![
                FlowObs {
                    sent: 0,
                    finished: false,
                    finished_at: Time::ZERO,
                    ready: None,
                };
                registry.total_flows
            ],
            done: vec![None; registry.entries.len()],
            records: Vec::with_capacity(registry.entries.len()),
        }
    }

    /// Folds one stats report in. `now` stamps newly-finished flows.
    pub(crate) fn ingest(&mut self, flows: &[FlowStat], now: Time) {
        for &FlowStat {
            flow,
            sent,
            finished,
            ready,
        } in flows
        {
            let o = &mut self.obs[flow as usize];
            o.sent = o.sent.max(sent);
            o.ready = Some(ready);
            if finished && !o.finished {
                o.finished = true;
                o.finished_at = now;
            }
        }
    }

    /// Completion bookkeeping: records every CoFlow whose flows have all
    /// finished. Returns true once every registered CoFlow is done.
    pub(crate) fn sweep(&mut self, registry: &CoflowRegistry, now: Time) -> bool {
        for (ci, e) in registry.entries.iter().enumerate() {
            if self.done[ci].is_some() || e.arrival > now {
                continue;
            }
            if e.flows
                .iter()
                .all(|(fid, ..)| self.obs[*fid as usize].finished)
            {
                let finish = e
                    .flows
                    .iter()
                    .map(|(fid, ..)| self.obs[*fid as usize].finished_at)
                    .max()
                    .unwrap_or(now);
                self.done[ci] = Some(finish);
                self.records.push(CoflowRecord {
                    id: e.id,
                    job: e.job,
                    arrival: e.arrival,
                    released: e.arrival,
                    finish,
                    width: e.flows.len(),
                    total_bytes: e.flows.iter().map(|(_, _, _, s, _)| *s).sum(),
                    flow_fcts: e
                        .flows
                        .iter()
                        .map(|(fid, ..)| {
                            self.obs[*fid as usize]
                                .finished_at
                                .saturating_since(e.arrival)
                        })
                        .collect(),
                    flow_sizes: e.flows.iter().map(|(_, _, _, s, _)| *s).collect(),
                });
            }
        }
        self.records.len() == registry.entries.len()
    }

    /// Builds the view of active CoFlows at `now` into `views`.
    pub(crate) fn build_views(
        &self,
        registry: &CoflowRegistry,
        now: Time,
        clairvoyant: bool,
        views: &mut Vec<CoflowView>,
    ) {
        views.clear();
        for (ci, e) in registry.entries.iter().enumerate() {
            if self.done[ci].is_some() || e.arrival > now {
                continue;
            }
            views.push(CoflowView {
                id: e.id,
                arrival: e.arrival,
                flows: e
                    .flows
                    .iter()
                    .map(|(fid, src, dst, size, ready_off)| {
                        let o = &self.obs[*fid as usize];
                        FlowView {
                            id: FlowId(*fid),
                            src: *src,
                            dst: *dst,
                            sent: Bytes(o.sent),
                            ready: o.ready.unwrap_or(e.arrival + *ready_off <= now),
                            finished: o.finished,
                            oracle_size: clairvoyant.then_some(*size),
                        }
                    })
                    .collect(),
                restarted: false,
            });
        }
    }

    /// Number of CoFlows arrived and not yet finished at `now`.
    pub(crate) fn active_count(&self, registry: &CoflowRegistry, now: Time) -> u64 {
        registry
            .entries
            .iter()
            .enumerate()
            .filter(|(ci, e)| self.done[*ci].is_none() && e.arrival <= now)
            .count() as u64
    }

    /// Whether any registered CoFlow has arrived and not yet finished.
    pub(crate) fn has_active(&self, registry: &CoflowRegistry, now: Time) -> bool {
        registry
            .entries
            .iter()
            .enumerate()
            .any(|(ci, e)| self.done[ci].is_none() && e.arrival <= now)
    }

    pub(crate) fn into_sorted_records(mut self) -> Vec<CoflowRecord> {
        self.records.sort_by_key(|r| r.id);
        self.records
    }
}

/// What a coordinator run produced.
pub struct CoordinatorReport {
    /// Completed CoFlows (coordinator-observed times, δ-granular).
    pub records: Vec<CoflowRecord>,
    /// Schedule epochs pushed.
    pub epochs: u64,
    /// Whether the watchdog tripped before all CoFlows finished.
    pub timed_out: bool,
    /// Whether a mid-run scheduler restart was performed.
    pub restarted: bool,
}

/// Runs the coordinator until every registered CoFlow completes (or the
/// watchdog fires). `make_sched` builds the policy — and rebuilds it on
/// failover.
pub fn run_coordinator(
    registry: &CoflowRegistry,
    make_sched: &dyn Fn() -> Box<dyn CoflowScheduler>,
    agents: &mut [Box<dyn Transport>],
    clock: &EmuClock,
    cfg: &CoordinatorConfig,
) -> CoordinatorReport {
    run_coordinator_with_telemetry(registry, make_sched, agents, clock, cfg, None, None)
}

/// [`run_coordinator`] with optional instrumentation handles.
///
/// `tele` counts stats messages drained and schedule messages pushed,
/// and samples the wall-clock latency of each sync round (drain →
/// compute → push, excluding the δ sleep); no-op with `None` or with
/// the `telemetry` feature off. `hub` is the live metrics plane:
/// per-phase latency spans (obs-recv / schedule / broadcast), the
/// active/completed gauges, and the aggregated agent-link transport
/// counters — opt-in at runtime via [`EmulationConfig::metrics_addr`],
/// so `None` costs one branch per use site.
///
/// [`EmulationConfig::metrics_addr`]: crate::harness::EmulationConfig
pub fn run_coordinator_with_telemetry(
    registry: &CoflowRegistry,
    make_sched: &dyn Fn() -> Box<dyn CoflowScheduler>,
    agents: &mut [Box<dyn Transport>],
    clock: &EmuClock,
    cfg: &CoordinatorConfig,
    mut tele: Option<&mut Telemetry>,
    hub: Option<&MetricsHub>,
) -> CoordinatorReport {
    let mut sched = make_sched();
    let mut restarted = false;
    let mut state = ObsState::new(registry);
    let mut views: Vec<CoflowView> = Vec::new();
    let mut epochs: u64 = 0;
    let mut bank = PortBank::uniform(registry.num_nodes, registry.port_rate);
    let mut out = Schedule::default();
    let started_wall = std::time::Instant::now();
    let delta_wall = clock.to_wall(cfg.delta);

    loop {
        if started_wall.elapsed() > cfg.wall_deadline {
            for a in agents.iter_mut() {
                let _ = a.send(&Message::Shutdown);
            }
            return CoordinatorReport {
                records: state.into_sorted_records(),
                epochs,
                timed_out: true,
                restarted,
            };
        }

        // Failover injection.
        if let Some(t) = cfg.restart_at {
            if !restarted && clock.now() >= t {
                sched = make_sched();
                restarted = true;
            }
        }

        // Drain stats from every agent.
        let now = clock.now();
        let t_round = tele.as_ref().map(|_| std::time::Instant::now());
        let mut stats_msgs: u64 = 0;
        {
            let _span = hub.map(|h| h.span(Phase::CoordObsRecv));
            for a in agents.iter_mut() {
                loop {
                    match a.recv_timeout(std::time::Duration::ZERO) {
                        Ok(Some(Message::Stats { flows, .. })) => {
                            stats_msgs += 1;
                            if saath_telemetry::enabled() {
                                if let Some(t) = tele.as_deref_mut() {
                                    t.incr(Counter::CoordStatsMsgs);
                                }
                            }
                            state.ingest(&flows, now);
                        }
                        // A multiplexed host link carries many agents'
                        // frames: stray non-stats frames (the hosted
                        // agents' hellos) must not end the drain, or a
                        // host of N agents would stall its stats by one
                        // round per queued hello.
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(TransportError::Disconnected) => break,
                        Err(_) => break,
                    }
                }
            }
        }
        if let Some(h) = hub {
            if stats_msgs > 0 {
                h.incr("saath_coord_stats_msgs_total", "", stats_msgs);
            }
        }

        // Completion bookkeeping.
        if state.sweep(registry, now) {
            for a in agents.iter_mut() {
                let _ = a.send(&Message::Shutdown);
            }
            if let Some(h) = hub {
                // Final gauge values — the epoch loop won't run again.
                h.set("saath_active_coflows", "", 0);
                h.set("saath_completed_coflows", "", state.records.len() as u64);
            }
            return CoordinatorReport {
                records: state.into_sorted_records(),
                epochs,
                timed_out: false,
                restarted,
            };
        }

        // Build the view of active CoFlows and compute a schedule.
        state.build_views(registry, now, cfg.clairvoyant, &mut views);

        if !views.is_empty() {
            bank.reset_round();
            out.clear();
            let view = ClusterView {
                now,
                num_nodes: registry.num_nodes,
                coflows: &views,
                changed: None,
            };
            {
                let _span = hub.map(|h| h.span(Phase::CoordSchedule));
                sched.compute(&view, &mut bank, &mut out);
            }
            epochs += 1;
            let rates: Vec<RateAssignment> = out
                .rates
                .iter()
                .map(|(f, r)| RateAssignment {
                    flow: f.0,
                    rate: r.as_u64(),
                })
                .collect();
            let push = Message::Schedule {
                epoch: epochs,
                rates,
            };
            {
                let _span = hub.map(|h| h.span(Phase::CoordBroadcast));
                for a in agents.iter_mut() {
                    let _ = a.send(&push);
                    if saath_telemetry::enabled() {
                        if let Some(t) = tele.as_deref_mut() {
                            t.incr(Counter::CoordScheduleMsgs);
                        }
                    }
                }
            }
            if let Some(h) = hub {
                h.incr("saath_coord_epochs_total", "", 1);
                h.incr("saath_coord_schedule_msgs_total", "", agents.len() as u64);
            }
            if saath_telemetry::enabled() {
                if let Some(t) = tele.as_deref_mut() {
                    t.incr(Counter::CoordEpochs);
                }
            }
        }
        if let Some(h) = hub {
            h.set("saath_active_coflows", "", views.len() as u64);
            h.set("saath_completed_coflows", "", state.records.len() as u64);
            let mut link = TransportStats::default();
            for a in agents.iter() {
                link.merge(&a.stats());
            }
            h.set_transport("link=\"agent\"", &link);
        }
        if saath_telemetry::enabled() {
            if let Some(t) = tele.as_deref_mut() {
                if let Some(started) = t_round {
                    t.sync_round_ns.observe(started.elapsed().as_nanos() as u64);
                }
            }
        }

        std::thread::sleep(delta_wall);
    }
}
