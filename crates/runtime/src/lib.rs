//! # saath-runtime
//!
//! The distributed half of the Saath reproduction: a real **global
//! coordinator** and real **local agents** exchanging framed messages,
//! the architecture of Fig 6 and §5. Where `saath-simulator` models the
//! coordination loop analytically, this crate *runs* it: agents are
//! threads (one per node, as the paper's agents are one per machine)
//! that enforce rates on emulated NICs, report flow statistics every δ,
//! and comply with the last schedule until a new one arrives; the
//! coordinator is stateless between intervals — it rebuilds its view of
//! the cluster from the latest reports, exactly the property the paper
//! uses for failover ("since the coordinator makes scheduling decisions
//! on the latest flow stats … it is easy … to recover from failures").
//!
//! This is the substitute for the paper's 150-node Azure testbed
//! (§7): the observable behaviour that determines CCTs — pipelined
//! δ-interval coordination, schedule staleness, per-flow rate
//! enforcement, restarts — is reproduced; moving real gigabits is not,
//! because a token-bucket byte counter drains exactly like a socket
//! under the fluid model. An [`transport::Transport`] abstraction lets
//! the same coordinator/agent code run over in-process channels (fast,
//! used by tests) or real TCP sockets with length-prefixed frames
//! (`bytes`-based, used by the `testbed_emulation` example).
//!
//! Time runs on a scaled clock ([`clock::EmuClock`]): one wall second
//! is `scale` simulated seconds, so an hour-long trace replays in
//! seconds while every δ-interval mechanism still executes for real.

#![warn(missing_docs)]
// `deny`, not `forbid`: the `poll` module carries a scoped
// `#[allow(unsafe_code)]` for its single libc-level `poll(2)`
// declaration — the readiness primitive behind the multiplexed agent
// host. Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]

pub mod agent;
pub mod clock;
pub mod coordinator;
pub mod harness;
pub mod host;
pub mod metrics;
pub mod poll;
pub mod proto;
pub mod shard;
pub mod transport;

pub use clock::EmuClock;
pub use harness::{emulate, EmulationConfig, EmulationReport, TransportKind};
pub use host::run_agent_host;
pub use metrics::{MetricsHub, MetricsServer};
pub use shard::{
    merge_rates, run_partitioned_shard, run_shard, run_sharded_coordinator, ShardFailover,
    ShardedScheduler,
};
pub use transport::TransportStats;
