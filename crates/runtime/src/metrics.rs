//! The runtime's live metrics plane: a process-wide [`MetricsHub`]
//! aggregating counters, gauges, and per-phase latency histograms from
//! the coordinator, reconciler, shards, agents, and transports, plus a
//! minimal blocking HTTP server that exposes the hub as a Prometheus
//! text page at `/metrics` (stdlib `TcpListener` only — no new
//! dependencies, matching the workspace's vendored-stub discipline).
//!
//! ## Exposition determinism
//!
//! The page layout is deterministic: families render in a fixed order
//! (the [`FAMILY_HELP`] table order), series within a family in sorted
//! label order (`BTreeMap` iteration), and every value is an integer.
//! Deterministic families (message/byte/epoch counts) come first;
//! wall-time families (nanosecond phase latencies) render last under
//! an explicit section banner, so diffing two expositions separates
//! behavioural changes from mere speed changes. The byte-stable layout
//! is pinned by a golden test here and in `saath-telemetry::prom`.
//!
//! ## Threading
//!
//! One `Mutex` guards the whole hub. Every writer records at most a
//! few times per δ epoch (coordinator phases, per-epoch gauge sets,
//! agent apply spans), so contention is negligible next to the epoch
//! sleep; the lock is never held across I/O.

use crate::transport::TransportStats;
use saath_telemetry::prom::PromText;
use saath_telemetry::{LogHist, Phase, PHASES};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// `(family name, help text)` for every `saath_*` family the runtime
/// emits, in exposition order. Counters and gauges the hub has no
/// series for are omitted from the page (scrapes stay small), but the
/// order here is what fixes the layout.
const FAMILY_HELP: &[(&str, &str)] = &[
    (
        "saath_coord_epochs_total",
        "Schedule epochs pushed by the coordinator",
    ),
    (
        "saath_coord_stats_msgs_total",
        "Agent stats reports drained by the coordinator",
    ),
    (
        "saath_coord_schedule_msgs_total",
        "Schedule messages pushed to agents",
    ),
    (
        "saath_shard_slices_total",
        "Fresh shard schedule slices received by the reconciler",
    ),
    (
        "saath_shard_fallback_slices_total",
        "Reconciliation rounds served from a shard's previous slice",
    ),
    (
        "saath_shard_merge_clamps_total",
        "Rate assignments clamped by the reconciler's port-capacity merge",
    ),
    (
        "saath_shard_standby_rebuilds_total",
        "Global rebuild broadcasts after a shard standby swap-in",
    ),
    (
        "saath_transport_frames_sent_total",
        "Messages sent over coordinator-side transports",
    ),
    (
        "saath_transport_frames_recv_total",
        "Messages received over coordinator-side transports",
    ),
    (
        "saath_transport_bytes_sent_total",
        "Encoded bytes sent over coordinator-side transports",
    ),
    (
        "saath_transport_bytes_recv_total",
        "Encoded bytes received over coordinator-side transports",
    ),
    (
        "saath_transport_recv_timeouts_total",
        "recv_timeout calls that expired empty (poll retries)",
    ),
    (
        "saath_host_agents",
        "Emulated agents multiplexed on this agent host",
    ),
    (
        "saath_host_ready_events_total",
        "Readiness wake-ups (socket or channel) observed by the host loop",
    ),
    (
        "saath_host_parked_writers_total",
        "Stats reports deferred because the host link was over its write high-water mark",
    ),
    (
        "saath_active_coflows",
        "CoFlows arrived and not yet finished, as of the last epoch",
    ),
    (
        "saath_completed_coflows",
        "CoFlows recorded complete by the coordinator",
    ),
    (
        "saath_shard_replica_lag_epochs",
        "Reconciler epoch minus the shard's last fresh slice epoch",
    ),
    (
        "saath_summary_bytes_exchanged_total",
        "Contention-summary bytes shipped between partitioned shards",
    ),
    (
        "saath_summary_age_rounds",
        "Rounds since the shard last exported its contention summary",
    ),
    (
        "saath_stale_order_decisions_total",
        "CoFlows ordered against summaries older than one round",
    ),
];

/// Which families are gauges (everything else in [`FAMILY_HELP`] is a
/// counter). Gauges are set, counters are set-or-added; both render as
/// their Prometheus type.
const GAUGES: &[&str] = &[
    "saath_host_agents",
    "saath_active_coflows",
    "saath_completed_coflows",
    "saath_shard_replica_lag_epochs",
    "saath_summary_age_rounds",
];

#[derive(Default)]
struct HubInner {
    /// `(family, rendered labels)` → value. One map for counters and
    /// gauges alike; the family decides the rendered TYPE.
    series: BTreeMap<(&'static str, String), u64>,
    phases: [LogHist; PHASES.len()],
}

/// The process-wide metrics registry. Cheap to share (`Arc`), safe
/// from any thread.
#[derive(Default)]
pub struct MetricsHub {
    inner: Mutex<HubInner>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Adds `n` to the `(family, labels)` series. `labels` is a
    /// pre-rendered body like `shard="0"` (see
    /// [`saath_telemetry::prom::label_body`]) or `""` for none.
    pub fn incr(&self, family: &'static str, labels: &str, n: u64) {
        let mut g = self.inner.lock().expect("metrics hub poisoned");
        *g.series.entry((family, labels.to_string())).or_insert(0) += n;
    }

    /// Sets the `(family, labels)` series to `v` (gauges, or counters
    /// whose true monotone value lives elsewhere, e.g. transports).
    pub fn set(&self, family: &'static str, labels: &str, v: u64) {
        let mut g = self.inner.lock().expect("metrics hub poisoned");
        g.series.insert((family, labels.to_string()), v);
    }

    /// Folds one duration sample (nanoseconds) into `phase`.
    pub fn observe_phase(&self, phase: Phase, ns: u64) {
        let mut g = self.inner.lock().expect("metrics hub poisoned");
        g.phases[phase as usize].observe(ns);
    }

    /// Starts an RAII span: the guard records its elapsed wall time
    /// into `phase` on drop. The hub is borrowed shared, so spans nest
    /// freely around code that also increments counters.
    pub fn span(&self, phase: Phase) -> HubSpan<'_> {
        HubSpan {
            hub: self,
            phase,
            start: Instant::now(),
        }
    }

    /// Folds a transport's cumulative stats into the transport
    /// families under `labels` (overwrites — the transport owns the
    /// true monotone counts).
    pub fn set_transport(&self, labels: &str, s: &TransportStats) {
        let mut g = self.inner.lock().expect("metrics hub poisoned");
        for (family, v) in [
            ("saath_transport_frames_sent_total", s.frames_sent),
            ("saath_transport_frames_recv_total", s.frames_recv),
            ("saath_transport_bytes_sent_total", s.bytes_sent),
            ("saath_transport_bytes_recv_total", s.bytes_recv),
            ("saath_transport_recv_timeouts_total", s.recv_timeouts),
        ] {
            g.series.insert((family, labels.to_string()), v);
        }
    }

    /// Renders the deterministic-layout Prometheus text page.
    pub fn render(&self) -> String {
        let g = self.inner.lock().expect("metrics hub poisoned");
        let mut p = PromText::new();
        p.section("deterministic");
        for (family, help) in FAMILY_HELP {
            let rows: Vec<(&str, u64)> = g
                .series
                .range((*family, String::new())..)
                .take_while(|((f, _), _)| f == family)
                .map(|((_, labels), v)| (labels.as_str(), *v))
                .collect();
            if rows.is_empty() {
                continue;
            }
            if GAUGES.contains(family) {
                p.gauge(family, help, &rows);
            } else {
                p.counter(family, help, &rows);
            }
        }
        p.section("wall-clock (nondeterministic values, stable layout)");
        let rows: Vec<(&str, &LogHist)> = PHASES
            .iter()
            .filter(|ph| g.phases[**ph as usize].count > 0)
            .map(|ph| (ph.name(), &g.phases[*ph as usize]))
            .collect();
        if !rows.is_empty() {
            p.phase_summary(
                "saath_epoch_phase_ns",
                "Epoch lifecycle phase latency in nanoseconds",
                &rows,
            );
        }
        p.finish()
    }
}

/// RAII guard from [`MetricsHub::span`].
pub struct HubSpan<'a> {
    hub: &'a MetricsHub,
    phase: Phase,
    start: Instant,
}

impl Drop for HubSpan<'_> {
    fn drop(&mut self) {
        self.hub
            .observe_phase(self.phase, self.start.elapsed().as_nanos() as u64);
    }
}

/// A minimal blocking HTTP/1.1 server for `GET /metrics`, one
/// connection at a time on a background thread. Shuts down on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `hub` in the background.
    pub fn serve(addr: &str, hub: Arc<MetricsHub>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept so the stop flag is honoured promptly.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("saath-metrics".into())
            .spawn(move || serve_loop(listener, hub, stop2))
            .expect("spawn metrics server thread");
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread (idempotent).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: TcpListener, hub: Arc<MetricsHub>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_conn(stream, &hub);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_conn(mut stream: TcpStream, hub: &MetricsHub) -> std::io::Result<()> {
    // A real scraper sends its GET immediately and reads the reply
    // promptly. Tight per-syscall timeouts *plus* an overall header
    // deadline mean a client that trickles bytes (slow-loris) or
    // stalls mid-read is dropped, instead of pinning the single
    // serving thread indefinitely — the per-read timeout alone would
    // still admit one byte per timeout, ~70 minutes to the header cap.
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_write_timeout(Some(Duration::from_secs(1)))?;
    stream.set_nonblocking(false)?;
    let header_deadline = Instant::now() + Duration::from_secs(1);
    // Read until the end of the request headers (or a small cap —
    // GETs have no body worth reading).
    let mut req = Vec::new();
    let mut chunk = [0u8; 1024];
    while !req.windows(4).any(|w| w == b"\r\n\r\n") && req.len() < 8192 {
        if Instant::now() >= header_deadline {
            // Too slow to finish its request line: drop it unanswered.
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => req.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let line = req.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method == "GET" && path == "/metrics" {
        ("200 OK", hub.render())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let resp = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(resp.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_renders_deterministic_layout() {
        let hub = MetricsHub::new();
        hub.incr("saath_coord_epochs_total", "", 3);
        hub.incr("saath_shard_slices_total", "shard=\"1\"", 5);
        hub.incr("saath_shard_slices_total", "shard=\"0\"", 4);
        hub.set("saath_shard_replica_lag_epochs", "shard=\"0\"", 1);
        let page = hub.render();
        // Families in FAMILY_HELP order, series label-sorted.
        let epochs = page.find("saath_coord_epochs_total 3").unwrap();
        let s0 = page
            .find("saath_shard_slices_total{shard=\"0\"} 4")
            .unwrap();
        let s1 = page
            .find("saath_shard_slices_total{shard=\"1\"} 5")
            .unwrap();
        let lag = page
            .find("saath_shard_replica_lag_epochs{shard=\"0\"} 1")
            .unwrap();
        assert!(epochs < s0 && s0 < s1 && s1 < lag);
        assert!(page.contains("# TYPE saath_shard_replica_lag_epochs gauge"));
        assert!(page.contains("# TYPE saath_coord_epochs_total counter"));
        // Unpopulated families are omitted entirely.
        assert!(!page.contains("saath_transport_frames_sent_total"));
        // Rendering twice is byte-identical.
        assert_eq!(page, hub.render());
    }

    #[test]
    fn hub_spans_flow_into_the_phase_summary() {
        let hub = MetricsHub::new();
        {
            let _s = hub.span(Phase::CoordObsRecv);
        }
        hub.observe_phase(Phase::CoordSchedule, 1_000);
        let page = hub.render();
        assert!(page.contains("saath_epoch_phase_ns{phase=\"coord_obs_recv\",quantile=\"0.5\"}"));
        assert!(page.contains("saath_epoch_phase_ns_count{phase=\"coord_schedule\"} 1"));
        // Wall-clock section is fenced off after the deterministic one.
        let det = page.find("# --- deterministic ---").unwrap();
        let wall = page.find("# --- wall-clock").unwrap();
        assert!(det < wall);
    }

    #[test]
    fn metrics_server_serves_the_page_and_404s_elsewhere() {
        let hub = Arc::new(MetricsHub::new());
        hub.incr("saath_coord_epochs_total", "", 9);
        let mut server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.addr();

        let fetch = |path: &str| -> String {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let ok = fetch("/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("saath_coord_epochs_total 9"));
        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.shutdown();
    }

    /// Regression (slow-loris): a client that connects and trickles
    /// header bytes forever must be dropped at the header deadline,
    /// not pin the single serving thread — a well-behaved scrape
    /// arriving behind it still completes promptly.
    #[test]
    fn stalled_client_does_not_starve_other_scrapes() {
        let hub = Arc::new(MetricsHub::new());
        hub.incr("saath_coord_epochs_total", "", 7);
        let mut server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.addr();

        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let loris = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let header = b"GET /metrics HTTP/1.1\r\n";
            let mut i = 0usize;
            // One byte every 100 ms, never the terminating blank line.
            while !stop2.load(Ordering::SeqCst) {
                if s.write_all(&header[i % header.len()..][..1]).is_err() {
                    break; // server dropped us, as it should
                }
                i += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
        });

        // Let the loris become the connection being served.
        std::thread::sleep(Duration::from_millis(200));

        let t0 = Instant::now();
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("saath_coord_epochs_total 7"));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "scrape starved behind a stalled client for {:?}",
            t0.elapsed()
        );

        stop.store(true, Ordering::SeqCst);
        loris.join().unwrap();
        server.shutdown();
    }
}
