//! The emulation clock: wall time, scaled.
//!
//! The testbed emulation replays traces against real threads, but an
//! hour-long trace should not take an hour. [`EmuClock`] maps elapsed
//! wall time to simulated time by an integer factor: with `scale = 50`,
//! one wall second is 50 simulated seconds, and a δ of 400 simulated
//! milliseconds means the coordinator actually wakes every 8 wall
//! milliseconds — the paper's own interval.

use saath_simcore::{Duration, Time};
use std::time::Instant;

/// A shared, cloneable scaled clock. All components of one emulation
/// hold clones, so they agree on simulated "now".
#[derive(Clone, Debug)]
pub struct EmuClock {
    start: Instant,
    scale: u64,
}

impl EmuClock {
    /// Starts the clock now. `scale` = simulated seconds per wall
    /// second (≥ 1).
    pub fn start(scale: u64) -> EmuClock {
        assert!(scale >= 1, "scale must be at least 1");
        EmuClock {
            start: Instant::now(),
            scale,
        }
    }

    /// The scale factor.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Simulated time elapsed since the clock started.
    pub fn now(&self) -> Time {
        let wall = self.start.elapsed().as_nanos() as u64;
        Time(wall.saturating_mul(self.scale))
    }

    /// Converts a simulated duration to the wall duration to sleep.
    pub fn to_wall(&self, sim: Duration) -> std::time::Duration {
        std::time::Duration::from_nanos(sim.as_nanos() / self.scale)
    }

    /// Sleeps the calling thread for `sim` of simulated time.
    pub fn sleep_sim(&self, sim: Duration) {
        std::thread::sleep(self.to_wall(sim));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_time_advances_faster_than_wall() {
        let clock = EmuClock::start(100);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let sim = clock.now();
        // 20 ms wall at 100× ≥ 2 s simulated (scheduler jitter only adds).
        assert!(sim >= Time::from_millis(2000), "sim {sim}");
        assert!(sim < Time::from_secs(60), "sim {sim} absurdly large");
    }

    #[test]
    fn wall_conversion_inverts_scale() {
        let clock = EmuClock::start(50);
        assert_eq!(
            clock.to_wall(Duration::from_millis(400)),
            std::time::Duration::from_millis(8)
        );
        assert_eq!(clock.scale(), 50);
    }

    #[test]
    fn clones_share_the_epoch() {
        let a = EmuClock::start(10);
        let b = a.clone();
        let (ta, tb) = (a.now(), b.now());
        let diff = ta.as_nanos().abs_diff(tb.as_nanos());
        assert!(diff < 100_000_000, "clones diverge: {diff} ns");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_scale_rejected() {
        let _ = EmuClock::start(0);
    }
}
