//! CoFlow workload descriptions.
//!
//! A [`Trace`] is the unit every simulator run and every testbed
//! emulation consumes: a cluster size, a port speed, and a list of
//! [`CoflowSpec`]s with absolute arrival times. These are *descriptions*
//! — sizes here are ground truth that only clairvoyant baselines may
//! read; online schedulers see only what has been sent so far.

use saath_simcore::{Bytes, CoflowId, Duration, JobId, NodeId, PortId, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One flow: a fixed volume from a sender node to a receiver node.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Sending node (contends on its uplink).
    pub src: NodeId,
    /// Receiving node (contends on its downlink).
    pub dst: NodeId,
    /// Ground-truth volume.
    pub size: Bytes,
    /// Offset after the CoFlow's arrival at which this flow's data is
    /// actually available to send (§4.3 "Un-availability of the data":
    /// frameworks pipeline compute and communication, so some flows
    /// lag). Zero for the common case.
    pub available_after: Duration,
}

impl FlowSpec {
    /// A flow whose data is available immediately on CoFlow arrival.
    pub fn new(src: NodeId, dst: NodeId, size: Bytes) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            size,
            available_after: Duration::ZERO,
        }
    }
}

/// One CoFlow: the set of semantically-synchronized flows of one job
/// stage. The application makes progress only when *all* of them finish.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoflowSpec {
    /// Dense identifier, unique within a trace.
    pub id: CoflowId,
    /// When the CoFlow registers with the coordinator. For CoFlows with
    /// DAG dependencies this is the *earliest* possible release; the
    /// simulator further delays release until all `deps` complete.
    pub arrival: Time,
    /// The flows (at least one).
    pub flows: Vec<FlowSpec>,
    /// The analytics job this CoFlow belongs to, if any (Fig 16).
    pub job: Option<JobId>,
    /// CoFlows that must complete before this one is released
    /// (multi-stage DAG / multi-wave scheduling, §4.3).
    pub deps: Vec<CoflowId>,
}

impl CoflowSpec {
    /// A plain CoFlow with no job or DAG structure.
    pub fn new(id: CoflowId, arrival: Time, flows: Vec<FlowSpec>) -> CoflowSpec {
        CoflowSpec {
            id,
            arrival,
            flows,
            job: None,
            deps: Vec::new(),
        }
    }

    /// Number of flows — the paper's *width* (Table 1 bins on it).
    pub fn width(&self) -> usize {
        self.flows.len()
    }

    /// Total ground-truth volume — the paper's *size*.
    pub fn total_size(&self) -> Bytes {
        self.flows.iter().map(|f| f.size).sum()
    }

    /// The largest single flow.
    pub fn max_flow_size(&self) -> Bytes {
        self.flows
            .iter()
            .map(|f| f.size)
            .max()
            .unwrap_or(Bytes::ZERO)
    }

    /// The distinct fabric ports this CoFlow touches, given the cluster
    /// size. Contention (`k_c`) and all-or-none both operate on this set.
    pub fn ports(&self, num_nodes: usize) -> BTreeSet<PortId> {
        let mut set = BTreeSet::new();
        for f in &self.flows {
            set.insert(PortId::uplink(f.src));
            set.insert(PortId::downlink(f.dst, num_nodes));
        }
        set
    }

    /// Whether all flows have the same size (the paper separates
    /// equal-length from uneven-length CoFlows in Figs 2 and 13).
    pub fn has_equal_flows(&self) -> bool {
        match self.flows.first() {
            None => true,
            Some(first) => self.flows.iter().all(|f| f.size == first.size),
        }
    }
}

/// A complete workload: cluster shape plus CoFlow arrivals.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of machines; the fabric has `2 * num_nodes` ports.
    pub num_nodes: usize,
    /// Uniform port speed (1 Gbps in the paper).
    pub port_rate: saath_simcore::Rate,
    /// CoFlows sorted by arrival time (enforced by [`Trace::validate`]).
    pub coflows: Vec<CoflowSpec>,
}

/// A structural problem found by [`Trace::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A flow references a node outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending CoFlow.
        coflow: CoflowId,
        /// The offending node index.
        node: NodeId,
    },
    /// A CoFlow has no flows.
    EmptyCoflow(CoflowId),
    /// A flow has zero size (zero-volume flows complete instantly and
    /// break CCT accounting).
    ZeroSizeFlow(CoflowId),
    /// CoFlow ids are not unique.
    DuplicateId(CoflowId),
    /// Arrivals are not sorted.
    UnsortedArrivals,
    /// A DAG dependency references an unknown CoFlow id.
    UnknownDep {
        /// The CoFlow declaring the dependency.
        coflow: CoflowId,
        /// The missing dependency.
        dep: CoflowId,
    },
    /// The DAG has a cycle (detected as a dep on a non-earlier CoFlow
    /// that is unreachable to resolve).
    DepCycle(CoflowId),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::NodeOutOfRange { coflow, node } => {
                write!(f, "{coflow}: node {node} out of range")
            }
            TraceError::EmptyCoflow(c) => write!(f, "{c}: no flows"),
            TraceError::ZeroSizeFlow(c) => write!(f, "{c}: zero-size flow"),
            TraceError::DuplicateId(c) => write!(f, "duplicate CoFlow id {c}"),
            TraceError::UnsortedArrivals => write!(f, "arrivals not sorted"),
            TraceError::UnknownDep { coflow, dep } => {
                write!(f, "{coflow}: unknown dependency {dep}")
            }
            TraceError::DepCycle(c) => write!(f, "dependency cycle involving {c}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Structural validation; every consumer may assume a validated
    /// trace. Returns the first problem found.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut seen = BTreeSet::new();
        let mut last_arrival = Time::ZERO;
        for c in &self.coflows {
            if !seen.insert(c.id) {
                return Err(TraceError::DuplicateId(c.id));
            }
            if c.flows.is_empty() {
                return Err(TraceError::EmptyCoflow(c.id));
            }
            if c.arrival < last_arrival {
                return Err(TraceError::UnsortedArrivals);
            }
            last_arrival = c.arrival;
            for fl in &c.flows {
                for node in [fl.src, fl.dst] {
                    if node.index() >= self.num_nodes {
                        return Err(TraceError::NodeOutOfRange { coflow: c.id, node });
                    }
                }
                if fl.size == Bytes::ZERO {
                    return Err(TraceError::ZeroSizeFlow(c.id));
                }
            }
        }
        // DAG sanity: deps must exist; cycles are impossible if every dep
        // chain terminates, which we check with a simple DFS.
        for c in &self.coflows {
            for d in &c.deps {
                if !seen.contains(d) {
                    return Err(TraceError::UnknownDep {
                        coflow: c.id,
                        dep: *d,
                    });
                }
            }
        }
        self.check_acyclic()?;
        Ok(())
    }

    fn check_acyclic(&self) -> Result<(), TraceError> {
        use std::collections::HashMap;
        let index: HashMap<CoflowId, usize> = self
            .coflows
            .iter()
            .enumerate()
            .map(|(i, c)| (c.id, i))
            .collect();
        // 0 = unvisited, 1 = in stack, 2 = done
        let mut state = vec![0u8; self.coflows.len()];
        for start in 0..self.coflows.len() {
            if state[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            state[start] = 1;
            while let Some(top) = stack.last_mut() {
                let node = top.0;
                let deps = &self.coflows[node].deps;
                if top.1 < deps.len() {
                    let next = index[&deps[top.1]];
                    top.1 += 1;
                    match state[next] {
                        0 => {
                            state[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => return Err(TraceError::DepCycle(self.coflows[node].id)),
                        _ => {}
                    }
                } else {
                    state[node] = 2;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Total number of flows across all CoFlows.
    pub fn num_flows(&self) -> usize {
        self.coflows.iter().map(|c| c.flows.len()).sum()
    }

    /// Total volume across all CoFlows.
    pub fn total_bytes(&self) -> Bytes {
        self.coflows.iter().map(|c| c.total_size()).sum()
    }

    /// The time span from first arrival to last arrival.
    pub fn arrival_span(&self) -> Duration {
        match (self.coflows.first(), self.coflows.last()) {
            (Some(a), Some(b)) => b.arrival.saturating_since(a.arrival),
            _ => Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saath_simcore::Rate;

    fn tiny_trace() -> Trace {
        Trace {
            num_nodes: 4,
            port_rate: Rate::gbps(1),
            coflows: vec![
                CoflowSpec::new(
                    CoflowId(0),
                    Time::ZERO,
                    vec![
                        FlowSpec::new(NodeId(0), NodeId(2), Bytes::mb(10)),
                        FlowSpec::new(NodeId(1), NodeId(2), Bytes::mb(10)),
                    ],
                ),
                CoflowSpec::new(
                    CoflowId(1),
                    Time::from_millis(5),
                    vec![FlowSpec::new(NodeId(3), NodeId(0), Bytes::mb(7))],
                ),
            ],
        }
    }

    #[test]
    fn accessors() {
        let t = tiny_trace();
        assert_eq!(t.num_flows(), 3);
        assert_eq!(t.total_bytes(), Bytes::mb(27));
        assert_eq!(t.arrival_span(), Duration::from_millis(5));
        let c = &t.coflows[0];
        assert_eq!(c.width(), 2);
        assert_eq!(c.total_size(), Bytes::mb(20));
        assert_eq!(c.max_flow_size(), Bytes::mb(10));
        assert!(c.has_equal_flows());
        // Ports: uplinks of 0 and 1, downlink of 2 (= 4 + 2 = index 6).
        let ports: Vec<usize> = c.ports(4).iter().map(|p| p.index()).collect();
        assert_eq!(ports, vec![0, 1, 6]);
    }

    #[test]
    fn equal_flow_detection() {
        let mut c = tiny_trace().coflows.remove(0);
        assert!(c.has_equal_flows());
        c.flows[1].size = Bytes::mb(11);
        assert!(!c.has_equal_flows());
    }

    #[test]
    fn validate_accepts_good_trace() {
        assert_eq!(tiny_trace().validate(), Ok(()));
    }

    #[test]
    fn validate_catches_problems() {
        let mut t = tiny_trace();
        t.coflows[1].flows[0].src = NodeId(9);
        assert!(matches!(
            t.validate(),
            Err(TraceError::NodeOutOfRange { .. })
        ));

        let mut t = tiny_trace();
        t.coflows[1].id = CoflowId(0);
        assert!(matches!(t.validate(), Err(TraceError::DuplicateId(_))));

        let mut t = tiny_trace();
        t.coflows[0].arrival = Time::from_secs(10);
        assert_eq!(t.validate(), Err(TraceError::UnsortedArrivals));

        let mut t = tiny_trace();
        t.coflows[0].flows.clear();
        assert!(matches!(t.validate(), Err(TraceError::EmptyCoflow(_))));

        let mut t = tiny_trace();
        t.coflows[0].flows[0].size = Bytes::ZERO;
        assert!(matches!(t.validate(), Err(TraceError::ZeroSizeFlow(_))));

        let mut t = tiny_trace();
        t.coflows[0].deps.push(CoflowId(99));
        assert!(matches!(t.validate(), Err(TraceError::UnknownDep { .. })));
    }

    #[test]
    fn validate_catches_dep_cycles() {
        let mut t = tiny_trace();
        t.coflows[0].deps.push(CoflowId(1));
        t.coflows[1].deps.push(CoflowId(0));
        assert!(matches!(t.validate(), Err(TraceError::DepCycle(_))));
        // Self-loop.
        let mut t = tiny_trace();
        t.coflows[0].deps.push(CoflowId(0));
        assert!(matches!(t.validate(), Err(TraceError::DepCycle(_))));
    }

    #[test]
    fn dag_dependencies_are_allowed_forward() {
        let mut t = tiny_trace();
        t.coflows[1].deps.push(CoflowId(0));
        assert_eq!(t.validate(), Ok(()));
    }
}
