//! Trace transformations for sensitivity experiments.
//!
//! Fig 14(d) varies CoFlow *contention* by compressing or stretching
//! inter-arrival times: `A = 4` means CoFlows arrive 4× faster (gaps
//! divided by 4), `A = 0.5` means 2× slower. [`scale_arrivals`]
//! implements exactly that, preserving the first arrival and every
//! CoFlow's internal structure.

use crate::spec::Trace;
use saath_simcore::Time;

/// Scales inter-arrival gaps by `den/num`, i.e. CoFlows arrive
/// `num/den`× faster. `scale_arrivals(t, 4, 1)` is the paper's `A = 4`;
/// `scale_arrivals(t, 1, 2)` is `A = 0.5`.
pub fn scale_arrivals(trace: &Trace, num: u64, den: u64) -> Trace {
    assert!(num > 0 && den > 0, "arrival scale must be positive");
    let mut out = trace.clone();
    let first = trace
        .coflows
        .first()
        .map(|c| c.arrival)
        .unwrap_or(Time::ZERO);
    for c in &mut out.coflows {
        let gap = c.arrival.saturating_since(first);
        c.arrival = first + gap.mul_ratio(den, num);
    }
    out
}

/// Keeps only the first `n` CoFlows (cheap smoke-test slices of a big
/// trace), reindexing nothing — ids are preserved.
pub fn truncate(trace: &Trace, n: usize) -> Trace {
    let mut out = trace.clone();
    out.coflows.truncate(n);
    // Drop dangling DAG deps that pointed at truncated CoFlows.
    let ids: std::collections::BTreeSet<_> = out.coflows.iter().map(|c| c.id).collect();
    for c in &mut out.coflows {
        c.deps.retain(|d| ids.contains(d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, small};
    use saath_simcore::CoflowId;

    #[test]
    fn scaling_compresses_gaps() {
        let t = generate(&small(4, 10, 50));
        let fast = scale_arrivals(&t, 4, 1);
        let slow = scale_arrivals(&t, 1, 2);
        assert_eq!(fast.coflows[0].arrival, t.coflows[0].arrival);
        let span = t.arrival_span().as_nanos();
        assert_eq!(fast.arrival_span().as_nanos(), span / 4);
        assert_eq!(slow.arrival_span().as_nanos(), span * 2);
        assert!(fast.validate().is_ok());
        assert!(slow.validate().is_ok());
    }

    #[test]
    fn identity_scale_is_identity() {
        let t = generate(&small(4, 10, 50));
        assert_eq!(scale_arrivals(&t, 1, 1), t);
        assert_eq!(scale_arrivals(&t, 7, 7), t);
    }

    #[test]
    fn truncate_drops_dangling_deps() {
        let mut t = generate(&small(4, 10, 20));
        // Make CoFlow 3 depend on CoFlow 15, then cut at 10.
        t.coflows[3].deps.push(CoflowId(15));
        let cut = truncate(&t, 10);
        assert_eq!(cut.coflows.len(), 10);
        assert!(cut.coflows[3].deps.is_empty());
        assert!(cut.validate().is_ok());
    }
}
