//! Synthetic trace generators calibrated to the paper's statistics.
//!
//! The evaluation's two inputs — the public Facebook trace and the
//! proprietary Microsoft OSP trace — cannot ship with an offline
//! reproduction, so this module generates traces that match every
//! distributional property the paper's analysis leans on:
//!
//! * **Flow-length mix** (§2.3, Fig 2a/b): in FB, 23 % of CoFlows have a
//!   single flow, 50 % have multiple equal-length flows, 27 % multiple
//!   uneven-length flows.
//! * **Size × width bins** (Table 1, Figs 11/12): CoFlows bin by total
//!   size (≤/> 100 MB) and width (≤/> 10 flows). The FB mass is
//!   short-and-narrow-heavy (we use the Aalo-reported ≈60/12/16/12 %).
//! * **Heavy-tailed sizes** within each bin (Pareto).
//! * **Poisson arrivals** over the trace span; the OSP-like preset packs
//!   ~2× the CoFlow density onto fewer nodes with a wider mix, which is
//!   the "busier ports" property the paper credits for OSP's much larger
//!   P90 speedups (§6.1).
//!
//! CoFlows are `M × R` shuffles (mappers × reducers), like the real
//! traces. Same seed → identical trace, and every CoFlow derives its own
//! RNG stream, so changing one parameter does not reshuffle unrelated
//! CoFlows.

use crate::spec::{CoflowSpec, FlowSpec, Trace};
use saath_simcore::{Bytes, CoflowId, DetRng, Duration, NodeId, Rate, Time};

/// How a CoFlow's total volume is split across its flows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitKind {
    /// One flow.
    Single,
    /// Equal-length flows.
    Equal,
    /// Uneven (Pareto-weighted) flow lengths.
    Uneven,
}

/// Tunable knobs for [`generate`]. Start from [`fb_like`] or
/// [`osp_like`] and adjust.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of machines.
    pub num_nodes: usize,
    /// Number of CoFlows to emit.
    pub num_coflows: usize,
    /// Uniform port speed.
    pub port_rate: Rate,
    /// Arrival span: arrivals are Poisson with mean gap
    /// `span / num_coflows`.
    pub span: Duration,
    /// Master seed; every derived stream is labelled, so runs are
    /// reproducible and extensible.
    pub seed: u64,
    /// P(single-flow), P(multi equal), P(multi uneven). Must sum to ~1.
    pub mix: [f64; 3],
    /// Probability mass of Table-1 bins 1–4
    /// (short-narrow, short-wide, long-narrow, long-wide).
    pub bin_weights: [f64; 4],
    /// Width threshold between narrow and wide (Table 1: 10).
    pub narrow_max_width: usize,
    /// Size threshold between short and long (Table 1: 100 MB).
    pub size_split: Bytes,
    /// Smallest CoFlow total size.
    pub min_size: Bytes,
    /// Largest CoFlow total size.
    pub max_size: Bytes,
    /// Largest width to generate (clamped to `num_nodes²`).
    pub max_width: usize,
    /// Pareto shape for sizes within a bin (smaller = heavier tail).
    pub size_alpha: f64,
    /// Pareto shape for widths in the wide bins.
    pub width_alpha: f64,
    /// Probability that a CoFlow arrives as part of a burst (within
    /// `burst_gap` of its predecessor) instead of after an exponential
    /// gap. Analytics clusters submit jobs in waves; burstiness creates
    /// the transient queueing that separates the schedulers.
    pub burst_prob: f64,
    /// Mean intra-burst gap.
    pub burst_gap: Duration,
    /// Zipf exponent for node popularity (0 = uniform placement).
    /// Real clusters have hot nodes — popular datasets, rack-local
    /// reducers — and the resulting hot ports are where sustained
    /// backlog forms; without skew, load spreads so thin that every
    /// scheduler looks alike.
    pub placement_zipf: f64,
    /// Fraction of the cluster each arrival wave localizes on. Jobs in
    /// one wave (one query's stages, one pipeline's runs) read the same
    /// data and share racks, so their CoFlows collide on the same
    /// ports — the collisions FIFO head-of-line blocking (Aalo) and
    /// contention-aware ordering (Saath) resolve differently. 1.0
    /// disables localization.
    pub wave_locality: f64,
}

/// Preset calibrated to the Facebook trace's published statistics and
/// to its *contention regime*: 150 nodes, 526 CoFlows, 1 Gbps ports,
/// ~1.4 TB moved, wave arrivals localized on node subsets. The arrival
/// span is compressed (~400 s instead of the original hour) because the
/// synthetic generator lacks the original's diurnal micro-burst
/// structure; compressing arrivals restores the per-port queueing the
/// paper's speedups come from (the same mechanism as its own Fig 14d
/// contention knob).
pub fn fb_like(seed: u64) -> GenConfig {
    GenConfig {
        num_nodes: 150,
        num_coflows: 526,
        port_rate: Rate::gbps(1),
        span: Duration::from_secs(400),
        seed,
        mix: [0.23, 0.50, 0.27],
        bin_weights: [0.60, 0.12, 0.16, 0.12],
        narrow_max_width: 10,
        size_split: Bytes::mb(100),
        min_size: Bytes::mb(1),
        max_size: Bytes::gb(100),
        max_width: 22_500, // 150²: the widest shuffles span every port
        size_alpha: 0.5,
        width_alpha: 0.65,
        burst_prob: 0.8,
        burst_gap: Duration::from_millis(100),
        placement_zipf: 0.5,
        wave_locality: 0.10,
    }
}

/// Preset emulating the proprietary OSP trace: O(100) nodes, O(1000)
/// CoFlows, busier ports (several times FB's arrival density, burstier
/// waves) and a wider mix.
pub fn osp_like(seed: u64) -> GenConfig {
    GenConfig {
        num_nodes: 100,
        num_coflows: 1000,
        port_rate: Rate::gbps(1),
        // 1000 coflows on 2/3 the nodes in 3/4 the span → ~4× the
        // per-port arrival density of FB.
        span: Duration::from_secs(300),
        seed,
        mix: [0.15, 0.50, 0.35],
        bin_weights: [0.45, 0.20, 0.15, 0.20],
        narrow_max_width: 10,
        size_split: Bytes::mb(100),
        min_size: Bytes::mb(1),
        max_size: Bytes::gb(500),
        max_width: 10_000, // 100²
        size_alpha: 0.6,
        width_alpha: 0.7,
        burst_prob: 0.95,
        burst_gap: Duration::from_millis(250),
        placement_zipf: 0.6,
        wave_locality: 0.12,
    }
}

/// A small preset for tests and examples: fast to simulate while still
/// exercising every bin.
pub fn small(seed: u64, num_nodes: usize, num_coflows: usize) -> GenConfig {
    GenConfig {
        num_nodes,
        num_coflows,
        port_rate: Rate::gbps(1),
        span: Duration::from_secs((num_coflows as u64 * 2).max(10)),
        seed,
        mix: [0.23, 0.50, 0.27],
        bin_weights: [0.60, 0.12, 0.16, 0.12],
        narrow_max_width: 10,
        size_split: Bytes::mb(100),
        min_size: Bytes::mb(1),
        max_size: Bytes::gb(1),
        max_width: 200,
        size_alpha: 1.1,
        width_alpha: 1.3,
        burst_prob: 0.3,
        burst_gap: Duration::from_millis(50),
        placement_zipf: 0.8,
        wave_locality: 0.4,
    }
}

/// Generates a validated [`Trace`] from a configuration.
///
/// # Panics
/// Panics if the configuration is degenerate (zero nodes/coflows,
/// min ≥ max size, weights that sum to zero).
pub fn generate(cfg: &GenConfig) -> Trace {
    assert!(cfg.num_nodes >= 2, "need at least two nodes");
    assert!(cfg.num_coflows > 0, "need at least one coflow");
    assert!(cfg.min_size < cfg.max_size, "min_size must be < max_size");
    assert!(cfg.min_size > Bytes::ZERO);

    let mut arrivals_rng = DetRng::derive(cfg.seed, "gen/arrivals");
    let coflow_streams = DetRng::derive(cfg.seed, "gen/coflows");
    // Non-burst gaps carry the whole span's mass, so the expected span
    // stays `cfg.span` regardless of burstiness.
    let mean_gap_ns =
        cfg.span.as_nanos() as f64 / (cfg.num_coflows as f64 * (1.0 - cfg.burst_prob).max(0.05));

    // Node popularity: Zipf over a per-trace random permutation of the
    // nodes, so "which nodes are hot" varies with the seed.
    let mut perm_rng = DetRng::derive(cfg.seed, "gen/placement");
    let mut ranks: Vec<usize> = (0..cfg.num_nodes).collect();
    perm_rng.shuffle(&mut ranks);
    let popularity: Vec<f64> = (0..cfg.num_nodes)
        .map(|n| 1.0 / ((ranks[n] + 1) as f64).powf(cfg.placement_zipf))
        .collect();

    let wave_size = ((cfg.num_nodes as f64 * cfg.wave_locality).round() as usize)
        .clamp(4.min(cfg.num_nodes), cfg.num_nodes);
    let mut wave_rng = DetRng::derive(cfg.seed, "gen/waves");
    let mut wave_nodes = sample_weighted_distinct(&mut wave_rng, &popularity, wave_size);
    let mut wave_pop: Vec<f64> = wave_nodes.iter().map(|&n| popularity[n as usize]).collect();

    let mut coflows = Vec::with_capacity(cfg.num_coflows);
    let mut arrival = Time::ZERO;
    for i in 0..cfg.num_coflows {
        if i > 0 {
            let gap = if arrivals_rng.chance(cfg.burst_prob) {
                arrivals_rng.exp_gap(cfg.burst_gap.as_nanos() as f64)
            } else {
                // A new wave starts: fresh node subset.
                wave_nodes = sample_weighted_distinct(&mut wave_rng, &popularity, wave_size);
                wave_pop = wave_nodes.iter().map(|&n| popularity[n as usize]).collect();
                arrivals_rng.exp_gap(mean_gap_ns)
            };
            arrival += Duration::from_nanos(gap);
        }
        let mut rng = coflow_streams.child(i as u64);
        let spec = one_coflow(
            cfg,
            CoflowId(i as u32),
            arrival,
            &mut rng,
            &wave_nodes,
            &wave_pop,
        );
        coflows.push(spec);
    }

    let trace = Trace {
        num_nodes: cfg.num_nodes,
        port_rate: cfg.port_rate,
        coflows,
    };
    trace
        .validate()
        .expect("generator produced an invalid trace");
    trace
}

/// Samples `k` distinct nodes with probability proportional to
/// `popularity` (rejection sampling; falls back to uniform when `k`
/// approaches the population size, where rejection would thrash).
fn sample_weighted_distinct(rng: &mut DetRng, popularity: &[f64], k: usize) -> Vec<u64> {
    let n = popularity.len();
    if k * 2 >= n {
        return rng.sample_distinct(n as u64, k);
    }
    let mut picked = Vec::with_capacity(k);
    let mut seen = vec![false; n];
    let mut attempts = 0usize;
    while picked.len() < k {
        attempts += 1;
        if attempts > 64 * k + 256 {
            // Degenerate weights: fill the remainder uniformly.
            for node in 0..n as u64 {
                if picked.len() == k {
                    break;
                }
                if !seen[node as usize] {
                    seen[node as usize] = true;
                    picked.push(node);
                }
            }
            break;
        }
        let node = rng.weighted(popularity);
        if !seen[node] {
            seen[node] = true;
            picked.push(node as u64);
        }
    }
    picked
}

fn one_coflow(
    cfg: &GenConfig,
    id: CoflowId,
    arrival: Time,
    rng: &mut DetRng,
    wave_nodes: &[u64],
    wave_pop: &[f64],
) -> CoflowSpec {
    // 1. Flow-length kind.
    let kind = match rng.weighted(&cfg.mix) {
        0 => SplitKind::Single,
        1 => SplitKind::Equal,
        _ => SplitKind::Uneven,
    };

    // 2. Table-1 bin, constrained to the kind: a single-flow CoFlow is
    // necessarily narrow, so renormalize over bins {1, 3}.
    let bin = if kind == SplitKind::Single {
        let w = [cfg.bin_weights[0], 0.0, cfg.bin_weights[2], 0.0];
        rng.weighted(&w)
    } else {
        rng.weighted(&cfg.bin_weights)
    };
    let wide = bin == 1 || bin == 3;
    let long = bin >= 2;

    // 3. Width.
    let width = match kind {
        SplitKind::Single => 1,
        _ if !wide => rng.range_inclusive(2, cfg.narrow_max_width as u64) as usize,
        _ => {
            let lo = (cfg.narrow_max_width + 1) as f64;
            let hi = cfg.max_width.min(cfg.num_nodes * cfg.num_nodes) as f64;
            rng.pareto(lo, cfg.width_alpha, hi).round() as usize
        }
    };

    // 4. Shuffle shape: M × R ≈ width with M ≈ sqrt(width), capped by
    // the wave's node subset.
    let max_side = wave_nodes.len();
    let m = ((width as f64).sqrt().round() as usize).clamp(1, max_side);
    let r = width.div_ceil(m).clamp(1, max_side);
    let actual_width = m * r;

    // 5. Total size within the bin, heavy-tailed. The bin boundary is on
    // *total* CoFlow size (Table 1).
    let split = cfg.size_split.as_u64() as f64;
    let total = if long {
        rng.pareto(split, cfg.size_alpha, cfg.max_size.as_u64() as f64)
    } else {
        // Pareto reflected into [min, split]: sample and fold so the
        // mass leans toward small CoFlows, as in the FB trace.
        let x = rng.pareto(cfg.min_size.as_u64() as f64, cfg.size_alpha, split);
        x.min(split)
    };
    let total = Bytes((total.round() as u64).max(actual_width as u64));

    // 6. Per-flow sizes.
    let sizes: Vec<Bytes> = match kind {
        SplitKind::Single => vec![total],
        SplitKind::Equal => {
            let per = total.div_per_flow(actual_width).as_u64().max(1);
            vec![Bytes(per); actual_width]
        }
        SplitKind::Uneven => {
            let weights: Vec<f64> = (0..actual_width)
                .map(|_| rng.pareto(1.0, 1.5, 100.0))
                .collect();
            let sum: f64 = weights.iter().sum();
            weights
                .iter()
                .map(|w| Bytes(((total.as_u64() as f64 * w / sum) as u64).max(1)))
                .collect()
        }
    };

    // 7. Placement: distinct mapper and reducer machines (they may
    // overlap each other, as in real clusters where a node both maps
    // and reduces).
    let mapper_idx = sample_weighted_distinct(rng, wave_pop, m);
    let reducer_idx = sample_weighted_distinct(rng, wave_pop, r);
    let mappers: Vec<u64> = mapper_idx.iter().map(|&i| wave_nodes[i as usize]).collect();
    let reducers: Vec<u64> = reducer_idx
        .iter()
        .map(|&i| wave_nodes[i as usize])
        .collect();

    let mut flows = Vec::with_capacity(actual_width);
    let mut k = 0;
    for red in &reducers {
        for map in &mappers {
            flows.push(FlowSpec::new(
                NodeId(*map as u32),
                NodeId(*red as u32),
                sizes[k.min(sizes.len() - 1)],
            ));
            k += 1;
        }
    }

    CoflowSpec::new(id, arrival, flows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(&small(42, 20, 60));
        let b = generate(&small(42, 20, 60));
        assert_eq!(a, b);
        let c = generate(&small(43, 20, 60));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn fb_like_matches_published_mix() {
        let t = generate(&fb_like(7));
        assert_eq!(t.num_nodes, 150);
        assert_eq!(t.coflows.len(), 526);
        assert!(t.validate().is_ok());

        let single = t.coflows.iter().filter(|c| c.width() == 1).count() as f64;
        let multi_equal = t
            .coflows
            .iter()
            .filter(|c| c.width() > 1 && c.has_equal_flows())
            .count() as f64;
        let multi_uneven = t
            .coflows
            .iter()
            .filter(|c| c.width() > 1 && !c.has_equal_flows())
            .count() as f64;
        let n = t.coflows.len() as f64;
        // §2.3: 23 % single, 50 % equal, 27 % uneven (±6 % sampling).
        assert!((single / n - 0.23).abs() < 0.06, "single: {}", single / n);
        assert!(
            (multi_equal / n - 0.50).abs() < 0.06,
            "equal: {}",
            multi_equal / n
        );
        assert!(
            (multi_uneven / n - 0.27).abs() < 0.06,
            "uneven: {}",
            multi_uneven / n
        );
    }

    #[test]
    fn fb_like_matches_bin_masses() {
        let t = generate(&fb_like(11));
        let mut bins = [0usize; 4];
        for c in &t.coflows {
            let wide = c.width() > 10;
            let long = c.total_size() > Bytes::mb(100);
            bins[match (long, wide) {
                (false, false) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (true, true) => 3,
            }] += 1;
        }
        let n = t.coflows.len() as f64;
        let target = [0.60, 0.12, 0.16, 0.12];
        for (i, b) in bins.iter().enumerate() {
            let frac = *b as f64 / n;
            assert!(
                (frac - target[i]).abs() < 0.08,
                "bin {} mass {frac} vs target {}",
                i + 1,
                target[i]
            );
        }
    }

    #[test]
    fn osp_like_is_denser_than_fb() {
        let fb = generate(&fb_like(3));
        let osp = generate(&osp_like(3));
        assert!(osp.validate().is_ok());
        // Arrival density per node-second.
        let fb_density =
            fb.coflows.len() as f64 / fb.arrival_span().as_secs_f64() / fb.num_nodes as f64;
        let osp_density =
            osp.coflows.len() as f64 / osp.arrival_span().as_secs_f64() / osp.num_nodes as f64;
        assert!(
            osp_density > 1.5 * fb_density,
            "OSP density {osp_density} not ≫ FB {fb_density}"
        );
    }

    #[test]
    fn arrivals_sorted_and_span_sane() {
        let t = generate(&fb_like(5));
        let mut last = Time::ZERO;
        for c in &t.coflows {
            assert!(c.arrival >= last);
            last = c.arrival;
        }
        let span = t.arrival_span().as_secs_f64();
        assert!(span > 200.0 && span < 800.0, "span {span}s unreasonable");
    }

    #[test]
    fn widths_form_shuffles() {
        let t = generate(&fb_like(9));
        for c in &t.coflows {
            let mappers: std::collections::BTreeSet<_> = c.flows.iter().map(|f| f.src).collect();
            let reducers: std::collections::BTreeSet<_> = c.flows.iter().map(|f| f.dst).collect();
            assert_eq!(
                c.width(),
                mappers.len() * reducers.len(),
                "CoFlow {} is not a full M×R shuffle",
                c.id
            );
        }
    }

    #[test]
    fn small_preset_hits_every_bin() {
        let t = generate(&small(1, 30, 400));
        let mut bins = [0usize; 4];
        for c in &t.coflows {
            let wide = c.width() > 10;
            let long = c.total_size() > Bytes::mb(100);
            bins[match (long, wide) {
                (false, false) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (true, true) => 3,
            }] += 1;
        }
        assert!(bins.iter().all(|&b| b > 0), "empty bin in {bins:?}");
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn degenerate_config_panics() {
        let mut cfg = small(1, 1, 1);
        cfg.num_nodes = 1;
        generate(&cfg);
    }
}
