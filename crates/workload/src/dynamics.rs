//! Cluster dynamics: stragglers, node failures, data skew.
//!
//! §4.3 of the paper motivates Saath's queue-reassignment heuristic with
//! the dynamics real clusters exhibit. This module *describes* those
//! events; `saath-simulator` applies them during replay:
//!
//! * a **straggler** runs its node's ports at a fraction of nominal
//!   capacity for a while (slow disk/CPU, congested NIC);
//! * a **node failure** kills the node's unfinished transfers; the
//!   framework restarts the affected tasks after a delay, and the
//!   restarted flows begin from zero bytes (the coordinator learns of it
//!   via the `update()` CoFlow operation, §5).
//!
//! Data skew needs no event type: it is captured by uneven flow sizes
//! and by `FlowSpec::available_after` (pipelined availability).

use saath_simcore::{DetRng, Duration, NodeId, Time};
use serde::{Deserialize, Serialize};

/// One injected event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DynamicsEvent {
    /// `node`'s ports run at `num/den` of nominal capacity in
    /// `[at, until)`.
    Straggler {
        /// The slow node.
        node: NodeId,
        /// Slowdown start.
        at: Time,
        /// Slowdown end (capacity restored).
        until: Time,
        /// Capacity numerator.
        num: u64,
        /// Capacity denominator.
        den: u64,
    },
    /// `node` fails at `at`; its unfinished flows restart from zero
    /// after `restart_delay` (their data must be re-sent).
    NodeFailure {
        /// The failed node.
        node: NodeId,
        /// Failure instant.
        at: Time,
        /// How long until the replacement tasks are up.
        restart_delay: Duration,
    },
}

impl DynamicsEvent {
    /// The instant at which the simulator must act on this event.
    pub fn at(&self) -> Time {
        match self {
            DynamicsEvent::Straggler { at, .. } => *at,
            DynamicsEvent::NodeFailure { at, .. } => *at,
        }
    }
}

/// A set of dynamics events to inject into a replay.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicsSpec {
    /// Events, in any order ([`DynamicsSpec::sorted`] normalizes).
    pub events: Vec<DynamicsEvent>,
}

impl DynamicsSpec {
    /// No dynamics (the default for the headline experiments).
    pub fn none() -> DynamicsSpec {
        DynamicsSpec::default()
    }

    /// Events sorted by activation time (stable).
    pub fn sorted(&self) -> Vec<DynamicsEvent> {
        let mut ev = self.events.clone();
        ev.sort_by_key(|e| e.at());
        ev
    }

    /// Randomly generated dynamics: each node independently straggles
    /// with probability `p_straggle` (at `slow_num/slow_den` capacity
    /// for `straggle_len`) and fails with probability `p_fail`, at
    /// uniform times within `[0, horizon)`.
    #[allow(clippy::too_many_arguments)]
    pub fn random(
        seed: u64,
        num_nodes: usize,
        horizon: Duration,
        p_straggle: f64,
        straggle_len: Duration,
        slow_num: u64,
        slow_den: u64,
        p_fail: f64,
        restart_delay: Duration,
    ) -> DynamicsSpec {
        let mut rng = DetRng::derive(seed, "dynamics");
        let mut events = Vec::new();
        for n in 0..num_nodes {
            if rng.chance(p_straggle) {
                let at = Time(rng.below(horizon.as_nanos().max(1)));
                events.push(DynamicsEvent::Straggler {
                    node: NodeId(n as u32),
                    at,
                    until: at + straggle_len,
                    num: slow_num,
                    den: slow_den,
                });
            }
            if rng.chance(p_fail) {
                events.push(DynamicsEvent::NodeFailure {
                    node: NodeId(n as u32),
                    at: Time(rng.below(horizon.as_nanos().max(1))),
                    restart_delay,
                });
            }
        }
        events.sort_by_key(|e| e.at());
        DynamicsSpec { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_orders_by_time() {
        let spec = DynamicsSpec {
            events: vec![
                DynamicsEvent::NodeFailure {
                    node: NodeId(1),
                    at: Time::from_secs(5),
                    restart_delay: Duration::from_secs(1),
                },
                DynamicsEvent::Straggler {
                    node: NodeId(0),
                    at: Time::from_secs(2),
                    until: Time::from_secs(4),
                    num: 1,
                    den: 10,
                },
            ],
        };
        let sorted = spec.sorted();
        assert_eq!(sorted[0].at(), Time::from_secs(2));
        assert_eq!(sorted[1].at(), Time::from_secs(5));
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = DynamicsSpec::random(
            1,
            50,
            Duration::from_secs(100),
            0.2,
            Duration::from_secs(10),
            1,
            10,
            0.05,
            Duration::from_secs(5),
        );
        let b = DynamicsSpec::random(
            1,
            50,
            Duration::from_secs(100),
            0.2,
            Duration::from_secs(10),
            1,
            10,
            0.05,
            Duration::from_secs(5),
        );
        assert_eq!(a, b);
        for e in &a.events {
            assert!(e.at() < Time::from_secs(100));
        }
        // Sorted on construction.
        let mut last = Time::ZERO;
        for e in &a.events {
            assert!(e.at() >= last);
            last = e.at();
        }
        // Roughly the configured rates.
        let stragglers = a
            .events
            .iter()
            .filter(|e| matches!(e, DynamicsEvent::Straggler { .. }))
            .count();
        assert!((3..=25).contains(&stragglers), "{stragglers} stragglers");
    }

    #[test]
    fn none_is_empty() {
        assert!(DynamicsSpec::none().events.is_empty());
    }
}
