//! `coflowgen` — generate, inspect, and convert CoFlow traces in the
//! public `coflow-benchmark` text format.
//!
//! ```text
//! coflowgen gen   --preset fb|osp|small --seed N [--out FILE]
//! coflowgen stats FILE
//! ```
//!
//! `gen` writes a trace to stdout (or `--out`); `stats` prints the
//! workload statistics the paper's Table 1 / Fig 2 analysis uses, for
//! any file in the format — including the real published Facebook
//! trace.

use saath_simcore::Rate;
use saath_workload::{gen, io, Trace};

fn fail(msg: &str) -> ! {
    eprintln!("coflowgen: {msg}");
    eprintln!("usage: coflowgen gen --preset fb|osp|small --seed N [--out FILE]");
    eprintln!("       coflowgen stats FILE");
    std::process::exit(2);
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn print_stats(trace: &Trace) {
    println!(
        "nodes: {}   coflows: {}   flows: {}   total: {:.2} GB   span: {:.1}s",
        trace.num_nodes,
        trace.coflows.len(),
        trace.num_flows(),
        trace.total_bytes().as_u64() as f64 / 1e9,
        trace.arrival_span().as_secs_f64(),
    );
    let n = trace.coflows.len() as f64;
    let single = trace.coflows.iter().filter(|c| c.width() == 1).count() as f64;
    let equal = trace
        .coflows
        .iter()
        .filter(|c| c.width() > 1 && c.has_equal_flows())
        .count() as f64;
    println!(
        "flow-length mix: {:.0}% single, {:.0}% multi-equal, {:.0}% multi-uneven",
        single / n * 100.0,
        equal / n * 100.0,
        (n - single - equal) / n * 100.0
    );
    let mut bins = [0usize; 4];
    for c in &trace.coflows {
        let wide = c.width() > 10;
        let long = c.total_size() > saath_simcore::Bytes::mb(100);
        bins[match (long, wide) {
            (false, false) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (true, true) => 3,
        }] += 1;
    }
    for (i, b) in bins.iter().enumerate() {
        println!("bin-{} : {:>5.1}%", i + 1, *b as f64 / n * 100.0);
    }
    let mut widths: Vec<usize> = trace.coflows.iter().map(|c| c.width()).collect();
    widths.sort_unstable();
    println!(
        "width: p50 {}  p90 {}  max {}",
        widths[widths.len() / 2],
        widths[widths.len() * 9 / 10],
        widths.last().unwrap()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let seed = arg_value(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1u64);
            let cfg = match arg_value(&args, "--preset").as_deref() {
                Some("fb") | None => gen::fb_like(seed),
                Some("osp") => gen::osp_like(seed),
                Some("small") => gen::small(seed, 20, 60),
                Some(other) => fail(&format!("unknown preset `{other}`")),
            };
            let trace = gen::generate(&cfg);
            let text = io::write_coflow_benchmark(&trace);
            match arg_value(&args, "--out") {
                Some(path) => {
                    std::fs::write(&path, text)
                        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
                    eprintln!("wrote {} coflows to {path}", trace.coflows.len());
                }
                None => print!("{text}"),
            }
        }
        Some("stats") => {
            let path = args.get(1).unwrap_or_else(|| fail("stats needs a file"));
            let trace = io::read_coflow_benchmark(std::path::Path::new(path), Rate::gbps(1))
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            print_stats(&trace);
        }
        _ => fail("missing subcommand"),
    }
}
