//! Hand-built workloads reproducing the paper's worked examples.
//!
//! Each function returns a [`Trace`] whose *exact* optimal and
//! policy-specific schedules the paper draws (Figs 1, 4, 5, 8, 17).
//! Integration tests in the workspace root replay these traces through
//! the real schedulers and assert the CCTs the figures annotate.
//!
//! Flow lengths are expressed in units of `t` = 1 second of port time,
//! in tenths (`units(25)` = a flow of duration `2.5t`). The examples use
//! deliberately *slow* 1 Mbps ports so that every flow stays far below
//! the default 10 MB queue threshold: the figures reason about a single
//! priority queue, and keeping the examples inside `Q_0` preserves that
//! without touching the schedulers' default configuration. (Timing is
//! rate-invariant: only the ratio of flow size to port speed matters.)

use crate::spec::{CoflowSpec, FlowSpec, Trace};
use saath_simcore::{Bytes, CoflowId, NodeId, Rate, Time};

/// 1 Mbps — slow on purpose, see the module docs.
pub const PORT_RATE: Rate = Rate::mbps(1);

/// Bytes that take `tenths/10` seconds to send at [`PORT_RATE`].
pub fn units(tenths: u64) -> Bytes {
    Bytes(PORT_RATE.as_u64() / 10 * tenths)
}

fn flow(src: u32, dst: u32, tenths: u64) -> FlowSpec {
    FlowSpec::new(NodeId(src), NodeId(dst), units(tenths))
}

/// **Fig 1 — the out-of-sync problem.**
///
/// Four CoFlows, arrival order `C1 < C2 < C3 < C4`, every flow of
/// duration `t` (= 1 s here). `C2` spans all three sender ports; the
/// others each use one.
///
/// * Aalo (per-port FIFO): `C2`'s flows run out of sync; CCTs are
///   `t, 2t, 2t, 2t` — average `1.75 t`.
/// * Optimal / Saath (LCoF + all-or-none): the three narrow CoFlows go
///   first and `C2` runs as a gang; CCTs are `t, 2t, t, t` — average
///   `1.25 t`.
///
/// Senders are nodes 0–2, receivers 3–8 (all distinct, so only uplinks
/// contend). Contentions: `k1 = 1, k2 = 3, k3 = k4 = 1`, as the paper
/// states.
pub fn fig1_out_of_sync() -> Trace {
    let t = 10; // tenths
    let coflows = vec![
        CoflowSpec::new(CoflowId(1), Time::ZERO, vec![flow(0, 3, t)]),
        CoflowSpec::new(
            CoflowId(2),
            Time::from_millis(1),
            vec![flow(0, 4, t), flow(1, 5, t), flow(2, 6, t)],
        ),
        CoflowSpec::new(CoflowId(3), Time::from_millis(2), vec![flow(1, 7, t)]),
        CoflowSpec::new(CoflowId(4), Time::from_millis(3), vec![flow(2, 8, t)]),
    ];
    Trace {
        num_nodes: 9,
        port_rate: PORT_RATE,
        coflows,
    }
}

/// **Fig 4 — all-or-none can idle ports; work conservation fixes it.**
///
/// `C1` is a single flow of duration `t` on sender 0. `C2` has a flow of
/// duration `t` on sender 0 and a flow of duration `2t` on sender 1.
///
/// * All-or-none *without* work conservation: `C1` runs `[0, t)`;
///   sender 1 sits idle; `C2` runs `[t, 3t)`. CCTs `t, 3t` — average
///   `2 t` (the figure's (b) panel).
/// * With work conservation: `C2`'s sender-1 flow backfills `[0, t)`,
///   so `C2` completes at `2t`. Average `1.5 t` — strictly better, the
///   figure's (c) effect.
pub fn fig4_work_conservation() -> Trace {
    let t = 10;
    let coflows = vec![
        CoflowSpec::new(CoflowId(1), Time::ZERO, vec![flow(0, 2, t)]),
        CoflowSpec::new(
            CoflowId(2),
            Time::from_millis(1),
            vec![flow(0, 3, t), flow(1, 4, 2 * t)],
        ),
    ];
    Trace {
        num_nodes: 5,
        port_rate: PORT_RATE,
        coflows,
    }
}

/// **Fig 5 — fast queue transition via per-flow thresholds.**
///
/// `C1` occupies senders 0 and 1 with long flows. `C2` has four flows,
/// one per sender 0–3; under FIFO only its sender-2/3 flows can run at
/// first. With a queue threshold of `4·B·t` bytes total:
///
/// * Aalo (total-bytes threshold): `C2` needs `2t` of sending on its two
///   free ports to cross.
/// * Saath (per-flow threshold `B·t`): the sender-2 flow crosses its
///   share at `t`, demoting the whole CoFlow — twice as fast, freeing
///   the high-priority queue.
pub fn fig5_queue_transition() -> Trace {
    let t = 10;
    let coflows = vec![
        CoflowSpec::new(
            CoflowId(1),
            Time::ZERO,
            vec![flow(0, 4, 8 * t), flow(1, 5, 8 * t)],
        ),
        CoflowSpec::new(
            CoflowId(2),
            Time::from_millis(1),
            vec![
                flow(0, 6, 4 * t),
                flow(1, 7, 4 * t),
                flow(2, 8, 4 * t),
                flow(3, 9, 4 * t),
            ],
        ),
    ];
    Trace {
        num_nodes: 10,
        port_rate: PORT_RATE,
        coflows,
    }
}

/// **Fig 8 — LCoF's known limitation.**
///
/// `C1` is short (duration `t`) but wide (senders 0 and 1, so `k = 2`);
/// `C2` and `C3` are long (duration `2.5t`) but narrow (`k = 1` each).
///
/// * LCoF schedules the low-contention `C2`/`C3` first: CCTs
///   `3.5t, 2.5t, 2.5t` — average `2.83 t`.
/// * Optimal schedules `C1` first: CCTs `t, 3.5t, 3.5t` — average
///   `2.66 t`.
///
/// The paper keeps LCoF anyway: such CoFlows are a minor fraction of
/// real traces (bin-2 in Figs 11/12).
pub fn fig8_lcof_limitation() -> Trace {
    let coflows = vec![
        CoflowSpec::new(
            CoflowId(1),
            Time::ZERO,
            vec![flow(0, 2, 10), flow(1, 3, 10)],
        ),
        CoflowSpec::new(CoflowId(2), Time::from_millis(1), vec![flow(0, 4, 25)]),
        CoflowSpec::new(CoflowId(3), Time::from_millis(2), vec![flow(1, 5, 25)]),
    ];
    Trace {
        num_nodes: 6,
        port_rate: PORT_RATE,
        coflows,
    }
}

/// **Fig 17 / Appendix A — SJF is sub-optimal for CoFlows.**
///
/// All three CoFlows arrive together, sizes known: `C1` spans both
/// sender ports with duration `5` units; `C2` (duration 6) and `C3`
/// (duration 7) each use one port. `k1 = 2, k2 = k3 = 1`.
///
/// * SJF picks shortest-first (`C1`): CCTs `5, 11, 12` — average 9.3.
/// * Contention-aware (LWTF: `t·k` = 10, 6, 7): `C2`, `C3` first, then
///   `C1`: CCTs `12, 6, 7` — average 8.3.
pub fn fig17_sjf_suboptimal() -> Trace {
    let coflows = vec![
        CoflowSpec::new(
            CoflowId(1),
            Time::ZERO,
            vec![flow(0, 2, 50), flow(1, 3, 50)],
        ),
        CoflowSpec::new(CoflowId(2), Time::ZERO, vec![flow(0, 4, 60)]),
        CoflowSpec::new(CoflowId(3), Time::ZERO, vec![flow(1, 5, 70)]),
    ];
    Trace {
        num_nodes: 6,
        port_rate: PORT_RATE,
        coflows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_validate() {
        for (name, t) in [
            ("fig1", fig1_out_of_sync()),
            ("fig4", fig4_work_conservation()),
            ("fig5", fig5_queue_transition()),
            ("fig8", fig8_lcof_limitation()),
            ("fig17", fig17_sjf_suboptimal()),
        ] {
            assert!(t.validate().is_ok(), "{name} invalid: {:?}", t.validate());
        }
    }

    #[test]
    fn units_are_port_seconds() {
        // 10 tenths = 1 s at 1 Mbps = 125 KB.
        assert_eq!(units(10), Bytes(125_000));
    }

    #[test]
    fn examples_stay_in_the_first_queue() {
        // The figures assume a single priority queue; no flow may cross
        // the default 10 MB starting threshold even if it ran alone.
        for t in [
            fig1_out_of_sync(),
            fig4_work_conservation(),
            fig5_queue_transition(),
            fig8_lcof_limitation(),
            fig17_sjf_suboptimal(),
        ] {
            for c in &t.coflows {
                assert!(c.total_size() < Bytes::mb(10), "{} too large", c.id);
            }
        }
    }

    #[test]
    fn fig1_contentions_match_paper() {
        let t = fig1_out_of_sync();
        let n = t.num_nodes;
        // k_c = number of other CoFlows sharing any port.
        let k: Vec<usize> = t
            .coflows
            .iter()
            .map(|c| {
                let ports = c.ports(n);
                t.coflows
                    .iter()
                    .filter(|o| o.id != c.id && !o.ports(n).is_disjoint(&ports))
                    .count()
            })
            .collect();
        assert_eq!(k, vec![1, 3, 1, 1]);
    }

    #[test]
    fn fig17_contentions_match_paper() {
        let t = fig17_sjf_suboptimal();
        let n = t.num_nodes;
        let k: Vec<usize> = t
            .coflows
            .iter()
            .map(|c| {
                let ports = c.ports(n);
                t.coflows
                    .iter()
                    .filter(|o| o.id != c.id && !o.ports(n).is_disjoint(&ports))
                    .count()
            })
            .collect();
        assert_eq!(k, vec![2, 1, 1]);
    }

    #[test]
    fn receivers_never_contend_in_examples() {
        // The figures reason about sender ports only; examples are built
        // so every receiver is unique.
        for t in [
            fig1_out_of_sync(),
            fig4_work_conservation(),
            fig5_queue_transition(),
            fig8_lcof_limitation(),
            fig17_sjf_suboptimal(),
        ] {
            let mut seen = std::collections::BTreeSet::new();
            for c in &t.coflows {
                for f in &c.flows {
                    assert!(seen.insert(f.dst), "receiver {} reused", f.dst);
                }
            }
        }
    }
}
