//! Reading and writing the `coflow-benchmark` trace format.
//!
//! The Facebook trace the paper replays is published at
//! `github.com/coflow/coflow-benchmark` as a whitespace-separated text
//! file:
//!
//! ```text
//! <num_ports> <num_coflows>
//! <id> <arrival_ms> <M> <m_1> … <m_M> <R> <r_1>:<mb_1> … <r_R>:<mb_R>
//! ```
//!
//! Each line is one CoFlow: `M` mapper machines, then `R` reducer
//! entries of the form `machine:megabytes`, where `megabytes` is the
//! *total* volume that reducer receives. Following `coflowsim`, that
//! volume is split equally across the `M` mappers, giving an `M × R`
//! all-to-all shuffle of `M·R` flows.
//!
//! Machine numbers in the published file are 1-based; we auto-detect
//! 0-based files (any index equal to 0) for robustness and say so in the
//! parse result.

use crate::spec::{CoflowSpec, FlowSpec, Trace};
use saath_simcore::{Bytes, CoflowId, NodeId, Rate, Time};
use std::fmt;

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a `coflow-benchmark` trace from a string. `port_rate` is the
/// uniform port speed to attach (the file does not carry one; the paper
/// uses 1 Gbps).
pub fn parse_coflow_benchmark(text: &str, port_rate: Rate) -> Result<Trace, ParseError> {
    parse_from_lines(
        text.lines().map(Ok::<_, std::convert::Infallible>),
        port_rate,
    )
}

/// The line-oriented core behind [`parse_coflow_benchmark`] and
/// [`read_coflow_benchmark`]: consumes lines one at a time (borrowed
/// from an in-memory string, or owned from a [`std::io::BufRead`]), so
/// file ingestion never materializes the whole trace text. Read
/// failures surface as [`ParseError`]s on the line they interrupted.
fn parse_from_lines<S, E, I>(lines: I, port_rate: Rate) -> Result<Trace, ParseError>
where
    S: AsRef<str>,
    E: fmt::Display,
    I: Iterator<Item = Result<S, E>>,
{
    let mut lines = lines
        .enumerate()
        .map(|(i, r)| {
            r.map(|l| (i, l))
                .map_err(|e| err(i + 1, format!("read failed: {e}")))
        })
        .filter(|r| !matches!(r, Ok((_, l)) if l.as_ref().trim().is_empty()));

    let (hline, header) = lines.next().ok_or_else(|| err(1, "empty file"))??;
    let header = header.as_ref();
    let mut head = header.split_whitespace();
    let num_nodes: usize = head
        .next()
        .ok_or_else(|| err(hline + 1, "missing port count"))?
        .parse()
        .map_err(|_| err(hline + 1, "bad port count"))?;
    let num_coflows: usize = head
        .next()
        .ok_or_else(|| err(hline + 1, "missing coflow count"))?
        .parse()
        .map_err(|_| err(hline + 1, "bad coflow count"))?;
    if num_nodes == 0 {
        return Err(err(hline + 1, "zero ports"));
    }

    // First pass: raw records, tracking whether any machine index is 0
    // (then the file is 0-based) — the published FB file is 1-based.
    struct Raw {
        line: usize,
        id: u32,
        arrival_ms: u64,
        mappers: Vec<u64>,
        reducers: Vec<(u64, f64)>,
    }
    let mut raws: Vec<Raw> = Vec::with_capacity(num_coflows.min(1 << 20));
    let mut saw_zero = false;
    for item in lines {
        let (lineno, line) = item?;
        let line = line.as_ref();
        let ln = lineno + 1;
        let mut tok = line.split_whitespace();
        let id: u32 = tok
            .next()
            .ok_or_else(|| err(ln, "missing coflow id"))?
            .parse()
            .map_err(|_| err(ln, "bad coflow id"))?;
        let arrival_ms: u64 = tok
            .next()
            .ok_or_else(|| err(ln, "missing arrival time"))?
            .parse()
            .map_err(|_| err(ln, "bad arrival time"))?;
        let m: usize = tok
            .next()
            .ok_or_else(|| err(ln, "missing mapper count"))?
            .parse()
            .map_err(|_| err(ln, "bad mapper count"))?;
        if m == 0 {
            return Err(err(ln, "zero mappers"));
        }
        let mut mappers = Vec::with_capacity(m);
        for _ in 0..m {
            let v: u64 = tok
                .next()
                .ok_or_else(|| err(ln, "truncated mapper list"))?
                .parse()
                .map_err(|_| err(ln, "bad mapper machine"))?;
            saw_zero |= v == 0;
            mappers.push(v);
        }
        let r: usize = tok
            .next()
            .ok_or_else(|| err(ln, "missing reducer count"))?
            .parse()
            .map_err(|_| err(ln, "bad reducer count"))?;
        if r == 0 {
            return Err(err(ln, "zero reducers"));
        }
        let mut reducers = Vec::with_capacity(r);
        for _ in 0..r {
            let entry = tok
                .next()
                .ok_or_else(|| err(ln, "truncated reducer list"))?;
            let (machine, mb) = entry
                .split_once(':')
                .ok_or_else(|| err(ln, format!("reducer entry `{entry}` missing `:`")))?;
            let machine: u64 = machine
                .parse()
                .map_err(|_| err(ln, "bad reducer machine"))?;
            let mb: f64 = mb.parse().map_err(|_| err(ln, "bad reducer size"))?;
            if mb <= 0.0 {
                return Err(err(ln, "non-positive reducer size"));
            }
            saw_zero |= machine == 0;
            reducers.push((machine, mb));
        }
        if tok.next().is_some() {
            return Err(err(ln, "trailing tokens"));
        }
        raws.push(Raw {
            line: ln,
            id,
            arrival_ms,
            mappers,
            reducers,
        });
    }

    if raws.len() != num_coflows {
        return Err(err(
            1,
            format!(
                "header promises {num_coflows} coflows, file has {}",
                raws.len()
            ),
        ));
    }

    let base = if saw_zero { 0 } else { 1 };
    let mut coflows = Vec::with_capacity(raws.len());
    for raw in &raws {
        let mut flows = Vec::with_capacity(raw.mappers.len() * raw.reducers.len());
        for &(red, mb) in &raw.reducers {
            let red = red
                .checked_sub(base)
                .filter(|&v| (v as usize) < num_nodes)
                .ok_or_else(|| err(raw.line, format!("reducer machine {red} out of range")))?;
            // Total reducer volume split equally across mappers, as in
            // coflowsim. Round up per-flow so no flow is zero-sized.
            let per_flow_bytes = ((mb * 1e6).ceil() as u64)
                .div_ceil(raw.mappers.len() as u64)
                .max(1);
            for &map in &raw.mappers {
                let map = map
                    .checked_sub(base)
                    .filter(|&v| (v as usize) < num_nodes)
                    .ok_or_else(|| err(raw.line, format!("mapper machine {map} out of range")))?;
                flows.push(FlowSpec::new(
                    NodeId(map as u32),
                    NodeId(red as u32),
                    Bytes(per_flow_bytes),
                ));
            }
        }
        coflows.push(CoflowSpec::new(
            CoflowId(raw.id),
            Time::from_millis(raw.arrival_ms),
            flows,
        ));
    }
    coflows.sort_by_key(|c| (c.arrival, c.id));

    let trace = Trace {
        num_nodes,
        port_rate,
        coflows,
    };
    trace
        .validate()
        .map_err(|e| err(1, format!("structurally invalid trace: {e}")))?;
    Ok(trace)
}

/// Reads a trace file from disk, streaming it line-by-line through a
/// buffered reader — the full text is never held in memory, so
/// full-size published traces ingest in `O(one line + parsed trace)`
/// space (see [`parse_coflow_benchmark`] for the format).
pub fn read_coflow_benchmark(
    path: &std::path::Path,
    port_rate: Rate,
) -> Result<Trace, Box<dyn std::error::Error>> {
    use std::io::BufRead;
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    Ok(parse_from_lines(reader.lines(), port_rate)?)
}

/// Writes a trace in `coflow-benchmark` format (1-based machines).
///
/// The format models an `M × R` shuffle per CoFlow; an arbitrary
/// [`Trace`] is lowered by grouping flows per reducer and emitting the
/// union of senders as the mapper list. Per-mapper volumes are equalized
/// by the format, so a round-trip preserves CoFlow totals per reducer
/// and the port sets, but not unequal per-flow splits — exactly the
/// information the published trace carries. (Traces produced by the
/// generators in [`crate::gen`] with `equal` splits round-trip
/// losslessly.)
pub fn write_coflow_benchmark(trace: &Trace) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();
    out.push_str(&format!("{} {}\n", trace.num_nodes, trace.coflows.len()));
    for c in &trace.coflows {
        let mut mappers: Vec<u64> = c.flows.iter().map(|f| f.src.0 as u64 + 1).collect();
        mappers.sort_unstable();
        mappers.dedup();
        let mut per_reducer: BTreeMap<u64, u64> = BTreeMap::new();
        for f in &c.flows {
            *per_reducer.entry(f.dst.0 as u64 + 1).or_insert(0) += f.size.as_u64();
        }
        out.push_str(&format!(
            "{} {} {}",
            c.id.0,
            c.arrival.as_millis(),
            mappers.len()
        ));
        for m in &mappers {
            out.push_str(&format!(" {m}"));
        }
        out.push_str(&format!(" {}", per_reducer.len()));
        for (r, bytes) in &per_reducer {
            // Megabytes with enough precision to round-trip integer MB.
            let mb = *bytes as f64 / 1e6;
            if (mb.fract()).abs() < 1e-9 {
                out.push_str(&format!(" {r}:{}", mb as u64));
            } else {
                out.push_str(&format!(" {r}:{mb:.6}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
4 2
0 0 2 1 2 2 3:8 4:4
1 5 1 4 1 1:2
";

    #[test]
    fn parses_the_documented_format() {
        let t = parse_coflow_benchmark(SAMPLE, Rate::gbps(1)).unwrap();
        assert_eq!(t.num_nodes, 4);
        assert_eq!(t.coflows.len(), 2);

        let c0 = &t.coflows[0];
        assert_eq!(c0.id, CoflowId(0));
        assert_eq!(c0.arrival, Time::ZERO);
        // 2 mappers × 2 reducers = 4 flows; reducer 3 gets 8 MB → 4 MB
        // per mapper; reducer 4 gets 4 MB → 2 MB per mapper.
        assert_eq!(c0.width(), 4);
        assert_eq!(c0.total_size(), Bytes::mb(12));
        // 1-based machines shifted down.
        assert!(c0.flows.iter().all(|f| f.src.index() <= 1));
        assert!(c0.flows.iter().all(|f| f.dst.index() >= 2));

        let c1 = &t.coflows[1];
        assert_eq!(c1.arrival, Time::from_millis(5));
        assert_eq!(c1.width(), 1);
        assert_eq!(c1.total_size(), Bytes::mb(2));
        assert_eq!(c1.flows[0].src, NodeId(3));
        assert_eq!(c1.flows[0].dst, NodeId(0));
    }

    #[test]
    fn detects_zero_based_files() {
        let text = "4 1\n0 0 1 0 1 3:6\n";
        let t = parse_coflow_benchmark(text, Rate::gbps(1)).unwrap();
        assert_eq!(t.coflows[0].flows[0].src, NodeId(0));
        assert_eq!(t.coflows[0].flows[0].dst, NodeId(3));
    }

    #[test]
    fn fractional_megabytes_are_supported() {
        let text = "2 1\n0 0 1 1 1 2:0.5\n";
        let t = parse_coflow_benchmark(text, Rate::gbps(1)).unwrap();
        assert_eq!(t.coflows[0].total_size(), Bytes(500_000));
    }

    #[test]
    fn error_cases_carry_line_numbers() {
        let cases: &[(&str, &str)] = &[
            ("", "empty file"),
            ("x 2\n", "bad port count"),
            ("4\n", "missing coflow count"),
            ("4 1\n0 0 0 1 1:2\n", "zero mappers"),
            ("4 1\n0 0 1 1 1 5:2\n", "out of range"),
            ("4 1\n0 0 1 1 1 2\n", "missing `:`"),
            ("4 1\n0 0 1 1 1 2:-3\n", "non-positive"),
            ("4 2\n0 0 1 1 1 2:2\n", "header promises 2"),
            ("4 1\n0 0 1 1 1 2:2 junk\n", "trailing"),
        ];
        for (text, needle) in cases {
            let e = parse_coflow_benchmark(text, Rate::gbps(1)).unwrap_err();
            assert!(
                e.message.contains(needle),
                "for {text:?}: got `{}`, wanted `{needle}`",
                e.message
            );
        }
    }

    #[test]
    fn streaming_file_read_matches_in_memory_parse() {
        let t = parse_coflow_benchmark(SAMPLE, Rate::gbps(1)).unwrap();
        let path = std::env::temp_dir().join("saath-io-streaming-test.txt");
        std::fs::write(&path, SAMPLE).unwrap();
        let streamed = read_coflow_benchmark(&path, Rate::gbps(1)).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(t, streamed);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let t = parse_coflow_benchmark(SAMPLE, Rate::gbps(1)).unwrap();
        let written = write_coflow_benchmark(&t);
        let t2 = parse_coflow_benchmark(&written, Rate::gbps(1)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn arrivals_are_sorted_after_parse() {
        // File deliberately out of order.
        let text = "4 2\n1 50 1 1 1 2:2\n0 10 1 3 1 4:2\n";
        let t = parse_coflow_benchmark(text, Rate::gbps(1)).unwrap();
        assert_eq!(t.coflows[0].id, CoflowId(0));
        assert_eq!(t.coflows[1].id, CoflowId(1));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn per_flow_rounding_never_yields_zero() {
        // 1 MB over 3 mappers: 333,334 B per flow (rounded up).
        let text = "4 1\n0 0 3 1 2 3 1 4:1\n";
        let t = parse_coflow_benchmark(text, Rate::gbps(1)).unwrap();
        assert_eq!(t.coflows[0].width(), 3);
        for f in &t.coflows[0].flows {
            assert_eq!(f.size, Bytes(333_334));
        }
    }
}
