//! Jobs, multi-stage DAGs, and the shuffle-fraction model.
//!
//! Two pieces of the paper live here:
//!
//! * **Multi-stage DAG / multi-wave scheduling** (§4.3): an analytics
//!   query is a DAG of stages; Saath registers *one CoFlow per stage*
//!   (not per job), and a wave of a MapReduce job is likewise one
//!   CoFlow in a serialized chain. [`JobSpec`] groups a job's CoFlows
//!   and [`chain`]/[`diamond`] build the common DAG shapes on top of
//!   [`crate::spec::CoflowSpec::deps`].
//!
//! * **Job completion time** (Fig 16): the paper derives JCT from CCT
//!   via the fraction of job time spent in the shuffle phase, using the
//!   same distribution as Aalo. [`ShuffleFractionModel`] samples that
//!   fraction and [`job_completion_time`] composes compute + shuffle.

use crate::spec::{CoflowSpec, Trace};
use saath_simcore::{CoflowId, DetRng, Duration, JobId};
use serde::{Deserialize, Serialize};

/// A job: a set of CoFlows plus the fraction of its total runtime spent
/// in the communication (shuffle) stage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job identifier.
    pub id: JobId,
    /// The job's CoFlows (stages/waves).
    pub coflows: Vec<CoflowId>,
    /// Fraction of total job time spent in shuffle, in `(0, 1]`.
    pub shuffle_fraction: f64,
}

/// The distribution of shuffle fractions across jobs.
///
/// Aalo (§5.2 of that paper, reused by Saath §7.2) reports the share of
/// jobs whose shuffle phase accounts for <25 %, 25–49 %, 50–74 %, and
/// ≥75 % of job time in the Facebook trace. The exact histogram is not
/// republished in Saath, so the default reproduces Aalo's reported mix;
/// the buckets are public so experiments can sweep it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShuffleFractionModel {
    /// `(bucket probability, lower fraction, upper fraction)`.
    pub buckets: Vec<(f64, f64, f64)>,
}

impl Default for ShuffleFractionModel {
    fn default() -> Self {
        // Aalo-reported mix for the FB trace: most jobs are
        // compute-dominated; a substantial minority are shuffle-heavy.
        ShuffleFractionModel {
            buckets: vec![
                (0.61, 0.01, 0.25),
                (0.13, 0.25, 0.50),
                (0.14, 0.50, 0.75),
                (0.12, 0.75, 1.00),
            ],
        }
    }
}

impl ShuffleFractionModel {
    /// Samples one job's shuffle fraction (uniform within its bucket).
    pub fn sample(&self, rng: &mut DetRng) -> f64 {
        let weights: Vec<f64> = self.buckets.iter().map(|b| b.0).collect();
        let (_, lo, hi) = self.buckets[rng.weighted(&weights)];
        lo + (hi - lo) * rng.unit()
    }

    /// Assigns a [`JobSpec`] to every CoFlow of `trace` (one job per
    /// CoFlow — the granularity of Fig 16) with sampled fractions.
    pub fn assign_jobs(&self, trace: &mut Trace, seed: u64) -> Vec<JobSpec> {
        let mut rng = DetRng::derive(seed, "jobs/shuffle-fraction");
        let mut jobs = Vec::with_capacity(trace.coflows.len());
        for (i, c) in trace.coflows.iter_mut().enumerate() {
            let id = JobId(i as u32);
            c.job = Some(id);
            jobs.push(JobSpec {
                id,
                coflows: vec![c.id],
                shuffle_fraction: self.sample(&mut rng),
            });
        }
        jobs
    }
}

/// Job completion time given the job's CCT under some scheduler and its
/// *baseline* CCT (used to size the fixed compute phase).
///
/// Following Aalo/Saath's methodology: a job with shuffle fraction `f`
/// and baseline shuffle time `cct_base` has a compute phase of
/// `cct_base * (1 - f) / f`, which the network scheduler cannot change.
/// The JCT under any scheduler is then `compute + cct_sched`.
pub fn job_completion_time(cct_base: Duration, cct_sched: Duration, f: f64) -> Duration {
    assert!(f > 0.0 && f <= 1.0, "shuffle fraction out of (0,1]: {f}");
    let compute_ns = (cct_base.as_nanos() as f64 * (1.0 - f) / f).round() as u64;
    Duration::from_nanos(compute_ns) + cct_sched
}

/// Serializes `stages` into a chain: stage `i+1` depends on stage `i`
/// (multi-wave MapReduce, §4.3). Returns the modified CoFlows.
pub fn chain(mut stages: Vec<CoflowSpec>) -> Vec<CoflowSpec> {
    for i in 1..stages.len() {
        let prev = stages[i - 1].id;
        stages[i].deps = vec![prev];
    }
    stages
}

/// Builds a diamond DAG: `source` feeds every middle stage, and `sink`
/// depends on all of them (a Hive-style query plan).
pub fn diamond(
    source: CoflowSpec,
    mut middle: Vec<CoflowSpec>,
    mut sink: CoflowSpec,
) -> Vec<CoflowSpec> {
    for m in &mut middle {
        m.deps = vec![source.id];
    }
    sink.deps = middle.iter().map(|m| m.id).collect();
    let mut all = vec![source];
    all.extend(middle);
    all.push(sink);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FlowSpec;
    use saath_simcore::{Bytes, NodeId, Rate, Time};

    fn cf(id: u32) -> CoflowSpec {
        CoflowSpec::new(
            CoflowId(id),
            Time::ZERO,
            vec![FlowSpec::new(NodeId(0), NodeId(1), Bytes::mb(1))],
        )
    }

    #[test]
    fn default_model_is_a_distribution() {
        let m = ShuffleFractionModel::default();
        let total: f64 = m.buckets.iter().map(|b| b.0).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let mut rng = DetRng::derive(1, "t");
        for _ in 0..1000 {
            let f = m.sample(&mut rng);
            assert!(f > 0.0 && f <= 1.0);
        }
    }

    #[test]
    fn sample_respects_bucket_mass() {
        let m = ShuffleFractionModel::default();
        let mut rng = DetRng::derive(2, "t");
        let n = 20_000;
        let heavy = (0..n).filter(|_| m.sample(&mut rng) >= 0.50).count() as f64 / n as f64;
        // Buckets 3+4 = 26 %.
        assert!((heavy - 0.26).abs() < 0.02, "shuffle-heavy mass {heavy}");
    }

    #[test]
    fn jct_composition() {
        // f = 0.5: compute equals baseline shuffle. Halving the CCT
        // yields a 1.33× JCT speedup, not 2×.
        let base = Duration::from_secs(100);
        let jct_base = job_completion_time(base, base, 0.5);
        let jct_fast = job_completion_time(base, Duration::from_secs(50), 0.5);
        assert_eq!(jct_base, Duration::from_secs(200));
        assert_eq!(jct_fast, Duration::from_secs(150));

        // A pure-shuffle job (f = 1) tracks CCT exactly.
        assert_eq!(
            job_completion_time(base, Duration::from_secs(42), 1.0),
            Duration::from_secs(42)
        );
    }

    #[test]
    #[should_panic(expected = "shuffle fraction")]
    fn zero_fraction_rejected() {
        job_completion_time(Duration::from_secs(1), Duration::from_secs(1), 0.0);
    }

    #[test]
    fn chain_builds_serial_deps() {
        let stages = chain(vec![cf(0), cf(1), cf(2)]);
        assert!(stages[0].deps.is_empty());
        assert_eq!(stages[1].deps, vec![CoflowId(0)]);
        assert_eq!(stages[2].deps, vec![CoflowId(1)]);
    }

    #[test]
    fn diamond_builds_fan_out_fan_in() {
        let d = diamond(cf(0), vec![cf(1), cf(2)], cf(3));
        assert_eq!(d.len(), 4);
        assert_eq!(d[1].deps, vec![CoflowId(0)]);
        assert_eq!(d[2].deps, vec![CoflowId(0)]);
        assert_eq!(d[3].deps, vec![CoflowId(1), CoflowId(2)]);
    }

    #[test]
    fn assign_jobs_covers_every_coflow() {
        let mut t = Trace {
            num_nodes: 2,
            port_rate: Rate::gbps(1),
            coflows: vec![cf(0), cf(1)],
        };
        let jobs = ShuffleFractionModel::default().assign_jobs(&mut t, 9);
        assert_eq!(jobs.len(), 2);
        assert!(t.coflows.iter().all(|c| c.job.is_some()));
        // Deterministic.
        let mut t2 = Trace {
            num_nodes: 2,
            port_rate: Rate::gbps(1),
            coflows: vec![cf(0), cf(1)],
        };
        let jobs2 = ShuffleFractionModel::default().assign_jobs(&mut t2, 9);
        assert_eq!(jobs, jobs2);
    }
}
