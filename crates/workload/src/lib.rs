//! # saath-workload
//!
//! Everything that *feeds* the Saath reproduction: CoFlow workload
//! descriptions, trace file I/O, synthetic trace generators calibrated
//! to the paper's published statistics, DAG/job models, and cluster
//! dynamics (stragglers, failures, pipelined data availability).
//!
//! ## Traces
//!
//! The paper evaluates on two traces:
//!
//! * the public Facebook Hive/MapReduce trace from the
//!   `coflow-benchmark` repository (150 ports, 526 CoFlows) — [`io`]
//!   parses and writes that exact text format, so the real file can be
//!   used directly when available;
//! * a proprietary Microsoft "online service provider" (OSP) trace
//!   (O(1000) jobs on O(100) ports, busier ports than FB).
//!
//! Neither file can ship with an offline reproduction, so [`gen`]
//! provides two seeded generators, [`gen::fb_like`] and
//! [`gen::osp_like`], that reproduce every distributional property the
//! evaluation depends on (§2.3, Table 1, Figs 2/11/12): the
//! single/equal/uneven flow-length mix (23 % / 50 % / 27 % in FB), the
//! size×width bin masses, heavy-tailed sizes, and — for OSP — the
//! denser per-port CoFlow occupancy the paper credits for its much
//! larger tail speedups.
//!
//! ## Worked examples
//!
//! [`paper_examples`] hand-builds the toy workloads of Figs 1, 4, 5, 8
//! and 17 so tests can assert the exact schedules the paper draws.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dag;
pub mod dynamics;
pub mod gen;
pub mod io;
pub mod paper_examples;
pub mod spec;
pub mod transform;

pub use dag::{JobSpec, ShuffleFractionModel};
pub use dynamics::{DynamicsEvent, DynamicsSpec};
pub use spec::{CoflowSpec, FlowSpec, Trace};
