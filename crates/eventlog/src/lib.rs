//! # saath-eventlog
//!
//! A hash-chained, binary, integer-only event log for deterministic
//! replay runs, plus the differential harness that compares two logs
//! down to the first divergent scheduling round.
//!
//! Every equivalence guarantee in this workspace (incremental engine vs
//! reference loop, sharded coordinators vs single, parallel probes vs
//! serial admission) is stated over byte-identical per-CoFlow records —
//! an end-of-run property. This crate makes the *per-round* trajectory
//! durable and verifiable:
//!
//! * **Round records.** Each scheduling round appends one canonical
//!   binary record (round ordinal, simulated time, active-CoFlow count,
//!   and the schedule as `(flow, src, dst, rate)` tuples sorted by flow
//!   id). Everything is a fixed-width little-endian integer; the
//!   workspace's vendored `serde` is an API stub, so framing is
//!   hand-rolled.
//! * **Chained digests.** Record *i* carries
//!   `hash_i = H(hash_{i-1} ‖ canonical_round_bytes)` where `H` is the
//!   workspace [`FastHasher`] widened to 128 bits (two independently
//!   seeded lanes). Equal digests at round *i* imply the entire round
//!   prefix is equal, so first-divergence search is a binary search
//!   over digests instead of a record-by-record scan.
//! * **Snapshots.** Engine snapshots (opaque blobs produced by the
//!   simulator) are framed into the same log but **excluded from the
//!   chain**, so two runs with different snapshot cadences still chain
//!   to identical digests.
//! * **Streaming verify.** [`verify`] re-derives the chain in one
//!   forward pass holding only the current record — O(1) memory in the
//!   log length — and reports the exact first unverifiable round.
//! * **Resume-compatible chains.** A log written by a resumed run
//!   starts at `start_round > 0` with `start_digest` equal to the
//!   original chain value at the snapshot point, so [`diff_logs`] can
//!   align it against the uninterrupted log and prove byte-identical
//!   continuation round by round.
//!
//! [`FastHasher`]: saath_simcore::fasthash::FastHasher

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::hash::Hasher as _;
use std::io::{Read, Write};

use saath_simcore::fasthash::FastHasher;

/// Fixed-width little-endian encode/decode helpers shared by the log
/// framing and the simulator's snapshot blobs.
pub mod wire {
    /// Appends one byte.
    pub fn put_u8(out: &mut Vec<u8>, v: u8) {
        out.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte slice (`u64` length + bytes).
    pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
        put_u64(out, v.len() as u64);
        out.extend_from_slice(v);
    }

    /// A bounds-checked cursor over a byte slice.
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// A cursor at the start of `buf`.
        pub fn new(buf: &'a [u8]) -> Reader<'a> {
            Reader { buf, pos: 0 }
        }

        /// Current offset from the start of the buffer.
        pub fn pos(&self) -> usize {
            self.pos
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Whether every byte has been consumed.
        pub fn is_empty(&self) -> bool {
            self.remaining() == 0
        }

        /// Takes the next `n` raw bytes.
        pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            if self.remaining() < n {
                return Err(format!(
                    "truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.remaining()
                ));
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// Reads one byte.
        pub fn u8(&mut self) -> Result<u8, String> {
            Ok(self.take(1)?[0])
        }

        /// Reads a little-endian `u32`.
        pub fn u32(&mut self) -> Result<u32, String> {
            let b = self.take(4)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        }

        /// Reads a little-endian `u64`.
        pub fn u64(&mut self) -> Result<u64, String> {
            let b = self.take(8)?;
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            Ok(u64::from_le_bytes(a))
        }

        /// Reads a length-prefixed byte slice.
        pub fn bytes(&mut self) -> Result<&'a [u8], String> {
            let n = self.u64()?;
            if n > self.remaining() as u64 {
                return Err(format!(
                    "truncated: length prefix {n} exceeds {} remaining bytes",
                    self.remaining()
                ));
            }
            self.take(n as usize)
        }
    }
}

/// File magic ("Saath EVent log").
const MAGIC: [u8; 4] = *b"SAEV";
/// Format version.
const VERSION: u32 = 1;
/// Frame kind: a chained round record.
const KIND_ROUND: u8 = 1;
/// Frame kind: an engine snapshot (not chained).
const KIND_SNAPSHOT: u8 = 2;
/// Sanity bound on a single frame's payload (corrupt length prefixes
/// must not make readers allocate unbounded memory).
const MAX_FRAME: u64 = 1 << 31;

/// Domain-separation constants making the two digest lanes independent
/// mixers (same rotate-xor-multiply core, different starting words).
const LANE_DOMAIN: [u64; 2] = [0x5361_6174_6845_4c31, 0x5361_6174_6845_4c32];

/// The 128-bit chain digest: the workspace's `FastHasher` widened to
/// two independently seeded lanes.
///
/// Not cryptographic — this guards against drift and bit rot between
/// two *honest* runs, exactly like the hasher it is built from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainDigest(pub [u64; 2]);

impl ChainDigest {
    /// The chain's genesis value (an all-zero digest).
    pub const ZERO: ChainDigest = ChainDigest([0, 0]);

    /// `hash_i = H(hash_{i-1} ‖ payload)`: folds `payload` into the
    /// chain and returns the next digest.
    pub fn advance(self, payload: &[u8]) -> ChainDigest {
        let mut out = [0u64; 2];
        for (lane, slot) in out.iter_mut().enumerate() {
            let mut h = FastHasher::default();
            h.write_u64(LANE_DOMAIN[lane]);
            h.write_u64(self.0[0]);
            h.write_u64(self.0[1]);
            h.write(payload);
            // Length word: "abc" + "" must not chain like "ab" + "c".
            h.write_u64(payload.len() as u64);
            *slot = h.finish();
        }
        ChainDigest(out)
    }

    /// Digest over a standalone byte string (chains from [`ZERO`]).
    ///
    /// [`ZERO`]: ChainDigest::ZERO
    pub fn of(payload: &[u8]) -> ChainDigest {
        ChainDigest::ZERO.advance(payload)
    }

    /// Lowercase hex rendering (32 nibbles).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// Why a log could not be written, read, or verified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogError {
    /// Underlying I/O failed (message carries the OS error text).
    Io(String),
    /// The header or framing preamble is not a valid event log.
    Malformed(String),
    /// The chain broke: `round` is the first round ordinal that could
    /// not be verified (digest mismatch, or an unreadable frame after
    /// `round - start_round` good rounds).
    Corrupt {
        /// First unverifiable round ordinal.
        round: u64,
        /// What exactly failed at that round.
        reason: String,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "event-log I/O error: {e}"),
            LogError::Malformed(e) => write!(f, "malformed event log: {e}"),
            LogError::Corrupt { round, reason } => {
                write!(f, "event log corrupt at round {round}: {reason}")
            }
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> LogError {
        LogError::Io(e.to_string())
    }
}

/// One scheduled flow in a round record: the flow, its endpoints (node
/// indices — uplink port = `src`, downlink port = `num_nodes + dst`),
/// and the granted rate in bytes/second.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateEntry {
    /// Dense flow id.
    pub flow: u32,
    /// Sending node index.
    pub src: u32,
    /// Receiving node index.
    pub dst: u32,
    /// Granted rate, bytes/second (never zero — paused flows are
    /// simply absent).
    pub rate: u64,
}

/// One scheduling round, in canonical form: entries sorted by flow id
/// so the single-coordinator and sharded-merge paths (which emit rates
/// in different orders) produce identical bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundRecord {
    /// Scheduling-round ordinal (0-based, global across resumes).
    pub round: u64,
    /// Simulated time at the round boundary, nanoseconds.
    pub now_ns: u64,
    /// CoFlows active at the boundary.
    pub active: u32,
    /// The schedule; canonicalized (sorted by flow id) on encode.
    pub entries: Vec<RateEntry>,
}

impl RoundRecord {
    /// The canonical chained bytes: fixed-width little-endian fields
    /// with entries sorted by flow id. Encoding an already-decoded
    /// record reproduces the identical byte string.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|e| e.flow);
        let mut out = Vec::with_capacity(24 + entries.len() * 24);
        wire::put_u64(&mut out, self.round);
        wire::put_u64(&mut out, self.now_ns);
        wire::put_u32(&mut out, self.active);
        wire::put_u32(&mut out, entries.len() as u32);
        for e in &entries {
            wire::put_u32(&mut out, e.flow);
            wire::put_u32(&mut out, e.src);
            wire::put_u32(&mut out, e.dst);
            wire::put_u64(&mut out, e.rate);
        }
        out
    }

    /// Decodes canonical bytes back into a record.
    pub fn decode(buf: &[u8]) -> Result<RoundRecord, LogError> {
        let mut r = wire::Reader::new(buf);
        let rec = (|| -> Result<RoundRecord, String> {
            let round = r.u64()?;
            let now_ns = r.u64()?;
            let active = r.u32()?;
            let n = r.u32()? as usize;
            // Each entry is 20 bytes (u32 flow/src/dst + u64 rate).
            if n > r.remaining() / 20 {
                return Err(format!("entry count {n} exceeds payload size"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(RateEntry {
                    flow: r.u32()?,
                    src: r.u32()?,
                    dst: r.u32()?,
                    rate: r.u64()?,
                });
            }
            if !r.is_empty() {
                return Err(format!("{} trailing bytes after entries", r.remaining()));
            }
            Ok(RoundRecord {
                round,
                now_ns,
                active,
                entries,
            })
        })()
        .map_err(LogError::Malformed)?;
        Ok(rec)
    }
}

/// Log identity: enough run context to refuse apples-to-oranges diffs
/// and resumes, plus the chain seed for resumed logs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHeader {
    /// Cluster size (ports number `2 * num_nodes`).
    pub num_nodes: u64,
    /// Nominal per-port rate, bytes/second.
    pub port_rate: u64,
    /// Coordination interval δ, nanoseconds.
    pub delta_ns: u64,
    /// Scheduler name (`CoflowScheduler::name`).
    pub scheduler: String,
    /// Digest of the trace the run replayed (drivers compute it over
    /// the flattened spec; zero when unused).
    pub trace_digest: ChainDigest,
    /// First round ordinal this log contains (0 for a fresh run, the
    /// snapshot round for a resumed run).
    pub start_round: u64,
    /// Chain value entering `start_round` ([`ChainDigest::ZERO`] for a
    /// fresh run; the original log's digest at the snapshot point for a
    /// resumed run).
    pub start_digest: ChainDigest,
}

impl LogHeader {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_u64(&mut out, self.num_nodes);
        wire::put_u64(&mut out, self.port_rate);
        wire::put_u64(&mut out, self.delta_ns);
        wire::put_bytes(&mut out, self.scheduler.as_bytes());
        wire::put_u64(&mut out, self.trace_digest.0[0]);
        wire::put_u64(&mut out, self.trace_digest.0[1]);
        wire::put_u64(&mut out, self.start_round);
        wire::put_u64(&mut out, self.start_digest.0[0]);
        wire::put_u64(&mut out, self.start_digest.0[1]);
        out
    }

    fn decode(buf: &[u8]) -> Result<LogHeader, LogError> {
        let mut r = wire::Reader::new(buf);
        (|| -> Result<LogHeader, String> {
            Ok(LogHeader {
                num_nodes: r.u64()?,
                port_rate: r.u64()?,
                delta_ns: r.u64()?,
                scheduler: String::from_utf8(r.bytes()?.to_vec())
                    .map_err(|e| format!("scheduler name is not UTF-8: {e}"))?,
                trace_digest: ChainDigest([r.u64()?, r.u64()?]),
                start_round: r.u64()?,
                start_digest: ChainDigest([r.u64()?, r.u64()?]),
            })
        })()
        .map_err(LogError::Malformed)
    }
}

/// Anything the replay engine can append rounds and snapshots to.
///
/// The simulator takes `Option<&mut dyn RoundSink>` so it needs no
/// generic plumbing; [`EventLogWriter`] is the canonical
/// implementation. Both methods return the bytes written, which the
/// engine feeds into its telemetry counters.
pub trait RoundSink {
    /// Appends one round record; returns bytes written.
    fn append_round(&mut self, rec: &RoundRecord) -> Result<u64, LogError>;
    /// Appends one engine snapshot taken with `round` rounds completed;
    /// returns bytes written.
    fn append_snapshot(&mut self, round: u64, blob: &[u8]) -> Result<u64, LogError>;
}

/// Streaming log writer: frames round records (chained) and snapshots
/// (unchained) onto any [`Write`] target.
pub struct EventLogWriter<W: Write> {
    w: W,
    digest: ChainDigest,
    next_round: u64,
    rounds: u64,
    snapshots: u64,
    bytes: u64,
}

impl<W: Write> EventLogWriter<W> {
    /// Writes the magic, version, and header; subsequent appends chain
    /// from `header.start_digest`.
    pub fn new(mut w: W, header: &LogHeader) -> Result<EventLogWriter<W>, LogError> {
        let mut pre = Vec::new();
        pre.extend_from_slice(&MAGIC);
        wire::put_u32(&mut pre, VERSION);
        wire::put_bytes(&mut pre, &header.encode());
        w.write_all(&pre)?;
        Ok(EventLogWriter {
            w,
            digest: header.start_digest,
            next_round: header.start_round,
            rounds: 0,
            snapshots: 0,
            bytes: pre.len() as u64,
        })
    }

    /// The chain digest after the last appended round.
    pub fn digest(&self) -> ChainDigest {
        self.digest
    }

    /// Round records appended so far.
    pub fn rounds_appended(&self) -> u64 {
        self.rounds
    }

    /// Snapshots appended so far.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots
    }

    /// Total bytes written (header included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> Result<W, LogError> {
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> RoundSink for EventLogWriter<W> {
    fn append_round(&mut self, rec: &RoundRecord) -> Result<u64, LogError> {
        if rec.round != self.next_round {
            return Err(LogError::Malformed(format!(
                "round records must be contiguous: got {}, expected {}",
                rec.round, self.next_round
            )));
        }
        let payload = rec.canonical_bytes();
        self.digest = self.digest.advance(&payload);
        let mut frame = Vec::with_capacity(payload.len() + 25);
        wire::put_u8(&mut frame, KIND_ROUND);
        wire::put_bytes(&mut frame, &payload);
        wire::put_u64(&mut frame, self.digest.0[0]);
        wire::put_u64(&mut frame, self.digest.0[1]);
        self.w.write_all(&frame)?;
        self.next_round += 1;
        self.rounds += 1;
        self.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    fn append_snapshot(&mut self, round: u64, blob: &[u8]) -> Result<u64, LogError> {
        let mut frame = Vec::with_capacity(blob.len() + 17);
        wire::put_u8(&mut frame, KIND_SNAPSHOT);
        wire::put_u64(&mut frame, (blob.len() + 8) as u64);
        wire::put_u64(&mut frame, round);
        frame.extend_from_slice(blob);
        self.w.write_all(&frame)?;
        self.snapshots += 1;
        self.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }
}

/// What a successful [`verify`] pass established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifySummary {
    /// First round ordinal in the log (`header.start_round`).
    pub start_round: u64,
    /// Round records verified.
    pub rounds: u64,
    /// Snapshot frames seen (not chained, not verified).
    pub snapshots: u64,
    /// The chain digest after the last round.
    pub digest: ChainDigest,
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, LogError> {
    let mut got = 0;
    while got < buf.len() {
        let n = r.read(&mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    Ok(got)
}

/// Streams through a log once, re-deriving the digest chain and
/// checking it against every stored digest. Holds one frame at a time —
/// O(1) memory in the number of rounds. Any unverifiable frame after
/// `k` good rounds fails with [`LogError::Corrupt`] at round
/// `start_round + k`.
pub fn verify<R: Read>(mut r: R) -> Result<VerifySummary, LogError> {
    let mut pre = [0u8; 8];
    if read_exact_or_eof(&mut r, &mut pre)? != 8 {
        return Err(LogError::Malformed("shorter than the magic".into()));
    }
    if pre[..4] != MAGIC {
        return Err(LogError::Malformed("bad magic".into()));
    }
    let version = u32::from_le_bytes([pre[4], pre[5], pre[6], pre[7]]);
    if version != VERSION {
        return Err(LogError::Malformed(format!("unknown version {version}")));
    }
    let mut len8 = [0u8; 8];
    if read_exact_or_eof(&mut r, &mut len8)? != 8 {
        return Err(LogError::Malformed("truncated header length".into()));
    }
    let hlen = u64::from_le_bytes(len8);
    if hlen > MAX_FRAME {
        return Err(LogError::Malformed(format!("header length {hlen} absurd")));
    }
    let mut hbuf = vec![0u8; hlen as usize];
    if read_exact_or_eof(&mut r, &mut hbuf)? != hbuf.len() {
        return Err(LogError::Malformed("truncated header".into()));
    }
    let header = LogHeader::decode(&hbuf)?;

    let mut digest = header.start_digest;
    let mut rounds = 0u64;
    let mut snapshots = 0u64;
    let mut payload: Vec<u8> = Vec::new();
    loop {
        let next_round = header.start_round + rounds;
        let corrupt = |reason: String| LogError::Corrupt {
            round: next_round,
            reason,
        };
        let mut kind = [0u8; 1];
        if read_exact_or_eof(&mut r, &mut kind)? == 0 {
            break; // clean end of log
        }
        if read_exact_or_eof(&mut r, &mut len8)? != 8 {
            return Err(corrupt("truncated frame length".into()));
        }
        let plen = u64::from_le_bytes(len8);
        if plen > MAX_FRAME {
            return Err(corrupt(format!("frame length {plen} absurd")));
        }
        payload.clear();
        payload.resize(plen as usize, 0);
        if read_exact_or_eof(&mut r, &mut payload)? != payload.len() {
            return Err(corrupt("truncated frame payload".into()));
        }
        match kind[0] {
            KIND_ROUND => {
                let mut stored = [0u8; 16];
                if read_exact_or_eof(&mut r, &mut stored)? != 16 {
                    return Err(corrupt("truncated stored digest".into()));
                }
                let rec = RoundRecord::decode(&payload)
                    .map_err(|e| corrupt(format!("undecodable round record: {e}")))?;
                if rec.round != next_round {
                    return Err(corrupt(format!(
                        "round ordinal {} out of sequence",
                        rec.round
                    )));
                }
                digest = digest.advance(&payload);
                let stored = ChainDigest([
                    u64::from_le_bytes(stored[..8].try_into().unwrap()),
                    u64::from_le_bytes(stored[8..].try_into().unwrap()),
                ]);
                if digest != stored {
                    return Err(corrupt(format!(
                        "chain digest mismatch (computed {}, stored {})",
                        digest.to_hex(),
                        stored.to_hex()
                    )));
                }
                rounds += 1;
            }
            KIND_SNAPSHOT => {
                if payload.len() < 8 {
                    return Err(corrupt("snapshot frame shorter than its round".into()));
                }
                snapshots += 1;
            }
            k => return Err(corrupt(format!("unknown frame kind {k}"))),
        }
    }
    Ok(VerifySummary {
        start_round: header.start_round,
        rounds,
        snapshots,
        digest,
    })
}

/// [`verify`] over a file path (buffered; still O(1) memory).
pub fn verify_path(path: &std::path::Path) -> Result<VerifySummary, LogError> {
    let f = std::fs::File::open(path)?;
    verify(std::io::BufReader::new(f))
}

/// One round's position in a parsed log.
#[derive(Clone, Copy, Debug)]
pub struct RoundIndexEntry {
    /// Round ordinal.
    pub round: u64,
    /// Stored chain digest after this round.
    pub digest: ChainDigest,
    /// Payload byte range within the log buffer.
    pub offset: usize,
    /// Payload length.
    pub len: usize,
}

/// The latest snapshot in a log, with everything a resume needs.
#[derive(Clone, Debug)]
pub struct SnapshotRef {
    /// Rounds completed when the snapshot was taken (= the resumed
    /// log's `start_round`).
    pub round: u64,
    /// The engine blob.
    pub blob: Vec<u8>,
    /// Chain digest entering `round` (= the resumed log's
    /// `start_digest`).
    pub digest: ChainDigest,
}

/// A fully indexed in-memory log (used by the differ and the resume
/// path; [`verify`] is the streaming alternative).
#[derive(Clone, Debug)]
pub struct LogIndex {
    /// The log's header.
    pub header: LogHeader,
    /// Every round record, in order.
    pub rounds: Vec<RoundIndexEntry>,
    /// Every snapshot, in order.
    pub snapshots: Vec<SnapshotRef>,
}

/// Indexes a log held in memory: offsets and stored digests for every
/// round, plus decoded snapshot refs. Does not re-derive the chain —
/// run [`verify`] first when integrity is in question.
pub fn index_log(bytes: &[u8]) -> Result<LogIndex, LogError> {
    let mut r = wire::Reader::new(bytes);
    let magic = r.take(4).map_err(LogError::Malformed)?;
    if magic != MAGIC {
        return Err(LogError::Malformed("bad magic".into()));
    }
    let version = r.u32().map_err(LogError::Malformed)?;
    if version != VERSION {
        return Err(LogError::Malformed(format!("unknown version {version}")));
    }
    let header = LogHeader::decode(r.bytes().map_err(LogError::Malformed)?)?;
    let mut rounds = Vec::new();
    let mut snapshots = Vec::new();
    let mut digest = header.start_digest;
    while !r.is_empty() {
        let kind = r.u8().map_err(LogError::Malformed)?;
        let payload_off = r.pos() + 8;
        let payload = r.bytes().map_err(LogError::Malformed)?;
        match kind {
            KIND_ROUND => {
                let stored = ChainDigest([
                    r.u64().map_err(LogError::Malformed)?,
                    r.u64().map_err(LogError::Malformed)?,
                ]);
                rounds.push(RoundIndexEntry {
                    round: header.start_round + rounds.len() as u64,
                    digest: stored,
                    offset: payload_off,
                    len: payload.len(),
                });
                digest = stored;
            }
            KIND_SNAPSHOT => {
                let mut pr = wire::Reader::new(payload);
                let round = pr.u64().map_err(LogError::Malformed)?;
                snapshots.push(SnapshotRef {
                    round,
                    blob: payload[8..].to_vec(),
                    digest,
                });
            }
            k => return Err(LogError::Malformed(format!("unknown frame kind {k}"))),
        }
    }
    Ok(LogIndex {
        header,
        rounds,
        snapshots,
    })
}

impl LogIndex {
    /// Decodes the round record at `entry` from the same buffer this
    /// index was built over.
    pub fn read_round(
        &self,
        bytes: &[u8],
        entry: &RoundIndexEntry,
    ) -> Result<RoundRecord, LogError> {
        RoundRecord::decode(&bytes[entry.offset..entry.offset + entry.len])
    }

    /// The last snapshot in the log, if any.
    pub fn last_snapshot(&self) -> Option<&SnapshotRef> {
        self.snapshots.last()
    }
}

/// One differing field at the first divergent round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDiff {
    /// What differs — e.g. `now_ns`, or
    /// `flow 17 rate (src node 2 / uplink port 2 → dst node 5 / downlink port 45)`.
    pub field: String,
    /// Value in log A (`"paused"` for an absent schedule entry).
    pub a: String,
    /// Value in log B.
    pub b: String,
}

/// The differential harness's verdict on two logs.
#[derive(Clone, Debug)]
pub struct DiffOutcome {
    /// First round whose records differ; `None` when every overlapping
    /// round chained identically.
    pub first_divergent_round: Option<u64>,
    /// Rounds compared (the ordinal overlap of the two logs).
    pub compared: u64,
    /// Trailing rounds only log A has (length difference, not
    /// divergence).
    pub only_in_a: u64,
    /// Trailing rounds only log B has.
    pub only_in_b: u64,
    /// Field-level diff of the first divergent round (empty when logs
    /// agree).
    pub fields: Vec<FieldDiff>,
}

impl DiffOutcome {
    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.first_divergent_round {
            None => {
                out.push_str(&format!(
                    "no divergence: {} round(s) chain-identical",
                    self.compared
                ));
                if self.only_in_a > 0 {
                    out.push_str(&format!("; log A has {} extra round(s)", self.only_in_a));
                }
                if self.only_in_b > 0 {
                    out.push_str(&format!("; log B has {} extra round(s)", self.only_in_b));
                }
                out.push('\n');
            }
            Some(r) => {
                out.push_str(&format!("first divergent round: {r}\n"));
                for d in &self.fields {
                    out.push_str(&format!("  {}: A = {}, B = {}\n", d.field, d.a, d.b));
                }
            }
        }
        out
    }
}

fn entry_label(e: &RateEntry, num_nodes: u64) -> String {
    format!(
        "flow {} rate (src node {} / uplink port {} -> dst node {} / downlink port {})",
        e.flow,
        e.src,
        e.src,
        e.dst,
        num_nodes + e.dst as u64
    )
}

fn field_diff(a: &RoundRecord, b: &RoundRecord, num_nodes: u64) -> Vec<FieldDiff> {
    let mut out = Vec::new();
    if a.now_ns != b.now_ns {
        out.push(FieldDiff {
            field: "now_ns".into(),
            a: a.now_ns.to_string(),
            b: b.now_ns.to_string(),
        });
    }
    if a.active != b.active {
        out.push(FieldDiff {
            field: "active_coflows".into(),
            a: a.active.to_string(),
            b: b.active.to_string(),
        });
    }
    // Both sides are flow-id sorted (canonical form): merge-walk.
    let (mut i, mut j) = (0, 0);
    while i < a.entries.len() || j < b.entries.len() {
        let ea = a.entries.get(i);
        let eb = b.entries.get(j);
        match (ea, eb) {
            (Some(x), Some(y)) if x.flow == y.flow => {
                if x != y {
                    out.push(FieldDiff {
                        field: entry_label(x, num_nodes),
                        a: x.rate.to_string(),
                        b: y.rate.to_string(),
                    });
                }
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x.flow < y.flow => {
                out.push(FieldDiff {
                    field: entry_label(x, num_nodes),
                    a: x.rate.to_string(),
                    b: "paused".into(),
                });
                i += 1;
            }
            (Some(_), Some(y)) => {
                out.push(FieldDiff {
                    field: entry_label(y, num_nodes),
                    a: "paused".into(),
                    b: y.rate.to_string(),
                });
                j += 1;
            }
            (Some(x), None) => {
                out.push(FieldDiff {
                    field: entry_label(x, num_nodes),
                    a: x.rate.to_string(),
                    b: "paused".into(),
                });
                i += 1;
            }
            (None, Some(y)) => {
                out.push(FieldDiff {
                    field: entry_label(y, num_nodes),
                    a: "paused".into(),
                    b: y.rate.to_string(),
                });
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Finds the first divergent round between two logs by binary-searching
/// their stored chain digests (equal digest at round *i* ⟹ identical
/// record prefix through *i*), then emits the minimal field-level diff
/// of that round. Logs may start at different rounds (a resumed log vs
/// the uninterrupted one); only the ordinal overlap is compared.
pub fn diff_logs(a_bytes: &[u8], b_bytes: &[u8]) -> Result<DiffOutcome, LogError> {
    let a = index_log(a_bytes)?;
    let b = index_log(b_bytes)?;
    if a.header.num_nodes != b.header.num_nodes || a.header.scheduler != b.header.scheduler {
        return Err(LogError::Malformed(format!(
            "logs are not comparable: {} nodes/{} vs {} nodes/{}",
            a.header.num_nodes, a.header.scheduler, b.header.num_nodes, b.header.scheduler
        )));
    }
    let lo = a.header.start_round.max(b.header.start_round);
    let a_end = a.header.start_round + a.rounds.len() as u64;
    let b_end = b.header.start_round + b.rounds.len() as u64;
    let hi = a_end.min(b_end);
    if hi <= lo {
        return Ok(DiffOutcome {
            first_divergent_round: None,
            compared: 0,
            only_in_a: a_end.saturating_sub(hi),
            only_in_b: b_end.saturating_sub(hi),
            fields: Vec::new(),
        });
    }
    let a_at = |round: u64| &a.rounds[(round - a.header.start_round) as usize];
    let b_at = |round: u64| &b.rounds[(round - b.header.start_round) as usize];
    // "Digest differs at round r" is monotone in r: chains that agree
    // at r agree on every round ≤ r, and once they split they never
    // re-join (the digest folds the full prefix). Binary search the
    // boundary.
    let diverged = |round: u64| a_at(round).digest != b_at(round).digest;
    if !diverged(hi - 1) {
        return Ok(DiffOutcome {
            first_divergent_round: None,
            compared: hi - lo,
            only_in_a: a_end.saturating_sub(hi),
            only_in_b: b_end.saturating_sub(hi),
            fields: Vec::new(),
        });
    }
    let (mut good, mut bad) = (None::<u64>, hi - 1);
    let mut lo_probe = lo;
    while lo_probe < bad {
        let mid = lo_probe + (bad - lo_probe) / 2;
        if diverged(mid) {
            bad = mid;
        } else {
            good = Some(mid);
            lo_probe = mid + 1;
        }
    }
    debug_assert!(diverged(bad));
    debug_assert!(good.map(|g| !diverged(g)).unwrap_or(true));
    let ra = a.read_round(a_bytes, a_at(bad))?;
    let rb = b.read_round(b_bytes, b_at(bad))?;
    let mut fields = field_diff(&ra, &rb, a.header.num_nodes);
    if fields.is_empty() {
        // Identical decoded records but different digests: the chains
        // entered the overlap already split (e.g. incompatible
        // start_digest seeds). Say so rather than reporting nothing.
        fields.push(FieldDiff {
            field: "chain digest".into(),
            a: a_at(bad).digest.to_hex(),
            b: b_at(bad).digest.to_hex(),
        });
    }
    Ok(DiffOutcome {
        first_divergent_round: Some(bad),
        compared: hi - lo,
        only_in_a: a_end.saturating_sub(hi),
        only_in_b: b_end.saturating_sub(hi),
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn header(start_round: u64, start_digest: ChainDigest) -> LogHeader {
        LogHeader {
            num_nodes: 8,
            port_rate: 125_000_000,
            delta_ns: 8_000_000,
            scheduler: "saath".into(),
            trace_digest: ChainDigest::of(b"trace"),
            start_round,
            start_digest,
        }
    }

    fn record(round: u64, seed: u64) -> RoundRecord {
        let n = (seed % 5) as u32 + 1;
        RoundRecord {
            round,
            now_ns: round * 8_000_000,
            active: n,
            entries: (0..n)
                .map(|k| RateEntry {
                    flow: k * 3 + (seed % 7) as u32,
                    src: k % 8,
                    dst: (k + 1) % 8,
                    rate: 1_000_000 + seed * 17 + k as u64,
                })
                .collect(),
        }
    }

    fn write_log(n: u64) -> (Vec<u8>, Vec<(usize, usize)>) {
        let mut w = EventLogWriter::new(Vec::new(), &header(0, ChainDigest::ZERO)).unwrap();
        let mut ranges = Vec::new();
        for i in 0..n {
            let before = w.bytes_written() as usize;
            w.append_round(&record(i, i * 11 + 3)).unwrap();
            ranges.push((before, w.bytes_written() as usize));
            if i % 4 == 3 {
                w.append_snapshot(i + 1, &[7u8; 32]).unwrap();
            }
        }
        (w.into_inner().unwrap(), ranges)
    }

    #[test]
    fn chain_advance_depends_on_prev_and_payload() {
        let d0 = ChainDigest::ZERO.advance(b"a");
        let d1 = ChainDigest::ZERO.advance(b"b");
        assert_ne!(d0, d1);
        assert_ne!(d0.advance(b"x"), d1.advance(b"x"));
        // Length word prevents trivial extension aliasing.
        assert_ne!(
            ChainDigest::ZERO.advance(b"ab").advance(b""),
            ChainDigest::ZERO.advance(b"a").advance(b"b")
        );
        assert_eq!(d0, ChainDigest::ZERO.advance(b"a"));
        assert_eq!(d0.to_hex().len(), 32);
    }

    #[test]
    fn write_then_verify_roundtrips() {
        let (bytes, _) = write_log(13);
        let s = verify(&bytes[..]).unwrap();
        assert_eq!(s.rounds, 13);
        assert_eq!(s.snapshots, 3);
        assert_eq!(s.start_round, 0);
        let idx = index_log(&bytes).unwrap();
        assert_eq!(idx.rounds.len(), 13);
        assert_eq!(idx.rounds.last().unwrap().digest, s.digest);
        let rec = idx.read_round(&bytes, &idx.rounds[7]).unwrap();
        assert_eq!(rec, record(7, 7 * 11 + 3));
        // Snapshot refs carry the digest entering their round.
        let snap = &idx.snapshots[0];
        assert_eq!(snap.round, 4);
        assert_eq!(snap.digest, idx.rounds[3].digest);
        assert_eq!(snap.blob, vec![7u8; 32]);
    }

    #[test]
    fn writer_rejects_non_contiguous_rounds() {
        let mut w = EventLogWriter::new(Vec::new(), &header(5, ChainDigest::of(b"x"))).unwrap();
        let err = w.append_round(&record(7, 1)).unwrap_err();
        assert!(matches!(err, LogError::Malformed(_)), "{err}");
        w.append_round(&record(5, 1)).unwrap();
    }

    #[test]
    fn identical_logs_diff_clean() {
        let (a, _) = write_log(9);
        let (b, _) = write_log(9);
        let d = diff_logs(&a, &b).unwrap();
        assert_eq!(d.first_divergent_round, None);
        assert_eq!(d.compared, 9);
        assert!(d.render().contains("no divergence"));
    }

    #[test]
    fn perturbed_round_is_pinpointed_with_fields() {
        let mk = |perturb_at: Option<u64>| {
            let mut w = EventLogWriter::new(Vec::new(), &header(0, ChainDigest::ZERO)).unwrap();
            for i in 0..20 {
                let mut rec = record(i, i);
                if perturb_at == Some(i) {
                    rec.entries[0].rate += 1;
                }
                w.append_round(&rec).unwrap();
            }
            w.into_inner().unwrap()
        };
        let a = mk(None);
        let b = mk(Some(11));
        let d = diff_logs(&a, &b).unwrap();
        assert_eq!(d.first_divergent_round, Some(11));
        assert_eq!(d.fields.len(), 1);
        assert!(d.fields[0].field.contains("flow"), "{:?}", d.fields);
        assert!(d.fields[0].field.contains("port"), "{:?}", d.fields);
    }

    #[test]
    fn resumed_log_aligns_with_full_log() {
        let (full, _) = write_log(16);
        let idx = index_log(&full).unwrap();
        // Pretend we resumed after round 8: a log seeded at the stored
        // digest whose records equal the full log's suffix.
        let seed = idx.rounds[7].digest;
        let mut w = EventLogWriter::new(Vec::new(), &header(8, seed)).unwrap();
        for i in 8..16 {
            w.append_round(&record(i, i * 11 + 3)).unwrap();
        }
        let resumed = w.into_inner().unwrap();
        let d = diff_logs(&full, &resumed).unwrap();
        assert_eq!(d.first_divergent_round, None);
        assert_eq!(d.compared, 8);
    }

    #[test]
    fn trailing_rounds_are_length_difference_not_divergence() {
        let (a, _) = write_log(12);
        let (b, _) = write_log(9);
        let d = diff_logs(&a, &b).unwrap();
        assert_eq!(d.first_divergent_round, None);
        assert_eq!(d.only_in_a, 3);
        assert_eq!(d.only_in_b, 0);
    }

    proptest! {
        /// encode → decode → re-encode is byte-identical.
        #[test]
        fn round_record_roundtrips(
            round in 0u64..1_000_000,
            now in 0u64..u64::MAX / 2,
            active in 0u32..10_000,
            raw in proptest::collection::vec((0u32..50_000, 0u32..1_000, 0u32..1_000, 1u64..u64::MAX / 2), 0..40),
        ) {
            let rec = RoundRecord {
                round,
                now_ns: now,
                active,
                entries: raw.iter().map(|&(flow, src, dst, rate)| RateEntry { flow, src, dst, rate }).collect(),
            };
            let bytes = rec.canonical_bytes();
            let dec = RoundRecord::decode(&bytes).unwrap();
            prop_assert_eq!(&dec.canonical_bytes(), &bytes);
            // And decoding is stable: canonical in, canonical out.
            prop_assert_eq!(RoundRecord::decode(&dec.canonical_bytes()).unwrap(), dec);
        }

        /// Any single corrupted byte inside a round frame fails
        /// verification at exactly that round's index.
        #[test]
        fn corruption_is_detected_at_the_right_round(
            n_rounds in 2u64..24,
            pick in 0u64..u64::MAX,
            bitflip in 0u8..8,
        ) {
            let (mut bytes, ranges) = write_log(n_rounds);
            let victim = (pick % n_rounds) as usize;
            let (lo, hi) = ranges[victim];
            let off = lo + (pick as usize / 7) % (hi - lo);
            bytes[off] ^= 1 << bitflip;
            let err = verify(&bytes[..]).expect_err("corruption went undetected");
            match err {
                LogError::Corrupt { round, .. } => prop_assert_eq!(round, victim as u64),
                other => prop_assert!(false, "unexpected error {:?}", other),
            }
        }

        /// The streaming verifier and the in-memory indexer agree on
        /// round counts and final digests for clean logs.
        #[test]
        fn verify_and_index_agree(n_rounds in 0u64..32) {
            let (bytes, _) = write_log(n_rounds);
            let s = verify(&bytes[..]).unwrap();
            let idx = index_log(&bytes).unwrap();
            prop_assert_eq!(s.rounds, idx.rounds.len() as u64);
            if let Some(last) = idx.rounds.last() {
                prop_assert_eq!(s.digest, last.digest);
            }
        }
    }
}
