//! Percentiles, means, and CDFs.
//!
//! The paper reports medians, P10/P90 error bars (Fig 9), and CDFs
//! (Figs 2, 3, 13, 15). These helpers use the nearest-rank definition on
//! a sorted copy, which is stable, deterministic, and matches how the
//! coflowsim-era evaluations computed their numbers.

/// Nearest-rank percentile (`p` in `[0, 100]`) of `samples`.
/// Returns `None` on an empty slice. Not-a-number samples are skipped
/// (they cannot be ordered meaningfully); if *every* sample is NaN the
/// result is `None`. A release-mode sweep must never abort because one
/// wall-clock division produced a NaN.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    debug_assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    if p <= 0.0 {
        return Some(sorted[0]);
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Median (P50).
pub fn median(samples: &[f64]) -> Option<f64> {
    percentile(samples, 50.0)
}

/// Arithmetic mean.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Population standard deviation.
pub fn stddev(samples: &[f64]) -> Option<f64> {
    let m = mean(samples)?;
    let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64;
    Some(var.sqrt())
}

/// `(value, cumulative fraction)` points of the empirical CDF — one per
/// sample, suitable for plotting or for reading off "X % of CoFlows had
/// deviation under Y".
/// NaN samples are skipped, mirroring [`percentile`].
pub fn cdf_points(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, (i + 1) as f64 / n))
        .collect()
}

/// Fraction of samples `<= threshold` (a single CDF read-out, e.g.
/// "71 % of them had normalized FCT deviation under 10 %").
pub fn fraction_at_most(samples: &[f64], threshold: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&x| x <= threshold).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(15.0));
        assert_eq!(percentile(&v, 30.0), Some(20.0));
        assert_eq!(percentile(&v, 40.0), Some(20.0));
        assert_eq!(percentile(&v, 50.0), Some(35.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(median(&[3.0]), Some(3.0));
    }

    /// One bad wall-clock sample must not kill a sweep report: NaN
    /// samples are dropped, all-NaN input yields `None` / empty output,
    /// and the surviving samples produce the usual answers.
    #[test]
    fn nan_samples_are_skipped_not_fatal() {
        let v = [2.0, f64::NAN, 1.0, 3.0, f64::NAN];
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        assert_eq!(percentile(&v, 100.0), Some(3.0));
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), None);
        let pts = cdf_points(&v);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].0, 1.0);
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(cdf_points(&[f64::NAN]).is_empty());
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_shape() {
        let pts = cdf_points(&[3.0, 1.0, 2.0]);
        assert_eq!(pts, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
        assert_eq!(fraction_at_most(&[3.0, 1.0, 2.0], 2.0), 2.0 / 3.0);
        assert_eq!(fraction_at_most(&[], 1.0), 0.0);
    }

    proptest! {
        /// Percentile is monotone in p and bounded by min/max.
        #[test]
        fn percentile_monotone(mut v in proptest::collection::vec(-1e9f64..1e9, 1..100),
                               p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile(&v, lo).unwrap();
            let b = percentile(&v, hi).unwrap();
            prop_assert!(a <= b);
            v.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert!(a >= v[0] && b <= v[v.len() - 1]);
        }

        /// The CDF is a nondecreasing step function ending at 1.
        #[test]
        fn cdf_is_monotone(v in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let pts = cdf_points(&v);
            for w in pts.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
                prop_assert!(w[0].1 <= w[1].1);
            }
            prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        }
    }
}
