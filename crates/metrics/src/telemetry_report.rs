//! End-of-run telemetry rendering: turns a [`Telemetry`] handle (and a
//! policy's [`MechCounters`]) into the harness's standard [`Table`]s,
//! plus the one-line per-policy mechanism breakdown `repro trace`
//! prints (e.g. "saath: 412 queue transitions, 9 deadline rescues,
//! 3.1% stale heap pops").

use crate::table::Table;
use saath_telemetry::{Hist, MechCounters, Telemetry};

fn hist_cells(name: &str, h: &Hist) -> [String; 5] {
    [
        name.to_string(),
        h.count.to_string(),
        h.min.to_string(),
        format!("{:.1}", h.mean()),
        h.max.to_string(),
    ]
}

/// Renders the engine-side counters and histograms as one table.
pub fn engine_table(policy: &str, tele: &Telemetry) -> Table {
    let mut t = Table::new(
        format!("engine telemetry — {policy}"),
        &["counter", "count", "min", "mean", "max"],
    );
    for (name, v) in tele.counter_rows() {
        // Counters have no distribution; fill the stat columns with "-".
        t.row(&[
            name.to_string(),
            v.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    t.row(&[
        "stale_pop_ratio".to_string(),
        format!("{:.3}", tele.stale_pop_ratio()),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    for (name, h) in [
        ("dirty_set_size", &tele.dirty_set),
        ("heap_len", &tele.heap_len),
        ("active_coflows", &tele.active_coflows),
        ("round_wall_ns", &tele.round_wall_ns),
        ("sync_round_ns", &tele.sync_round_ns),
    ] {
        if h.count > 0 {
            t.row(&hist_cells(name, h));
        }
    }
    t
}

/// Renders a policy's mechanism counters (paper levers D1–D5).
pub fn mech_table(policy: &str, mech: &MechCounters) -> Table {
    let mut t = Table::new(
        format!("mechanism counters — {policy}"),
        &["mechanism", "count"],
    );
    for (name, v) in mech.rows() {
        t.row(&[name.to_string(), v.to_string()]);
    }
    t
}

/// The one-line per-policy breakdown `repro trace` prints.
pub fn mech_breakdown_line(policy: &str, mech: &MechCounters, tele: &Telemetry) -> String {
    format!(
        "{policy}: {} queue transitions, {} deadline rescues, {} gang rejections, \
         {} wc backfills, {:.1}% stale heap pops, mean dirty set {:.1}",
        mech.queue_transitions,
        mech.deadline_expiries,
        mech.gang_rejections,
        mech.wc_backfills,
        tele.stale_pop_ratio() * 100.0,
        tele.dirty_set.mean(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use saath_telemetry::Counter;

    #[test]
    fn tables_render_without_samples() {
        let tele = Telemetry::new();
        let t = engine_table("saath", &tele);
        let txt = t.render();
        assert!(txt.contains("heap_pushes"));
        assert!(txt.contains("stale_pop_ratio"));
        // Histograms with no samples are omitted.
        assert!(!txt.contains("round_wall_ns"));

        let m = mech_table("saath", &MechCounters::default());
        assert!(m.render().contains("queue_transitions"));
    }

    #[test]
    fn breakdown_line_mentions_the_mechanisms() {
        let mut tele = Telemetry::new();
        tele.incr(Counter::HeapPopStale);
        tele.incr(Counter::HeapPopCurrent);
        let mech = MechCounters {
            queue_transitions: 412,
            deadline_expiries: 9,
            ..Default::default()
        };
        let line = mech_breakdown_line("saath", &mech, &tele);
        assert!(line.starts_with("saath: 412 queue transitions, 9 deadline rescues"));
        if saath_telemetry::enabled() {
            assert!(line.contains("50.0% stale heap pops"));
        }
    }
}
