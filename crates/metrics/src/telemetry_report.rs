//! End-of-run telemetry rendering: turns a [`Telemetry`] handle (and a
//! policy's [`MechCounters`]) into the harness's standard [`Table`]s,
//! plus the one-line per-policy mechanism breakdown `repro trace`
//! prints (e.g. "saath: 412 queue transitions, 9 deadline rescues,
//! 3.1% stale heap pops") and the event-log summary line.

use crate::table::Table;
use saath_telemetry::{Counter, Hist, LogHist, MechCounters, Telemetry};

fn hist_cells(name: &str, h: &Hist) -> [String; 6] {
    [
        name.to_string(),
        h.count.to_string(),
        h.min.to_string(),
        format!("{:.1}", h.mean()),
        h.max.to_string(),
        "-".into(),
    ]
}

fn loghist_cells(name: &str, h: &LogHist) -> [String; 6] {
    [
        name.to_string(),
        h.count.to_string(),
        h.p50().to_string(),
        format!("{:.1}", h.mean()),
        h.max.to_string(),
        h.p99().to_string(),
    ]
}

/// Renders the engine-side counters and histograms as one table.
///
/// Set-size histograms ([`Hist`]) report count/min/mean/max;
/// wall-time histograms ([`LogHist`]) report count/p50/mean/max/p99
/// (the `min` column doubles as p50 — the header names both).
pub fn engine_table(policy: &str, tele: &Telemetry) -> Table {
    let mut t = Table::new(
        format!("engine telemetry — {policy}"),
        &["counter", "count", "min|p50", "mean", "max", "p99"],
    );
    for (name, v) in tele.counter_rows() {
        // Counters have no distribution; fill the stat columns with "-".
        t.row(&[
            name.to_string(),
            v.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    t.row(&[
        "stale_pop_ratio".to_string(),
        format!("{:.3}", tele.stale_pop_ratio()),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    for (name, h) in [
        ("dirty_set_size", &tele.dirty_set),
        ("heap_len", &tele.heap_len),
        ("active_coflows", &tele.active_coflows),
    ] {
        if h.count > 0 {
            t.row(&hist_cells(name, h));
        }
    }
    for (name, h) in [
        ("round_wall_ns", &tele.round_wall_ns),
        ("sync_round_ns", &tele.sync_round_ns),
    ] {
        if h.count > 0 {
            t.row(&loghist_cells(name, h));
        }
    }
    for (name, h) in tele.spans.rows() {
        t.row(&loghist_cells(&format!("span:{name}"), h));
    }
    t
}

/// Renders a per-phase latency table (p50/p90/p99/max in
/// milliseconds, plus sample count) from any span profiler — the
/// scheduler's `SchedTimings::spans` or a `Telemetry`'s engine spans.
pub fn phase_table(title: &str, spans: &saath_telemetry::SpanProfiler) -> Table {
    let mut t = Table::new(
        format!("phase latency — {title}"),
        &["phase", "count", "p50 ms", "p90 ms", "p99 ms", "max ms"],
    );
    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    for (name, h) in spans.rows() {
        t.row(&[
            name.to_string(),
            h.count.to_string(),
            ms(h.p50()),
            ms(h.p90()),
            ms(h.p99()),
            ms(h.max),
        ]);
    }
    t
}

/// Renders a policy's mechanism counters (paper levers D1–D5).
pub fn mech_table(policy: &str, mech: &MechCounters) -> Table {
    let mut t = Table::new(
        format!("mechanism counters — {policy}"),
        &["mechanism", "count"],
    );
    for (name, v) in mech.rows() {
        t.row(&[name.to_string(), v.to_string()]);
    }
    t
}

/// The one-line per-policy breakdown `repro trace` prints.
pub fn mech_breakdown_line(policy: &str, mech: &MechCounters, tele: &Telemetry) -> String {
    format!(
        "{policy}: {} queue transitions, {} deadline rescues, {} gang rejections, \
         {} wc backfills, {:.1}% stale heap pops, mean dirty set {:.1}",
        mech.queue_transitions,
        mech.deadline_expiries,
        mech.gang_rejections,
        mech.wc_backfills,
        tele.stale_pop_ratio() * 100.0,
        tele.dirty_set.mean(),
    )
}

/// The one-line event-log summary `repro trace` prints under the
/// mechanism breakdown: the four event-log counters plus the stale-pop
/// ratio, so log overhead and heap health are visible without the full
/// engine table.
pub fn eventlog_line(policy: &str, tele: &Telemetry) -> String {
    format!(
        "{policy}: eventlog {} rounds appended, {} bytes written, {} snapshots, \
         {} chain verifies, {:.1}% stale heap pops",
        tele.counter(Counter::LogRoundsAppended),
        tele.counter(Counter::LogBytesWritten),
        tele.counter(Counter::LogSnapshots),
        tele.counter(Counter::LogChainVerifies),
        tele.stale_pop_ratio() * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use saath_telemetry::{Counter, Phase};

    #[test]
    fn tables_render_without_samples() {
        let tele = Telemetry::new();
        let t = engine_table("saath", &tele);
        let txt = t.render();
        assert!(txt.contains("heap_pushes"));
        assert!(txt.contains("stale_pop_ratio"));
        // The event-log counters are first-class rows.
        assert!(txt.contains("log_rounds_appended"));
        assert!(txt.contains("log_bytes_written"));
        assert!(txt.contains("log_snapshots"));
        assert!(txt.contains("log_chain_verifies"));
        // Histograms with no samples are omitted.
        assert!(!txt.contains("round_wall_ns"));

        let m = mech_table("saath", &MechCounters::default());
        assert!(m.render().contains("queue_transitions"));
    }

    #[test]
    fn engine_table_shows_wall_time_percentiles() {
        let mut tele = Telemetry::new();
        for v in [1_000u64, 2_000, 4_000] {
            tele.round_wall_ns.observe(v);
        }
        tele.spans.observe(Phase::EngineViewSync, 10_000);
        let txt = engine_table("saath", &tele).render();
        assert!(txt.contains("round_wall_ns"));
        assert!(txt.contains("span:engine_view_sync"));
    }

    #[test]
    fn phase_table_renders_ms_columns() {
        let mut spans = saath_telemetry::SpanProfiler::new();
        spans.observe(Phase::SchedTotal, 2_000_000); // 2 ms
        spans.observe(Phase::SchedOrder, 500_000);
        let txt = phase_table("saath", &spans).render();
        assert!(txt.contains("sched_total"));
        assert!(txt.contains("sched_order"));
        assert!(txt.contains("p99 ms"));
    }

    #[test]
    fn breakdown_line_mentions_the_mechanisms() {
        let mut tele = Telemetry::new();
        tele.incr(Counter::HeapPopStale);
        tele.incr(Counter::HeapPopCurrent);
        let mech = MechCounters {
            queue_transitions: 412,
            deadline_expiries: 9,
            ..Default::default()
        };
        let line = mech_breakdown_line("saath", &mech, &tele);
        assert!(line.starts_with("saath: 412 queue transitions, 9 deadline rescues"));
        if saath_telemetry::enabled() {
            assert!(line.contains("50.0% stale heap pops"));
        }
    }

    #[test]
    fn eventlog_line_surfaces_all_four_counters() {
        let mut tele = Telemetry::new();
        tele.add(Counter::LogRoundsAppended, 12);
        tele.add(Counter::LogBytesWritten, 3456);
        tele.add(Counter::LogSnapshots, 2);
        tele.incr(Counter::LogChainVerifies);
        let line = eventlog_line("saath", &tele);
        if saath_telemetry::enabled() {
            assert!(line.contains("12 rounds appended"));
            assert!(line.contains("3456 bytes written"));
            assert!(line.contains("2 snapshots"));
            assert!(line.contains("1 chain verifies"));
        } else {
            assert!(line.contains("0 rounds appended"));
        }
    }
}
