//! Table 1 — binning CoFlows by total size and width.
//!
//! | | width ≤ 10 | width > 10 |
//! |---------------|------------|------------|
//! | size ≤ 100 MB | bin-1 | bin-2 |
//! | size > 100 MB | bin-3 | bin-4 |
//!
//! Figs 11 and 12 break the per-bin median speedup down along these
//! bins; the same classification is reused by the workload generators.

use crate::record::CoflowRecord;
use saath_simcore::Bytes;
use serde::{Deserialize, Serialize};

/// Table 1's width boundary.
pub const WIDTH_SPLIT: usize = 10;
/// Table 1's size boundary.
pub const SIZE_SPLIT: Bytes = Bytes::mb(100);

/// One of the four Table-1 bins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bin {
    /// size ≤ 100 MB, width ≤ 10 — *short and thin*, the bulk of real
    /// traces and the biggest LCoF beneficiary.
    ShortNarrow,
    /// size ≤ 100 MB, width > 10.
    ShortWide,
    /// size > 100 MB, width ≤ 10.
    LongNarrow,
    /// size > 100 MB, width > 10.
    LongWide,
}

impl Bin {
    /// All bins in Table-1 order (bin-1 … bin-4).
    pub const ALL: [Bin; 4] = [
        Bin::ShortNarrow,
        Bin::ShortWide,
        Bin::LongNarrow,
        Bin::LongWide,
    ];

    /// The paper's label ("bin-1" … "bin-4").
    pub fn label(self) -> &'static str {
        match self {
            Bin::ShortNarrow => "bin-1",
            Bin::ShortWide => "bin-2",
            Bin::LongNarrow => "bin-3",
            Bin::LongWide => "bin-4",
        }
    }
}

/// Classifies by raw size and width.
pub fn classify(total: Bytes, width: usize) -> Bin {
    match (total > SIZE_SPLIT, width > WIDTH_SPLIT) {
        (false, false) => Bin::ShortNarrow,
        (false, true) => Bin::ShortWide,
        (true, false) => Bin::LongNarrow,
        (true, true) => Bin::LongWide,
    }
}

/// Classifies a result record.
pub fn bin_of(r: &CoflowRecord) -> Bin {
    classify(r.total_bytes, r.width)
}

/// Splits `(bin, value)` pairs into the four per-bin sample vectors, in
/// Table-1 order, together with each bin's fraction of the population
/// (the x-label percentages of Fig 11).
pub fn group_by_bin(pairs: &[(Bin, f64)]) -> [(Vec<f64>, f64); 4] {
    let mut groups: [Vec<f64>; 4] = Default::default();
    for (bin, v) in pairs {
        let idx = Bin::ALL.iter().position(|b| b == bin).unwrap();
        groups[idx].push(*v);
    }
    let total = pairs.len().max(1) as f64;
    let fracs: Vec<f64> = groups.iter().map(|g| g.len() as f64 / total).collect();
    let mut it = groups.into_iter().zip(fracs);
    std::array::from_fn(|_| it.next().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_inclusive_below() {
        assert_eq!(classify(Bytes::mb(100), 10), Bin::ShortNarrow);
        assert_eq!(classify(Bytes::mb(100) + Bytes(1), 10), Bin::LongNarrow);
        assert_eq!(classify(Bytes::mb(100), 11), Bin::ShortWide);
        assert_eq!(classify(Bytes::gb(1), 500), Bin::LongWide);
    }

    #[test]
    fn labels() {
        assert_eq!(Bin::ShortNarrow.label(), "bin-1");
        assert_eq!(Bin::LongWide.label(), "bin-4");
        assert_eq!(Bin::ALL.len(), 4);
    }

    #[test]
    fn grouping_preserves_mass() {
        let pairs = vec![
            (Bin::ShortNarrow, 1.0),
            (Bin::ShortNarrow, 2.0),
            (Bin::LongWide, 3.0),
        ];
        let groups = group_by_bin(&pairs);
        assert_eq!(groups[0].0, vec![1.0, 2.0]);
        assert!((groups[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(groups[1].0.len(), 0);
        assert_eq!(groups[3].0, vec![3.0]);
        let total_frac: f64 = groups.iter().map(|g| g.1).sum();
        assert!((total_frac - 1.0).abs() < 1e-12);
    }
}
