//! # saath-metrics
//!
//! The evaluation toolbox of the Saath reproduction: per-CoFlow result
//! records, percentile/CDF statistics, speedup distributions, the
//! paper's Table-1 size×width binning, the normalized FCT-deviation
//! analysis of §2.3, and plain-text/CSV table rendering for the
//! reproduction harness.
//!
//! Everything operates on [`CoflowRecord`]s — what one simulator or
//! testbed run says about one CoFlow — so the same analysis code serves
//! simulations, the runtime emulation, and unit tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bins;
pub mod deviation;
pub mod record;
pub mod speedup;
pub mod stats;
pub mod table;
pub mod telemetry_report;

pub use bins::{bin_of, Bin};
pub use record::CoflowRecord;
pub use speedup::{speedups, SpeedupSummary};
pub use stats::{cdf_points, mean, median, percentile};
pub use telemetry_report::{
    engine_table, eventlog_line, mech_breakdown_line, mech_table, phase_table,
};
