//! Per-CoFlow result records.

use saath_simcore::{Bytes, CoflowId, Duration, JobId, Time};
use serde::{Deserialize, Serialize};

/// Everything one run (simulation or testbed emulation) reports about
/// one completed CoFlow.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoflowRecord {
    /// The CoFlow.
    pub id: CoflowId,
    /// Its job, if the workload models jobs (Fig 16).
    pub job: Option<JobId>,
    /// When it registered with the coordinator.
    pub arrival: Time,
    /// When it became runnable (equals `arrival` unless DAG dependencies
    /// delayed it).
    pub released: Time,
    /// When its last flow completed.
    pub finish: Time,
    /// Number of flows (the paper's *width*).
    pub width: usize,
    /// Ground-truth total volume (the paper's *size*).
    pub total_bytes: Bytes,
    /// Per-flow completion times, measured from `released` — the FCTs
    /// whose per-CoFlow deviation §2.3 analyzes.
    pub flow_fcts: Vec<Duration>,
    /// Per-flow ground-truth sizes, parallel to `flow_fcts`.
    pub flow_sizes: Vec<Bytes>,
}

impl CoflowRecord {
    /// CoFlow completion time: "the time duration between when the first
    /// flow arrives and the last flow completes" (§2.1). With pipelined
    /// release, the clock starts at `released`.
    pub fn cct(&self) -> Duration {
        self.finish.since(self.released)
    }

    /// Whether all flows have equal ground-truth size (Figs 2c and 13
    /// split on this).
    pub fn has_equal_flows(&self) -> bool {
        match self.flow_sizes.first() {
            None => true,
            Some(first) => self.flow_sizes.iter().all(|s| s == first),
        }
    }
}

/// Pairs the records of two runs over the same trace by CoFlow id,
/// returning `(id, record_a, record_b)` for CoFlows present in both.
/// Records missing from either side are skipped (e.g. a run truncated
/// by a horizon).
pub fn join_runs<'a>(
    a: &'a [CoflowRecord],
    b: &'a [CoflowRecord],
) -> Vec<(CoflowId, &'a CoflowRecord, &'a CoflowRecord)> {
    use std::collections::HashMap;
    let bmap: HashMap<CoflowId, &CoflowRecord> = b.iter().map(|r| (r.id, r)).collect();
    a.iter()
        .filter_map(|ra| bmap.get(&ra.id).map(|rb| (ra.id, ra, *rb)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn rec(id: u32, released_ms: u64, finish_ms: u64) -> CoflowRecord {
        CoflowRecord {
            id: CoflowId(id),
            job: None,
            arrival: Time::from_millis(released_ms),
            released: Time::from_millis(released_ms),
            finish: Time::from_millis(finish_ms),
            width: 1,
            total_bytes: Bytes::mb(1),
            flow_fcts: vec![Duration::from_millis(finish_ms - released_ms)],
            flow_sizes: vec![Bytes::mb(1)],
        }
    }

    #[test]
    fn cct_is_finish_minus_release() {
        let r = rec(0, 100, 350);
        assert_eq!(r.cct(), Duration::from_millis(250));
    }

    #[test]
    fn equal_flow_detection() {
        let mut r = rec(0, 0, 10);
        r.flow_sizes = vec![Bytes::mb(2), Bytes::mb(2)];
        assert!(r.has_equal_flows());
        r.flow_sizes = vec![Bytes::mb(2), Bytes::mb(3)];
        assert!(!r.has_equal_flows());
    }

    #[test]
    fn join_matches_by_id_and_skips_missing() {
        let a = vec![rec(0, 0, 10), rec(1, 0, 20), rec(2, 0, 30)];
        let b = vec![rec(1, 0, 5), rec(0, 0, 40)];
        let joined = join_runs(&a, &b);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].0, CoflowId(0));
        assert_eq!(joined[0].2.finish, Time::from_millis(40));
        assert_eq!(joined[1].0, CoflowId(1));
    }
}
