//! The out-of-sync analysis of §2.3 (Figs 2 and 13).
//!
//! For each multi-flow CoFlow, the paper measures the standard deviation
//! of its flows' completion times, normalized by their mean — a direct
//! readout of how far out of sync the flows finished. The same statistic
//! over ground-truth flow *lengths* (Fig 2b) separates inherent
//! unevenness from scheduler-induced skew.

use crate::record::CoflowRecord;
use crate::stats::{mean, stddev};

/// `stddev / mean` of a sample set; `None` for fewer than two samples or
/// a zero mean.
pub fn normalized_deviation(samples: &[f64]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    let m = mean(samples)?;
    if m <= 0.0 {
        return None;
    }
    Some(stddev(samples)? / m)
}

/// Normalized FCT deviation of one CoFlow (Fig 2c / Fig 13), `None`
/// for single-flow CoFlows (the paper excludes them).
pub fn fct_deviation(r: &CoflowRecord) -> Option<f64> {
    let fcts: Vec<f64> = r.flow_fcts.iter().map(|d| d.as_nanos() as f64).collect();
    normalized_deviation(&fcts)
}

/// Normalized flow-*length* deviation of one CoFlow (Fig 2b).
pub fn length_deviation(r: &CoflowRecord) -> Option<f64> {
    let sizes: Vec<f64> = r.flow_sizes.iter().map(|s| s.as_u64() as f64).collect();
    normalized_deviation(&sizes)
}

/// The two populations Figs 2c and 13 plot: normalized FCT deviations of
/// multi-flow CoFlows, split into (equal-flow-length, unequal).
pub fn fct_deviation_split(records: &[CoflowRecord]) -> (Vec<f64>, Vec<f64>) {
    let mut equal = Vec::new();
    let mut unequal = Vec::new();
    for r in records {
        if let Some(d) = fct_deviation(r) {
            if r.has_equal_flows() {
                equal.push(d);
            } else {
                unequal.push(d);
            }
        }
    }
    (equal, unequal)
}

/// Average per-CoFlow CCT deviation of `test` records against `oracle`
/// records: mean over id-matched CoFlows of `|cct_t − cct_o| / cct_o`.
/// The partitioned-sharding sweep's quality metric — 0.0 iff every
/// matched CoFlow finishes at exactly the oracle's time (e.g. the S=0
/// replicated mode). `None` when no CoFlow matches by id or an oracle
/// CCT is zero-length.
pub fn avg_cct_deviation(oracle: &[CoflowRecord], test: &[CoflowRecord]) -> Option<f64> {
    // Records are sorted by id (both sides come out of the same
    // engine), so a merge walk matches them without hashing.
    let mut sum = 0.0f64;
    let mut n = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < oracle.len() && j < test.len() {
        let (a, b) = (&oracle[i], &test[j]);
        match a.id.cmp(&b.id) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let co = a.cct().as_nanos() as f64;
                let ct = b.cct().as_nanos() as f64;
                if co <= 0.0 {
                    return None;
                }
                sum += (ct - co).abs() / co;
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saath_simcore::{Bytes, CoflowId, Duration, Time};

    fn rec(fcts_ms: &[u64], sizes_mb: &[u64]) -> CoflowRecord {
        CoflowRecord {
            id: CoflowId(0),
            job: None,
            arrival: Time::ZERO,
            released: Time::ZERO,
            finish: Time::from_millis(*fcts_ms.iter().max().unwrap_or(&0)),
            width: fcts_ms.len(),
            total_bytes: Bytes::mb(sizes_mb.iter().sum()),
            flow_fcts: fcts_ms.iter().map(|&m| Duration::from_millis(m)).collect(),
            flow_sizes: sizes_mb.iter().map(|&m| Bytes::mb(m)).collect(),
        }
    }

    #[test]
    fn perfectly_synced_flows_have_zero_deviation() {
        let r = rec(&[100, 100, 100], &[1, 1, 1]);
        assert_eq!(fct_deviation(&r), Some(0.0));
        assert_eq!(length_deviation(&r), Some(0.0));
    }

    #[test]
    fn out_of_sync_flows_have_positive_deviation() {
        // Flows finishing at t and 2t: mean 1.5t, stddev 0.5t → 1/3.
        let r = rec(&[100, 200], &[1, 1]);
        let d = fct_deviation(&r).unwrap();
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_flow_coflows_are_excluded() {
        let r = rec(&[100], &[1]);
        assert_eq!(fct_deviation(&r), None);
        assert_eq!(normalized_deviation(&[]), None);
        assert_eq!(normalized_deviation(&[0.0, 0.0]), None, "zero mean");
    }

    #[test]
    fn avg_cct_deviation_matches_by_id() {
        let mut o1 = rec(&[100, 100], &[1, 1]);
        o1.id = CoflowId(1);
        let mut o2 = rec(&[200], &[2]);
        o2.id = CoflowId(2);
        // Identical records → zero deviation.
        assert_eq!(
            avg_cct_deviation(&[o1.clone(), o2.clone()], &[o1.clone(), o2.clone()]),
            Some(0.0)
        );
        // CoFlow 2 finishes 50% late; CoFlow 1 on time → mean 0.25.
        let mut t2 = o2.clone();
        t2.finish = Time::from_millis(300);
        let d = avg_cct_deviation(&[o1.clone(), o2], &[o1, t2]).unwrap();
        assert!((d - 0.25).abs() < 1e-12);
        // Disjoint ids → no matches.
        assert_eq!(avg_cct_deviation(&[], &[]), None);
    }

    #[test]
    fn split_separates_equal_and_unequal() {
        let records = vec![
            rec(&[100, 100], &[1, 1]), // equal lengths, synced
            rec(&[100, 300], &[1, 5]), // unequal lengths
            rec(&[100], &[1]),         // single flow: dropped
        ];
        let (eq, uneq) = fct_deviation_split(&records);
        assert_eq!(eq.len(), 1);
        assert_eq!(uneq.len(), 1);
        assert_eq!(eq[0], 0.0);
        assert!(uneq[0] > 0.4);
    }
}
