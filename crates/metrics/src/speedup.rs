//! Per-CoFlow speedup distributions.
//!
//! §6.1: "We define the *speedup* using Saath as the ratio of the CCT
//! under other policy to the CCT under Saath for individual CoFlows."
//! [`speedups`] computes exactly that over a pair of runs, and
//! [`SpeedupSummary`] carries the median and the P10/P90 error bars of
//! Fig 9, plus the overall (average-CCT) speedup Fig 3(b) reports.

use crate::record::{join_runs, CoflowRecord};
use crate::stats::{mean, percentile};
use serde::{Deserialize, Serialize};

/// Per-CoFlow speedups of `ours` relative to `baseline`:
/// `cct_baseline / cct_ours`, one entry per CoFlow present in both runs.
///
/// A zero `ours` CCT (possible only for degenerate zero-byte workloads,
/// which trace validation rejects) is skipped defensively.
pub fn speedups(baseline: &[CoflowRecord], ours: &[CoflowRecord]) -> Vec<f64> {
    join_runs(baseline, ours)
        .into_iter()
        .filter_map(|(_, b, o)| {
            let num = b.cct().as_nanos() as f64;
            let den = o.cct().as_nanos() as f64;
            (den > 0.0).then_some(num / den)
        })
        .collect()
}

/// The summary statistics the paper's bar charts report.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedupSummary {
    /// Number of CoFlows compared.
    pub n: usize,
    /// Median per-CoFlow speedup.
    pub median: f64,
    /// 10th-percentile per-CoFlow speedup (lower error bar).
    pub p10: f64,
    /// 90th-percentile per-CoFlow speedup (upper error bar).
    pub p90: f64,
    /// Average per-CoFlow speedup.
    pub mean: f64,
    /// Ratio of the *average CCTs* (the "overall CCT" of Fig 3b):
    /// `mean(baseline CCT) / mean(ours CCT)`.
    pub overall: f64,
}

impl SpeedupSummary {
    /// Computes the summary over a pair of runs. Returns `None` if the
    /// runs share no CoFlows.
    pub fn compute(baseline: &[CoflowRecord], ours: &[CoflowRecord]) -> Option<SpeedupSummary> {
        let joined = join_runs(baseline, ours);
        if joined.is_empty() {
            return None;
        }
        let per: Vec<f64> = speedups(baseline, ours);
        let base_ccts: Vec<f64> = joined
            .iter()
            .map(|(_, b, _)| b.cct().as_nanos() as f64)
            .collect();
        let our_ccts: Vec<f64> = joined
            .iter()
            .map(|(_, _, o)| o.cct().as_nanos() as f64)
            .collect();
        Some(SpeedupSummary {
            n: per.len(),
            median: percentile(&per, 50.0)?,
            p10: percentile(&per, 10.0)?,
            p90: percentile(&per, 90.0)?,
            mean: mean(&per)?,
            overall: mean(&base_ccts)? / mean(&our_ccts)?,
        })
    }
}

impl std::fmt::Display for SpeedupSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {:.2}x (p10 {:.2}x, p90 {:.2}x, mean {:.2}x, overall {:.2}x, n={})",
            self.median, self.p10, self.p90, self.mean, self.overall, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saath_simcore::{Bytes, CoflowId, Duration, Time};

    fn rec(id: u32, cct_ms: u64) -> CoflowRecord {
        CoflowRecord {
            id: CoflowId(id),
            job: None,
            arrival: Time::ZERO,
            released: Time::ZERO,
            finish: Time::from_millis(cct_ms),
            width: 1,
            total_bytes: Bytes::mb(1),
            flow_fcts: vec![Duration::from_millis(cct_ms)],
            flow_sizes: vec![Bytes::mb(1)],
        }
    }

    #[test]
    fn per_coflow_ratios() {
        let base = vec![rec(0, 100), rec(1, 300), rec(2, 50)];
        let ours = vec![rec(0, 50), rec(1, 100), rec(2, 100)];
        let s = speedups(&base, &ours);
        assert_eq!(s, vec![2.0, 3.0, 0.5]);
    }

    #[test]
    fn summary_statistics() {
        let base = vec![rec(0, 100), rec(1, 300), rec(2, 50)];
        let ours = vec![rec(0, 50), rec(1, 100), rec(2, 100)];
        let s = SpeedupSummary::compute(&base, &ours).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.p10, 0.5);
        assert_eq!(s.p90, 3.0);
        // overall = mean(base)/mean(ours) = 150/83.33.
        assert!((s.overall - 1.8).abs() < 1e-9);
        let shown = format!("{s}");
        assert!(shown.contains("median 2.00x"));
    }

    #[test]
    fn disjoint_runs_yield_none() {
        let base = vec![rec(0, 100)];
        let ours = vec![rec(1, 100)];
        assert!(SpeedupSummary::compute(&base, &ours).is_none());
        assert!(speedups(&base, &ours).is_empty());
    }
}
