//! Plain-text and CSV table rendering for the reproduction harness.
//!
//! Every `repro` subcommand prints the rows of its paper table/figure
//! through [`Table`], so output formatting lives in exactly one place
//! and EXPERIMENTS.md can paste the results verbatim.

/// A simple column-aligned text table that can also serialize as CSV.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with a title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish: quotes fields containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as the paper writes speedups: `1.53x`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage: `23.4%`.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new("Demo", &["scheme", "median", "p90"]);
        t.row(&["saath".into(), "1.53x".into(), "4.50x".into()]);
        t.row(&["aalo".into(), "1.00x".into(), "1.00x".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("scheme  median  p90"));
        assert!(s.lines().count() == 4 + 1); // title, header, rule, 2 rows
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        Table::new("", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_x(1.534), "1.53x");
        assert_eq!(fmt_pct(0.234), "23.4%");
    }
}
