//! Integration tests of the telemetry layer under the bench crate,
//! whose `default = ["telemetry"]` turns the feature on for the whole
//! workspace build — so these see real counts. (Run the workspace with
//! `--no-default-features` for the zero-overhead configuration; the
//! assertions below degrade gracefully.)
//!
//! 1. The JSONL round trace of a small seeded FB-like workload is
//!    byte-stable across runs and matches a checked-in golden head.
//! 2. Both Saath and Aalo report nonzero mechanism counts on that
//!    workload (queue transitions, stale pops, dirty sets, …).
//! 3. Heap hygiene: under heavy rate churn (stragglers + failures) the
//!    completion heap compacts and its peak length stays bounded by the
//!    live flow population — while records stay byte-identical to the
//!    recompute-everything reference loop.

use saath_core::{Aalo, Saath};
use saath_simulator::{simulate_reference, simulate_with_telemetry, SimConfig, SimOutput};
use saath_telemetry::{Counter, Telemetry};
use saath_workload::{gen, DynamicsSpec, Trace};

/// Scaled-down FB-like workload (same preset the equivalence suite
/// uses: paper mix/bin structure, few CoFlows).
fn mini_fb(seed: u64) -> Trace {
    let cfg = gen::GenConfig {
        num_nodes: 40,
        num_coflows: 60,
        span: saath_simcore::Duration::from_secs(40),
        max_width: 1_600,
        ..gen::fb_like(seed)
    };
    gen::generate(&cfg)
}

fn instrumented_saath(trace: &Trace, dynamics: &DynamicsSpec) -> (SimOutput, Telemetry) {
    let mut tele = Telemetry::with_jsonl();
    let out = simulate_with_telemetry(
        trace,
        &mut Saath::with_defaults(),
        &SimConfig::default(),
        dynamics,
        Some(&mut tele),
    )
    .unwrap();
    (out, tele)
}

#[test]
fn jsonl_trace_is_byte_stable_and_matches_golden_head() {
    let trace = mini_fb(5);
    let (_, a) = instrumented_saath(&trace, &DynamicsSpec::none());
    let (_, b) = instrumented_saath(&trace, &DynamicsSpec::none());
    assert_eq!(a.jsonl(), b.jsonl(), "JSONL trace not byte-stable");
    if !saath_telemetry::enabled() {
        assert!(a.jsonl().is_empty());
        return;
    }
    assert!(!a.jsonl().is_empty());
    for line in a.jsonl().lines() {
        assert!(
            line.starts_with("{\"round\":") && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
    }
    // Golden head: the first 5 lines of the seed-5 trace, checked in.
    // Regenerate with `BLESS=1 cargo test -p saath-bench jsonl_trace`.
    let head: String = a
        .jsonl()
        .lines()
        .take(5)
        .map(|l| format!("{l}\n"))
        .collect();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_head.jsonl");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &head).unwrap();
    }
    let golden =
        std::fs::read_to_string(golden_path).expect("golden missing — run once with BLESS=1");
    assert_eq!(head, golden, "JSONL head drifted from the golden file");
}

#[test]
fn both_policies_report_nonzero_mechanism_counts() {
    if !saath_telemetry::enabled() {
        return; // counters are compiled-out no-ops
    }
    let trace = mini_fb(5);

    let (out, tele) = instrumented_saath(&trace, &DynamicsSpec::none());
    assert_eq!(out.unfinished, 0);
    let mut saath = Saath::with_defaults();
    let _ = simulate_with_telemetry(
        &trace,
        &mut saath,
        &SimConfig::default(),
        &DynamicsSpec::none(),
        Some(&mut Telemetry::new()),
    )
    .unwrap();
    assert!(tele.counter(Counter::SchedRounds) > 0);
    assert!(tele.counter(Counter::HeapPopStale) > 0);
    assert!(tele.dirty_set.count > 0 && tele.dirty_set.max > 0);
    assert!(saath.mech.queue_transitions > 0);
    assert!(saath.mech.gang_admissions > 0);
    assert!(saath.mech.wc_backfills > 0);
    assert!(saath.mech.lcof_comparisons > 0);
    assert!(saath.mech.madd_evals > 0);
    // Incremental contention: the dirty-set hint means most rounds are
    // delta-updates, with footprint joins/leaves actually applied.
    assert!(saath.mech.contention_deltas > 0);
    assert!(saath.mech.contention_rebuilds_avoided > 0);
    // The engine always supplies a change hint, so the only full
    // rebuild is the first round's tracker initialization (the
    // num_nodes 0 → N reset discards the hint by design).
    assert_eq!(
        saath.mech.contention_rebuilds, 1,
        "only the first round should full-rebuild"
    );
    // Probe revalidations only exist on the parallel merge path.
    if !cfg!(feature = "parallel") {
        assert_eq!(saath.mech.probe_revalidations, 0);
    }

    let mut aalo = Aalo::with_defaults();
    let mut tele = Telemetry::new();
    let out = simulate_with_telemetry(
        &trace,
        &mut aalo,
        &SimConfig::default(),
        &DynamicsSpec::none(),
        Some(&mut tele),
    )
    .unwrap();
    assert_eq!(out.unfinished, 0);
    assert!(tele.counter(Counter::HeapPopStale) > 0);
    assert!(tele.dirty_set.count > 0);
    assert!(aalo.mech.queue_transitions > 0);
    assert!(aalo.mech.lcof_comparisons > 0);
    // Aalo has no gang admission or deadline machinery.
    assert_eq!(aalo.mech.gang_admissions, 0);
    assert_eq!(aalo.mech.deadline_expiries, 0);
}

#[test]
fn heap_compaction_bounds_stale_entries_under_churn() {
    // Heavy rate churn: stragglers re-rate every flow on a node twice
    // (onset + recovery) and failures restart flows — each change
    // pushes a fresh heap entry, stranding the old one.
    let trace = mini_fb(7);
    let spec = DynamicsSpec::random(
        7,
        trace.num_nodes,
        trace.arrival_span(),
        0.30,
        saath_simcore::Duration::from_secs(10),
        1,
        10,
        0.20,
        saath_simcore::Duration::from_secs(1),
    );
    let (out, tele) = instrumented_saath(&trace, &spec);

    // Compaction must never change what the simulation computes.
    let reference = simulate_reference(
        &trace,
        &mut Saath::with_defaults(),
        &SimConfig::default(),
        &spec,
    )
    .unwrap();
    assert_eq!(out.records, reference.records);
    assert_eq!(out.end, reference.end);

    if !saath_telemetry::enabled() {
        return;
    }
    assert!(
        tele.counter(Counter::HeapCompactions) > 0,
        "churn never triggered a compaction"
    );
    // The compaction trigger (len > 64 && len > 4×flowing, checked
    // every round) bounds the heap by the live flow population, not by
    // the cumulative push count.
    let max_flowing = tele
        .jsonl()
        .lines()
        .filter_map(|l| {
            let v = l.split("\"flowing\":").nth(1)?;
            v.split(',').next()?.parse::<u64>().ok()
        })
        .max()
        .unwrap_or(0);
    assert!(max_flowing > 0);
    let bound = 64 + 6 * max_flowing;
    assert!(
        tele.heap_len.max <= bound,
        "heap peaked at {} > bound {bound} (max flowing {max_flowing})",
        tele.heap_len.max
    );
    assert!(
        tele.heap_len.max < tele.counter(Counter::HeapPush),
        "heap peak should sit well below cumulative pushes under churn"
    );
}
