//! The incremental contention tracker against the `contention_into`
//! full rebuild it replaces, under steady-state churn: every round a
//! handful of CoFlows change footprints (a flow finishes or restarts)
//! while the rest of the active set is untouched — exactly the regime
//! the engine's dirty set produces. The rebuild pays O(total flows)
//! per round regardless; the tracker pays O(changed footprints).
//!
//! Scaled by *flow* count (1k / 10k / 100k), the axis of the Fig 9
//! scalability sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use saath_core::common::{contention_into, ContentionTracker, RoundArena};
use saath_core::view::{ClusterView, CoflowView, FlowView};
use saath_simcore::{Bytes, CoflowId, DetRng, FlowId, NodeId, Time};

const NODES: usize = 150;
const WIDTH: usize = 10;
/// CoFlows whose footprint changes per round (the engine's dirty set on
/// the FB trace is this order of magnitude outside arrival bursts).
const CHURN: usize = 8;

/// `total_flows / WIDTH` CoFlows of fixed width on random ports.
fn views_with_flows(total_flows: usize) -> Vec<CoflowView> {
    let mut rng = DetRng::derive(7, "bench/contention_incremental");
    let mut next_flow = 0u32;
    (0..total_flows / WIDTH)
        .map(|i| CoflowView {
            id: CoflowId(i as u32),
            arrival: Time::from_millis(i as u64),
            flows: (0..WIDTH)
                .map(|_| {
                    let id = next_flow;
                    next_flow += 1;
                    FlowView {
                        id: FlowId(id),
                        src: NodeId(rng.below(NODES as u64) as u32),
                        dst: NodeId(rng.below(NODES as u64) as u32),
                        sent: Bytes::ZERO,
                        ready: true,
                        finished: false,
                        oracle_size: None,
                    }
                })
                .collect(),
            restarted: false,
        })
        .collect()
}

/// Toggles one flow in each of `CHURN` round-robin CoFlows (finish on
/// even visits, restart on odd), returning the changed ids. Both bench
/// arms run the identical mutation so only the recompute differs.
fn churn(views: &mut [CoflowView], round: &mut usize) -> Vec<CoflowId> {
    let n = views.len();
    let mut changed = Vec::with_capacity(CHURN);
    for j in 0..CHURN {
        let ci = (*round * CHURN + j) % n;
        let fi = (*round / n.div_ceil(CHURN).max(1)) % WIDTH;
        let f = &mut views[ci].flows[fi];
        f.finished = !f.finished;
        changed.push(views[ci].id);
    }
    *round += 1;
    changed
}

fn bench_contention_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_incremental");
    for &flows in &[1_000usize, 10_000, 100_000] {
        let views = views_with_flows(flows);

        group.bench_with_input(BenchmarkId::new("rebuild", flows), &flows, |b, _| {
            let mut views = views.clone();
            let mut arena = RoundArena::new();
            let mut k = Vec::new();
            let mut round = 0usize;
            b.iter(|| {
                let _ = churn(&mut views, &mut round);
                let view = ClusterView {
                    now: Time::ZERO,
                    num_nodes: NODES,
                    coflows: &views,
                    changed: None,
                };
                contention_into(&view, &mut arena, &mut k);
                black_box(k.len());
            });
        });

        group.bench_with_input(BenchmarkId::new("delta", flows), &flows, |b, _| {
            let mut views = views.clone();
            let mut tracker = ContentionTracker::new();
            let mut k = Vec::new();
            // Prime the tracker (first round is always a full build).
            let prime = ClusterView {
                now: Time::ZERO,
                num_nodes: NODES,
                coflows: &views,
                changed: None,
            };
            tracker.compute_into(&prime, &mut k);
            let mut round = 0usize;
            b.iter(|| {
                let changed = churn(&mut views, &mut round);
                let view = ClusterView {
                    now: Time::ZERO,
                    num_nodes: NODES,
                    coflows: &views,
                    changed: Some(&changed),
                };
                tracker.compute_into(&view, &mut k);
                black_box(k.len());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contention_incremental);
criterion_main!(benches);
