//! Table 2's latency columns as Criterion micro-benchmarks: how long
//! one coordinator scheduling round takes, per policy, as a function of
//! the number of active CoFlows. The paper reports 0.57 ms average /
//! 2.85 ms P90 for Saath on a 4-core VM with the FB trace's busy-period
//! occupancy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saath_core::view::{ClusterView, CoflowScheduler, CoflowView, FlowView, Schedule};
use saath_core::{Aalo, OfflineScheduler, Saath, SaathConfig, UcTcp};
use saath_fabric::PortBank;
use saath_simcore::{Bytes, CoflowId, DetRng, FlowId, NodeId, Rate, Time};

const NODES: usize = 150;

/// Builds a synthetic active set of `n` CoFlows resembling a busy
/// period of the FB workload (mixed widths, partial progress).
fn synth_views(n: usize, clairvoyant: bool) -> Vec<CoflowView> {
    let mut rng = DetRng::derive(42, "bench/views");
    let mut views = Vec::with_capacity(n);
    let mut next_flow = 0u32;
    for i in 0..n {
        let width = if rng.chance(0.7) {
            rng.range_inclusive(1, 8) as usize
        } else {
            rng.range_inclusive(10, 60) as usize
        };
        let flows = (0..width)
            .map(|_| {
                let id = next_flow;
                next_flow += 1;
                let size = Bytes(rng.range_inclusive(1_000_000, 2_000_000_000));
                FlowView {
                    id: FlowId(id),
                    src: NodeId(rng.below(NODES as u64) as u32),
                    dst: NodeId(rng.below(NODES as u64) as u32),
                    sent: Bytes(rng.below(size.as_u64())),
                    ready: true,
                    finished: false,
                    oracle_size: clairvoyant.then_some(size),
                }
            })
            .collect();
        views.push(CoflowView {
            id: CoflowId(i as u32),
            arrival: Time::from_millis(i as u64),
            flows,
            restarted: false,
        });
    }
    views
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_round");
    // 1000 active CoFlows is far past the FB trace's busy periods; it
    // exercises the allocation-free round at the scale where per-round
    // allocation used to dominate.
    for &n in &[10usize, 50, 200, 1000] {
        let views = synth_views(n, false);
        let views_oracle = synth_views(n, true);

        group.bench_with_input(BenchmarkId::new("saath", n), &n, |b, _| {
            let mut sched = Saath::with_defaults();
            let mut bank = PortBank::uniform(NODES, Rate::gbps(1));
            let mut out = Schedule::default();
            b.iter(|| {
                bank.reset_round();
                out.clear();
                let view = ClusterView {
                    now: Time::ZERO,
                    num_nodes: NODES,
                    coflows: &views,
                    changed: None,
                };
                sched.compute(&view, &mut bank, &mut out);
            });
        });
        group.bench_with_input(BenchmarkId::new("aalo", n), &n, |b, _| {
            let mut sched = Aalo::with_defaults();
            let mut bank = PortBank::uniform(NODES, Rate::gbps(1));
            let mut out = Schedule::default();
            b.iter(|| {
                bank.reset_round();
                out.clear();
                let view = ClusterView {
                    now: Time::ZERO,
                    num_nodes: NODES,
                    coflows: &views,
                    changed: None,
                };
                sched.compute(&view, &mut bank, &mut out);
            });
        });
        group.bench_with_input(BenchmarkId::new("uctcp", n), &n, |b, _| {
            let mut sched = UcTcp::new();
            let mut bank = PortBank::uniform(NODES, Rate::gbps(1));
            let mut out = Schedule::default();
            b.iter(|| {
                bank.reset_round();
                out.clear();
                let view = ClusterView {
                    now: Time::ZERO,
                    num_nodes: NODES,
                    coflows: &views,
                    changed: None,
                };
                sched.compute(&view, &mut bank, &mut out);
            });
        });
        group.bench_with_input(BenchmarkId::new("varys", n), &n, |b, _| {
            let mut sched = OfflineScheduler::varys();
            let mut bank = PortBank::uniform(NODES, Rate::gbps(1));
            let mut out = Schedule::default();
            b.iter(|| {
                bank.reset_round();
                out.clear();
                let view = ClusterView {
                    now: Time::ZERO,
                    num_nodes: NODES,
                    coflows: &views_oracle,
                    changed: None,
                };
                sched.compute(&view, &mut bank, &mut out);
            });
        });
    }
    group.finish();
}

/// The steady-state round — the common case the incremental order book
/// and contention tracker optimize: nothing changed since the previous
/// round (`changed: Some(&[])`), so the incremental scheduler reuses
/// cached queues, delta-updates `k_c` (no-op), and emits the
/// materialized order without re-sorting, while the full-recompute
/// configuration rebuilds and re-sorts everything from scratch.
fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state_round");
    for &n in &[200usize, 1000] {
        let views = synth_views(n, false);
        let cases: [(&str, SaathConfig, bool); 2] = [
            ("incremental", SaathConfig::default(), true),
            (
                "full_recompute",
                SaathConfig {
                    incremental_contention: false,
                    incremental_order: false,
                    ..SaathConfig::default()
                },
                false,
            ),
        ];
        for (label, cfg, hinted) in cases {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let mut sched = Saath::new(cfg.clone());
                let mut bank = PortBank::uniform(NODES, Rate::gbps(1));
                let mut out = Schedule::default();
                // Warm round (no hint): seeds the book, tracker, and
                // queue/deadline state the steady rounds reuse.
                let warm = ClusterView {
                    now: Time::ZERO,
                    num_nodes: NODES,
                    coflows: &views,
                    changed: None,
                };
                sched.compute(&warm, &mut bank, &mut out);
                let empty: [CoflowId; 0] = [];
                b.iter(|| {
                    bank.reset_round();
                    out.clear();
                    let view = ClusterView {
                        now: Time::ZERO,
                        num_nodes: NODES,
                        coflows: &views,
                        changed: hinted.then_some(&empty[..]),
                    };
                    sched.compute(&view, &mut bank, &mut out);
                });
            });
        }
    }
    group.finish();
}

/// The contention computation (k_c) in isolation — the LCoF-specific
/// part of Table 2's ordering column.
fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention");
    for &n in &[50usize, 200, 1000] {
        let views = synth_views(n, false);
        group.bench_with_input(BenchmarkId::new("alloc", n), &n, |b, _| {
            let view = ClusterView {
                now: Time::ZERO,
                num_nodes: NODES,
                coflows: &views,
                changed: None,
            };
            b.iter(|| saath_core::common::contention(&view));
        });
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, _| {
            let view = ClusterView {
                now: Time::ZERO,
                num_nodes: NODES,
                coflows: &views,
                changed: None,
            };
            let mut arena = saath_core::common::RoundArena::new();
            let mut k = Vec::new();
            b.iter(|| {
                saath_core::common::contention_into(&view, &mut arena, &mut k);
                criterion::black_box(k.len());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round, bench_steady_state, bench_contention);
criterion_main!(benches);
