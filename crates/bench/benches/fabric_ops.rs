//! Micro-benchmarks of the fabric allocation primitives every
//! scheduling round is built from: gang (all-or-none) rates, greedy
//! filling, MADD, and global max-min fairness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saath_fabric::{
    gang_rate, greedy_fill, madd_rates, max_min_fair, FlowEndpoints, PortBank,
};
use saath_simcore::{Bytes, DetRng, FlowId, NodeId, PortId, Rate};

const NODES: usize = 150;

fn synth_flows(n: usize) -> Vec<FlowEndpoints> {
    let mut rng = DetRng::derive(7, "bench/fabric");
    (0..n)
        .map(|i| FlowEndpoints {
            flow: FlowId(i as u32),
            src: PortId::uplink(NodeId(rng.below(NODES as u64) as u32)),
            dst: PortId::downlink(NodeId(rng.below(NODES as u64) as u32), NODES),
        })
        .collect()
}

fn bench_primitives(c: &mut Criterion) {
    for &n in &[16usize, 128, 1024] {
        let flows = synth_flows(n);
        let remaining: Vec<Bytes> = {
            let mut rng = DetRng::derive(8, "bench/rem");
            (0..n).map(|_| Bytes(rng.range_inclusive(1_000_000, 1_000_000_000))).collect()
        };

        c.bench_with_input(BenchmarkId::new("gang_rate", n), &n, |b, _| {
            let bank = PortBank::uniform(NODES, Rate::gbps(1));
            let mut scratch = vec![0u32; bank.num_ports()];
            b.iter(|| gang_rate(&bank, &flows, &mut scratch));
        });

        c.bench_with_input(BenchmarkId::new("greedy_fill", n), &n, |b, _| {
            let mut bank = PortBank::uniform(NODES, Rate::gbps(1));
            b.iter(|| {
                bank.reset_round();
                greedy_fill(&mut bank, &flows)
            });
        });

        c.bench_with_input(BenchmarkId::new("madd_rates", n), &n, |b, _| {
            let bank = PortBank::uniform(NODES, Rate::gbps(1));
            b.iter(|| madd_rates(&bank, &flows, &remaining));
        });

        c.bench_with_input(BenchmarkId::new("max_min_fair", n), &n, |b, _| {
            let bank = PortBank::uniform(NODES, Rate::gbps(1));
            b.iter(|| max_min_fair(&bank, &flows));
        });
    }
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
