//! Micro-benchmarks of the fabric allocation primitives every
//! scheduling round is built from: gang (all-or-none) rates, greedy
//! filling, MADD, and global max-min fairness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saath_fabric::{
    gang_rate, greedy_fill, greedy_fill_into, madd_rates, madd_rates_into, max_min_fair,
    max_min_fair_into, FlowEndpoints, MaxMinScratch, PortBank,
};
use saath_simcore::{Bytes, DetRng, FlowId, NodeId, PortId, Rate};

const NODES: usize = 150;

fn synth_flows(n: usize) -> Vec<FlowEndpoints> {
    let mut rng = DetRng::derive(7, "bench/fabric");
    (0..n)
        .map(|i| FlowEndpoints {
            flow: FlowId(i as u32),
            src: PortId::uplink(NodeId(rng.below(NODES as u64) as u32)),
            dst: PortId::downlink(NodeId(rng.below(NODES as u64) as u32), NODES),
        })
        .collect()
}

fn bench_primitives(c: &mut Criterion) {
    // 8192 flows ≈ a fully-loaded 150-node fabric; the `_into` variants
    // at that size show what the allocation-free round buys.
    for &n in &[16usize, 128, 1024, 8192] {
        let flows = synth_flows(n);
        let remaining: Vec<Bytes> = {
            let mut rng = DetRng::derive(8, "bench/rem");
            (0..n)
                .map(|_| Bytes(rng.range_inclusive(1_000_000, 1_000_000_000)))
                .collect()
        };

        c.bench_with_input(BenchmarkId::new("gang_rate", n), &n, |b, _| {
            let bank = PortBank::uniform(NODES, Rate::gbps(1));
            let mut scratch = vec![0u32; bank.num_ports()];
            b.iter(|| gang_rate(&bank, &flows, &mut scratch));
        });

        c.bench_with_input(BenchmarkId::new("greedy_fill", n), &n, |b, _| {
            let mut bank = PortBank::uniform(NODES, Rate::gbps(1));
            b.iter(|| {
                bank.reset_round();
                greedy_fill(&mut bank, &flows)
            });
        });

        c.bench_with_input(BenchmarkId::new("madd_rates", n), &n, |b, _| {
            let bank = PortBank::uniform(NODES, Rate::gbps(1));
            b.iter(|| madd_rates(&bank, &flows, &remaining));
        });

        c.bench_with_input(BenchmarkId::new("max_min_fair", n), &n, |b, _| {
            let bank = PortBank::uniform(NODES, Rate::gbps(1));
            b.iter(|| max_min_fair(&bank, &flows));
        });

        // Allocation-free variants, as the schedulers call them.
        c.bench_with_input(BenchmarkId::new("greedy_fill_into", n), &n, |b, _| {
            let mut bank = PortBank::uniform(NODES, Rate::gbps(1));
            let mut out = Vec::new();
            b.iter(|| {
                bank.reset_round();
                greedy_fill_into(&mut bank, &flows, &mut out);
                criterion::black_box(out.len());
            });
        });

        c.bench_with_input(BenchmarkId::new("madd_rates_into", n), &n, |b, _| {
            let bank = PortBank::uniform(NODES, Rate::gbps(1));
            let mut out = Vec::new();
            b.iter(|| {
                madd_rates_into(&bank, &flows, &remaining, &mut out);
                criterion::black_box(out.len());
            });
        });

        c.bench_with_input(BenchmarkId::new("max_min_fair_into", n), &n, |b, _| {
            let bank = PortBank::uniform(NODES, Rate::gbps(1));
            let mut scratch = MaxMinScratch::default();
            let mut out = Vec::new();
            b.iter(|| {
                max_min_fair_into(&bank, &flows, &mut scratch, &mut out);
                criterion::black_box(out.len());
            });
        });
    }
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
