//! `repro` — regenerates every table and figure of the Saath paper.
//!
//! ```text
//! repro <experiment> [options]
//!
//! experiments:
//!   fig2 fig3 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 table2 dynamics
//!   epoch          engine wall-clock baseline (writes BENCH_epoch_loop.json;
//!                  with --trace PATH, streams the coflow-benchmark file and
//!                  writes BENCH_epoch_fb_trace.json instead; with --small,
//!                  runs the lab's small FB trace and writes no BENCH file)
//!   scale          Fig 9-style scalability sweep: rounds/sec at 150→1k nodes
//!                  × 10k→100k flows, full-rebuild vs incremental contention
//!                  (writes BENCH_scalability.json; rebuild with
//!                  --features parallel for the sharded-probe variant);
//!                  with --shards K > 1, appends a multi-coordinator
//!                  shard-scaling sweep asserting byte-identical records
//!   trace          instrumented Saath + Aalo runs: mechanism breakdown tables
//!                  and deterministic JSONL round traces in results/
//!   gen-trace      write a full-size FB-like trace in coflow-benchmark format
//!                  to --out PATH (offline stand-in for the published trace)
//!   emulate        thread-per-node runtime emulation with a live Prometheus
//!                  /metrics endpoint (default 127.0.0.1:0; see
//!                  --metrics-addr / --metrics-out); with --multiplex,
//!                  runs the readiness-driven host sweep instead:
//!                  cluster sizes up to --nodes, agents multiplexed on
//!                  at most 64 host threads (writes
//!                  BENCH_emulate_scale.json unless --small)
//!   verify PATH    stream a recorded event log through the O(1)-memory
//!                  hash-chain verifier; exits 1 (naming the first bad
//!                  round) if the chain is broken
//!   diff A B       differential harness: binary-search two logs' chained
//!                  digests to the first divergent round and print the
//!                  minimal field-level diff of that round's schedule;
//!                  exits 1 when a divergence is found
//!   bench-diff A B regression gate: compare two BENCH_*.json documents
//!                  field by field (content-keyed sweep points); exits 1
//!                  when a gated field regresses past --tolerance-pct
//!   all            run everything
//!
//! options:
//!   --seed N       generator seed (default 1)
//!   --panel P      fig14 panel: s | e | delta | a | d | all (default all)
//!   --trace PATH   use a real coflow-benchmark file for the FB workload
//!   --out PATH     gen-trace output path (default fb_trace.txt)
//!   --scale N      emulation time scale for fig15/fig16 (default 50)
//!   --nodes N      emulation node cap for fig15/fig16 (default 40);
//!                  with emulate --multiplex, the sweep's largest point
//!   --multiplex    emulate only: readiness-driven multiplexed host
//!                  sweep (O(hosts) threads, not one per node)
//!   --shards K     scale only: max coordinator shard count for the
//!                  shard-scaling sweep (default 4; 1 disables it)
//!   --partitioned  scale only: also sweep the partitioned-compute mode
//!                  (per-shard views + bounded-staleness contention
//!                  summaries) for K ∈ {2, 4} ∩ [1, --shards] on the
//!                  sweep's smallest and largest points, reporting
//!                  per-shard sched_ms, CCT deviation vs the
//!                  single-coordinator oracle, and the first divergent
//!                  round (via the event-log differ)
//!   --staleness S  scale only: restrict the partitioned sweep to one
//!                  summary staleness budget instead of {0, 1, 4, 16}
//!   --small        use small traces (smoke test, seconds instead of minutes)
//!   --json         epoch/scale only: print the BENCH JSON document instead
//!                  of the table
//!   --log PATH     epoch/scale only: record a hash-chained event log of an
//!                  extra untimed replay (records asserted identical to the
//!                  timed run) to PATH
//!   --snapshot-every N
//!                  with --log: serialize a full engine snapshot into the
//!                  log every N rounds (0, the default, disables snapshots)
//!   --resume-from PATH
//!                  epoch/scale only: resume the untimed replay from the
//!                  last snapshot in a previously recorded log; the
//!                  continuation chains to the same digest as a full run
//!   --metrics-out PATH
//!                  epoch/scale/emulate: dump the final Prometheus
//!                  exposition page to PATH
//!   --metrics-addr ADDR
//!                  emulate only: bind the live /metrics endpoint to ADDR
//!                  (default 127.0.0.1:0, port printed on stderr)
//!   --tolerance-pct N
//!                  bench-diff only: regression tolerance in percent
//!                  (default 10)
//! ```
//!
//! CSV artifacts land in `results/`.

use saath_bench::{figs, Lab};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().cloned().unwrap_or_else(|| {
        eprintln!("usage: repro <fig2|fig3|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|table2|dynamics|epoch|scale|trace|emulate|gen-trace|verify|diff|bench-diff|all> [--seed N] [--panel P] [--trace PATH] [--out PATH] [--scale N] [--nodes N] [--shards K] [--partitioned] [--staleness S] [--multiplex] [--small] [--json] [--log PATH] [--snapshot-every N] [--resume-from PATH] [--metrics-out PATH] [--metrics-addr ADDR] [--tolerance-pct N]");
        std::process::exit(2);
    });
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let panel = arg_value(&args, "--panel").unwrap_or_else(|| "all".into());
    let scale: u64 = arg_value(&args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let nodes: usize = arg_value(&args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let shards: usize = arg_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);
    let partitioned = args.iter().any(|a| a == "--partitioned");
    let staleness: Option<u64> = arg_value(&args, "--staleness").and_then(|v| v.parse().ok());
    let multiplex = args.iter().any(|a| a == "--multiplex");
    let small = args.iter().any(|a| a == "--small");
    let json = args.iter().any(|a| a == "--json");
    let log_opts = figs::LogOptions {
        log: arg_value(&args, "--log").map(std::path::PathBuf::from),
        snapshot_every: arg_value(&args, "--snapshot-every")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        resume_from: arg_value(&args, "--resume-from").map(std::path::PathBuf::from),
    };
    let metrics_out = arg_value(&args, "--metrics-out").map(std::path::PathBuf::from);

    // Log-file subcommands need no Lab (no trace generation): handle
    // them before the lab is built, like `gen-trace` below.
    if what == "verify" {
        let path = args.get(1).cloned().unwrap_or_else(|| {
            eprintln!("usage: repro verify <log>");
            std::process::exit(2);
        });
        match figs::verify_log(std::path::Path::new(&path)) {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("verification FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if what == "diff" {
        let (a, b) = match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => (a.clone(), b.clone()),
            _ => {
                eprintln!("usage: repro diff <log-a> <log-b>");
                std::process::exit(2);
            }
        };
        match figs::diff_cmd(std::path::Path::new(&a), std::path::Path::new(&b)) {
            Ok((report, diverged)) => {
                println!("{report}");
                if diverged {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("diff failed: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if what == "bench-diff" {
        let (a, b) = match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => (a.clone(), b.clone()),
            _ => {
                eprintln!("usage: repro bench-diff <old.json> <new.json> [--tolerance-pct N]");
                std::process::exit(2);
            }
        };
        let tolerance: f64 = arg_value(&args, "--tolerance-pct")
            .and_then(|v| v.parse().ok())
            .unwrap_or(10.0);
        match saath_bench::diff::bench_diff_cmd(
            std::path::Path::new(&a),
            std::path::Path::new(&b),
            tolerance,
        ) {
            Ok((report, regressed)) => {
                println!("{report}");
                if regressed {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("bench-diff failed: {e}");
                std::process::exit(2);
            }
        }
        return;
    }

    let mut lab = if small {
        Lab::small(seed)
    } else {
        Lab::new(seed)
    };
    if let Some(path) = arg_value(&args, "--trace") {
        let trace = saath_workload::io::read_coflow_benchmark(
            std::path::Path::new(&path),
            saath_simcore::Rate::gbps(1),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot read trace {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "using real trace {path}: {} nodes, {} coflows",
            trace.num_nodes,
            trace.coflows.len()
        );
        lab = lab.with_fb_trace(trace);
    }

    let t0 = std::time::Instant::now();
    let run = |lab: &mut Lab, id: &str| -> Option<String> {
        match id {
            "fig2" => Some(figs::fig2(lab)),
            "fig3" => Some(figs::fig3(lab)),
            "fig9" => Some(figs::fig9(lab)),
            "fig10" => Some(figs::fig10(lab)),
            "fig11" => Some(figs::fig11(lab)),
            "fig12" => Some(figs::fig12(lab)),
            "fig13" => Some(figs::fig13(lab)),
            "fig14" => Some(figs::fig14(lab, &panel)),
            "fig15" | "fig16" | "fig15_16" => Some(figs::fig15_16(lab, scale, nodes)),
            "fig17" => Some(figs::fig17(lab)),
            "table2" => Some(figs::table2(lab)),
            "dynamics" => Some(figs::dynamics(lab)),
            "epoch" => Some(figs::epoch(
                lab,
                json,
                small,
                &log_opts,
                metrics_out.as_deref(),
            )),
            "scale" => Some(figs::scale(
                lab,
                json,
                small,
                shards,
                partitioned,
                staleness,
                &log_opts,
                metrics_out.as_deref(),
            )),
            "trace" => Some(figs::trace_diag(lab, small)),
            "emulate" => Some(if multiplex {
                figs::emulate_scale_cmd(lab, scale, nodes, small, json)
            } else {
                figs::emulate_cmd(
                    lab,
                    scale,
                    nodes,
                    shards,
                    arg_value(&args, "--metrics-addr"),
                    metrics_out.as_deref(),
                )
            }),
            _ => None,
        }
    };

    if what == "gen-trace" {
        let out = arg_value(&args, "--out").unwrap_or_else(|| "fb_trace.txt".into());
        println!("{}", figs::gen_trace(seed, std::path::Path::new(&out)));
        return;
    }

    if what == "all" {
        for id in [
            "fig2", "fig3", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15_16",
            "fig17", "table2", "dynamics",
        ] {
            println!("{}", run(&mut lab, id).unwrap());
        }
    } else {
        match run(&mut lab, &what) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown experiment `{what}`");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "[repro] done in {:.1?} (seed {seed}); CSVs in results/",
        t0.elapsed()
    );
}
