//! `repro bench-diff` — the performance-regression gate.
//!
//! Compares two `BENCH_*.json` documents (the flat `epoch` baseline or
//! the nested `scale` sweep) field by field and flags regressions
//! beyond a tolerance. The workspace's vendored serde is an API stub
//! that cannot deserialize, so this module carries its own minimal
//! JSON parser — a few dozen lines for the machine-written documents
//! the harness itself emits.
//!
//! ## Matching
//!
//! Numeric fields are flattened to dotted paths. Array elements are
//! keyed *by content*, not index: entries of `points` by their
//! `nodes` value and entries of `shard_sweep` by the composite
//! `(nodes, shards, mode, staleness)` — replicated and partitioned
//! points share shard counts, so a single-field key would collide
//! them. Re-ordered or partially-overlapping sweeps still line up,
//! and a `--small` smoke document simply has zero comparable points
//! against a full baseline (the gate passes vacuously rather than
//! misfiring).
//!
//! ## Direction
//!
//! Only fields with a known "better" direction gate the exit code:
//! `*_ms` is lower-better, `*rounds_per_sec` / `*speedup` are
//! higher-better. Everything else (counts, seeds, flags) is reported
//! as informational drift but never fails the gate.

use std::fmt::Write as _;

/// A parsed JSON value (numbers as f64 — the documents are
/// machine-written with modest precision).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number
    Num(f64),
    /// A string (escapes decoded)
    Str(String),
    /// An array
    Arr(Vec<Json>),
    /// An object, insertion-ordered
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            // The harness never writes \b \f \uXXXX;
                            // reject rather than mis-decode.
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 passes through byte-wise.
                        s.push(c as char);
                        *pos += 1;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

/// Flattens every numeric field to `(dotted path, value)`, keying
/// `points` entries by `nodes` and `shard_sweep` entries by the
/// composite `(nodes, shards, mode, staleness)` (see module docs).
/// Bools flatten as 0/1 so flag drift is visible.
pub fn flatten(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(doc, "", &mut out);
    out
}

fn walk(v: &Json, path: &str, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(n) => out.push((path.to_string(), *n)),
        Json::Bool(flag) => out.push((path.to_string(), f64::from(*flag))),
        Json::Obj(fields) => {
            for (k, child) in fields {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk(child, &sub, out);
            }
        }
        Json::Arr(items) => {
            // Content keying: sweeps line up across re-orderings and
            // differently-sized runs. `shard_sweep` needs the full
            // composite key — replicated and partitioned points share
            // a shard count, and the partitioned sweep varies nodes
            // and staleness too.
            let disc: &[&str] = match path.rsplit('.').next().unwrap_or(path) {
                "points" => &["nodes"],
                "shard_sweep" => &["nodes", "shards", "mode", "staleness"],
                _ => &[],
            };
            for (i, item) in items.iter().enumerate() {
                let parts: Vec<String> = disc
                    .iter()
                    .filter_map(|d| match item.get(d) {
                        Some(Json::Num(n)) => Some(format!("{d}={n}")),
                        Some(Json::Str(s)) => Some(format!("{d}={s}")),
                        _ => None,
                    })
                    .collect();
                let key = if parts.is_empty() {
                    i.to_string()
                } else {
                    parts.join(",")
                };
                walk(item, &format!("{path}.{key}"), out);
            }
        }
        Json::Null | Json::Str(_) => {}
    }
}

/// Which way a field is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerBetter,
    HigherBetter,
    Informational,
}

fn direction(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    // `delta_ms` is the configured scheduling interval, not a
    // measurement — drift there is config drift, reported but ungated.
    if leaf == "delta_ms" {
        Direction::Informational
    } else if leaf.ends_with("_ms") {
        Direction::LowerBetter
    } else if leaf.ends_with("rounds_per_sec") || leaf.contains("speedup") {
        Direction::HigherBetter
    } else {
        Direction::Informational
    }
}

/// One field's comparison.
pub struct FieldDiff {
    /// Dotted, content-keyed path.
    pub path: String,
    /// Old and new values.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Signed percent change, `new` relative to `old`.
    pub delta_pct: f64,
    /// Whether this field fails the gate at the given tolerance.
    pub regressed: bool,
}

/// The outcome of comparing two benchmark documents.
pub struct DiffReport {
    /// Per-field comparisons, gated fields first, worst first.
    pub fields: Vec<FieldDiff>,
    /// Count of gated (direction-known) fields compared.
    pub gated: usize,
    /// Count of fields present in only one document (ignored).
    pub unmatched: usize,
}

impl DiffReport {
    /// Whether any gated field regressed beyond tolerance.
    pub fn regressed(&self) -> bool {
        self.fields.iter().any(|f| f.regressed)
    }

    /// Renders the human-readable comparison.
    pub fn render(&self, tolerance_pct: f64) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== bench-diff — {} comparable fields ({} gated, tolerance {tolerance_pct}%) ==",
            self.fields.len(),
            self.gated
        );
        if self.unmatched > 0 {
            let _ = writeln!(
                s,
                "   ({} fields present in only one document were ignored)",
                self.unmatched
            );
        }
        for f in &self.fields {
            let verdict = if f.regressed {
                "REGRESSED"
            } else {
                match direction(&f.path) {
                    Direction::Informational => "info",
                    _ => "ok",
                }
            };
            let _ = writeln!(
                s,
                "{verdict:>9}  {:<60} {:>12.2} -> {:>12.2}  ({:+.1}%)",
                f.path, f.old, f.new, f.delta_pct
            );
        }
        if self.gated == 0 {
            let _ = writeln!(
                s,
                "no gated fields in common (e.g. smoke vs full baseline) — gate passes vacuously"
            );
        }
        s
    }
}

/// Compares two parsed documents at `tolerance_pct`.
pub fn compare(old: &Json, new: &Json, tolerance_pct: f64) -> DiffReport {
    let old_fields = flatten(old);
    let new_fields = flatten(new);
    let mut fields = Vec::new();
    let mut gated = 0usize;
    let mut matched_new = vec![false; new_fields.len()];
    let mut unmatched = 0usize;
    for (path, old_v) in &old_fields {
        let Some(j) = new_fields.iter().position(|(p, _)| p == path) else {
            unmatched += 1;
            continue;
        };
        matched_new[j] = true;
        let new_v = new_fields[j].1;
        let delta_pct = if *old_v == 0.0 {
            if new_v == 0.0 {
                0.0
            } else {
                100.0 * new_v.signum()
            }
        } else {
            (new_v - old_v) / old_v.abs() * 100.0
        };
        let dir = direction(path);
        if dir != Direction::Informational {
            gated += 1;
        }
        let regressed = match dir {
            Direction::LowerBetter => delta_pct > tolerance_pct,
            Direction::HigherBetter => delta_pct < -tolerance_pct,
            Direction::Informational => false,
        };
        fields.push(FieldDiff {
            path: path.clone(),
            old: *old_v,
            new: new_v,
            delta_pct,
            regressed,
        });
    }
    unmatched += matched_new.iter().filter(|m| !**m).count();
    // Gate failures first, then gated fields by |delta|, then info.
    fields.sort_by(|a, b| {
        let rank = |f: &FieldDiff| (!f.regressed, direction(&f.path) == Direction::Informational);
        rank(a)
            .cmp(&rank(b))
            .then(b.delta_pct.abs().total_cmp(&a.delta_pct.abs()))
            .then(a.path.cmp(&b.path))
    });
    DiffReport {
        fields,
        gated,
        unmatched,
    }
}

/// The `repro bench-diff OLD NEW` entry point: reads, parses, compares.
/// Returns the rendered report and whether the gate failed.
pub fn bench_diff_cmd(
    old_path: &std::path::Path,
    new_path: &std::path::Path,
    tolerance_pct: f64,
) -> Result<(String, bool), String> {
    let read = |p: &std::path::Path| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    let old = parse_json(&read(old_path)?)
        .map_err(|e| format!("{}: invalid JSON: {e}", old_path.display()))?;
    let new = parse_json(&read(new_path)?)
        .map_err(|e| format!("{}: invalid JSON: {e}", new_path.display()))?;
    let report = compare(&old, &new, tolerance_pct);
    Ok((report.render(tolerance_pct), report.regressed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE_DOC: &str = r#"{
  "experiment": "scalability_sweep",
  "seed": 1,
  "delta_ms": 8,
  "points": [
    {
      "nodes": 150,
      "flows": 10000,
      "rounds_per_sec_speedup": 3.10,
      "full_rebuild": { "wall_ms": 900.0, "rounds_per_sec": 111.0 },
      "incremental": { "wall_ms": 290.0, "rounds_per_sec": 344.0 }
    },
    {
      "nodes": 300,
      "flows": 25000,
      "rounds_per_sec_speedup": 3.50,
      "full_rebuild": { "wall_ms": 4100.0, "rounds_per_sec": 40.0 },
      "incremental": { "wall_ms": 1170.0, "rounds_per_sec": 140.0 }
    }
  ],
  "shard_sweep": [
    { "shards": 1, "nodes": 150, "mode": "replicated", "staleness": 0, "wall_ms": 300.0, "replication_overhead": 1.0 },
    { "shards": 2, "nodes": 150, "mode": "replicated", "staleness": 0, "wall_ms": 620.0, "replication_overhead": 2.07 },
    { "shards": 2, "nodes": 150, "mode": "partitioned", "staleness": 4, "wall_ms": 410.0, "sched_speedup": 1.3 }
  ]
}"#;

    #[test]
    fn parser_round_trips_the_harness_shapes() {
        let doc = parse_json(SCALE_DOC).unwrap();
        assert_eq!(
            doc.get("experiment"),
            Some(&Json::Str("scalability_sweep".into()))
        );
        let flat = flatten(&doc);
        let get = |p: &str| flat.iter().find(|(k, _)| k == p).map(|(_, v)| *v);
        // Content-keyed paths, not positional. The shard_sweep key is
        // composite: a replicated and a partitioned point sharing
        // (nodes, shards) must not collide.
        assert_eq!(get("points.nodes=150.incremental.wall_ms"), Some(290.0));
        assert_eq!(
            get("shard_sweep.nodes=150,shards=2,mode=replicated,staleness=0.wall_ms"),
            Some(620.0)
        );
        assert_eq!(
            get("shard_sweep.nodes=150,shards=2,mode=partitioned,staleness=4.wall_ms"),
            Some(410.0)
        );
        assert_eq!(get("seed"), Some(1.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn identical_documents_pass() {
        let a = parse_json(SCALE_DOC).unwrap();
        let b = parse_json(SCALE_DOC).unwrap();
        let report = compare(&a, &b, 5.0);
        assert!(!report.regressed());
        assert!(report.gated > 0, "sweep docs must have gated fields");
        assert!(report.fields.iter().all(|f| f.delta_pct == 0.0));
    }

    #[test]
    fn doubled_wall_time_is_flagged() {
        let a = parse_json(SCALE_DOC).unwrap();
        let b = parse_json(&SCALE_DOC.replace("\"wall_ms\": 290.0", "\"wall_ms\": 580.0")).unwrap();
        let report = compare(&a, &b, 5.0);
        assert!(report.regressed(), "2x regression must fail the gate");
        let bad = report
            .fields
            .iter()
            .find(|f| f.regressed)
            .expect("a regressed field");
        assert_eq!(bad.path, "points.nodes=150.incremental.wall_ms");
        assert!((bad.delta_pct - 100.0).abs() < 1e-9);
        // Failures sort first.
        assert!(report.fields[0].regressed);
    }

    #[test]
    fn slower_rounds_per_sec_is_flagged_and_faster_is_not() {
        let a = parse_json(SCALE_DOC).unwrap();
        // 344 → 170 rounds/sec: a higher-is-better field halving.
        let slower = parse_json(
            &SCALE_DOC.replace("\"rounds_per_sec\": 344.0", "\"rounds_per_sec\": 170.0"),
        )
        .unwrap();
        assert!(compare(&a, &slower, 5.0).regressed());
        // 344 → 700 rounds/sec: an improvement, never a regression.
        let faster = parse_json(
            &SCALE_DOC.replace("\"rounds_per_sec\": 344.0", "\"rounds_per_sec\": 700.0"),
        )
        .unwrap();
        assert!(!compare(&a, &faster, 5.0).regressed());
    }

    #[test]
    fn tolerance_absorbs_noise() {
        let a = parse_json(SCALE_DOC).unwrap();
        // +4% on a lower-better field, under the 5% tolerance.
        let b = parse_json(&SCALE_DOC.replace("\"wall_ms\": 290.0", "\"wall_ms\": 301.6")).unwrap();
        assert!(!compare(&a, &b, 5.0).regressed());
        assert!(compare(&a, &b, 3.0).regressed());
    }

    #[test]
    fn disjoint_sweeps_pass_vacuously() {
        // A --small smoke doc: different nodes values, no shard sweep.
        let small = r#"{
  "experiment": "scalability_sweep",
  "seed": 1,
  "delta_ms": 8,
  "points": [
    { "nodes": 40, "incremental": { "wall_ms": 10.0, "rounds_per_sec": 900.0 } }
  ]
}"#;
        let a = parse_json(SCALE_DOC).unwrap();
        let b = parse_json(small).unwrap();
        let report = compare(&a, &b, 5.0);
        assert_eq!(report.gated, 0, "no point overlap → nothing gated");
        assert!(!report.regressed());
        assert!(report.render(5.0).contains("vacuously"));
        assert!(report.unmatched > 0);
    }

    #[test]
    fn flat_epoch_documents_compare_directly() {
        let old = r#"{ "experiment": "epoch_loop", "total_incremental_ms": 120.0,
                       "loop_speedup": 4.2, "rounds": 12500 }"#;
        let new = r#"{ "experiment": "epoch_loop", "total_incremental_ms": 118.0,
                       "loop_speedup": 1.1, "rounds": 12500 }"#;
        let report = compare(&parse_json(old).unwrap(), &parse_json(new).unwrap(), 5.0);
        // wall time fine, but the speedup collapsed — gate fails.
        assert!(report.regressed());
        let bad = report.fields.iter().find(|f| f.regressed).unwrap();
        assert_eq!(bad.path, "loop_speedup");
    }
}
