//! # saath-bench
//!
//! The reproduction harness: one function per table and figure of the
//! paper's evaluation (§2.3, §6, §7, Appendix A), shared by the `repro`
//! binary and the workspace integration tests. Criterion micro-benches
//! (`benches/`) cover the schedule-compute latencies of Table 2.
//!
//! Run `cargo run -p saath-bench --release --bin repro -- all` to
//! regenerate every experiment; each also writes CSV under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod figs;
pub mod lab;

pub use lab::Lab;
