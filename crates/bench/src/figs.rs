//! One function per table/figure of the paper. Each returns the
//! rendered text (what `repro` prints) and writes CSV artifacts.

use crate::lab::{Lab, Workload};
use saath_core::SaathConfig;
use saath_metrics::record::join_runs;
use saath_metrics::table::{fmt_pct, fmt_x, Table};
use saath_metrics::{
    bins, cdf_points, deviation, percentile, speedups, CoflowRecord, SpeedupSummary,
};
use saath_simulator::Policy;
use saath_workload::transform::scale_arrivals;

fn cdf_csv(samples: &[f64]) -> String {
    let mut out = String::from("value,cdf\n");
    for (v, p) in cdf_points(samples) {
        out.push_str(&format!("{v},{p}\n"));
    }
    out
}

/// **Fig 2** — the out-of-sync problem under Aalo (§2.3): (a) flows per
/// CoFlow, (b) normalized σ of flow lengths, (c) normalized σ of FCTs
/// for equal- and unequal-length multi-flow CoFlows.
pub fn fig2(lab: &mut Lab) -> String {
    let trace = lab.trace(Workload::Fb).clone();
    let aalo = lab.run(Workload::Fb, &Policy::aalo()).to_vec();

    // (a) width distribution of the trace itself (empty-trace safe).
    let widths: Vec<f64> = trace.coflows.iter().map(|c| c.width() as f64).collect();
    let n = widths.len().max(1) as f64;
    let single = widths.iter().filter(|&&w| w == 1.0).count() as f64 / n;
    let equal = trace
        .coflows
        .iter()
        .filter(|c| c.width() > 1 && c.has_equal_flows())
        .count() as f64
        / n;
    let uneven = 1.0 - single - equal;

    // (b) flow-length deviation per CoFlow (ground truth).
    let len_dev: Vec<f64> = aalo
        .iter()
        .filter_map(deviation::length_deviation)
        .collect();

    // (c) FCT deviation under Aalo, split.
    let (eq_dev, uneq_dev) = deviation::fct_deviation_split(&aalo);

    lab.write_csv("fig2a_width_cdf.csv", &cdf_csv(&widths));
    lab.write_csv("fig2b_length_dev_cdf.csv", &cdf_csv(&len_dev));
    lab.write_csv("fig2c_fct_dev_equal_cdf.csv", &cdf_csv(&eq_dev));
    lab.write_csv("fig2c_fct_dev_unequal_cdf.csv", &cdf_csv(&uneq_dev));

    let mut t = Table::new(
        "Fig 2 — out-of-sync under Aalo (FB trace)",
        &["metric", "paper", "measured"],
    );
    t.row(&["single-flow CoFlows".into(), "23%".into(), fmt_pct(single)]);
    t.row(&["multi, equal-length".into(), "50%".into(), fmt_pct(equal)]);
    t.row(&["multi, uneven-length".into(), "27%".into(), fmt_pct(uneven)]);
    t.row(&[
        "P50 FCT deviation (equal)".into(),
        ">12%".into(),
        fmt_pct(percentile(&eq_dev, 50.0).unwrap_or(0.0)),
    ]);
    t.row(&[
        "P80 FCT deviation (equal)".into(),
        ">39%".into(),
        fmt_pct(percentile(&eq_dev, 80.0).unwrap_or(0.0)),
    ]);
    t.row(&[
        "P50 FCT deviation (uneven)".into(),
        ">27%".into(),
        fmt_pct(percentile(&uneq_dev, 50.0).unwrap_or(0.0)),
    ]);
    t.row(&[
        "P80 FCT deviation (uneven)".into(),
        ">50%".into(),
        fmt_pct(percentile(&uneq_dev, 80.0).unwrap_or(0.0)),
    ]);
    t.render()
}

/// **Fig 3** — offline SCF vs SRTF vs LWTF speedups over Aalo, with
/// CoFlow sizes known (§2.4): contention-awareness beats pure SJF.
pub fn fig3(lab: &mut Lab) -> String {
    let aalo = lab.run(Workload::Fb, &Policy::aalo()).to_vec();
    let mut t = Table::new(
        "Fig 3 — clairvoyant orderings over Aalo (FB trace)",
        &["policy", "P25", "median", "P75", "overall CCT speedup"],
    );
    for policy in [Policy::Scf, Policy::Srtf, Policy::Lwtf] {
        let ours = lab.run(Workload::Fb, &policy).to_vec();
        let per = speedups(&aalo, &ours);
        let s = SpeedupSummary::compute(&aalo, &ours).unwrap();
        lab.write_csv(
            &format!("fig3_{}_speedup_cdf.csv", policy.name()),
            &cdf_csv(&per),
        );
        t.row(&[
            policy.name().into(),
            fmt_x(percentile(&per, 25.0).unwrap()),
            fmt_x(s.median),
            fmt_x(percentile(&per, 75.0).unwrap()),
            fmt_x(s.overall),
        ]);
    }
    t.render()
}

/// **Fig 9** — Saath speedup over Aalo, Varys (SEBF) and UC-TCP on both
/// workloads (median with P10/P90 error bars).
pub fn fig9(lab: &mut Lab) -> String {
    let mut t = Table::new(
        "Fig 9 — per-CoFlow CCT speedup of Saath over other schedulers",
        &[
            "trace",
            "baseline",
            "P10",
            "median",
            "P90",
            "paper median (P90)",
        ],
    );
    for w in [Workload::Fb, Workload::Osp] {
        let saath = lab.run(w, &Policy::saath()).to_vec();
        for (base, paper) in [
            (
                Policy::aalo(),
                if w == Workload::Fb {
                    "1.53x (4.5x)"
                } else {
                    "1.42x (37x)"
                },
            ),
            (Policy::Varys, "~1x (Saath ≈ offline SEBF)"),
            (
                Policy::UcTcp,
                if w == Workload::Fb { "154x" } else { "121x" },
            ),
        ] {
            let baseline = lab.run(w, &base).to_vec();
            let s = SpeedupSummary::compute(&baseline, &saath).unwrap();
            let per = speedups(&baseline, &saath);
            lab.write_csv(
                &format!("fig9_{}_vs_{}.csv", w.label(), base.name()),
                &cdf_csv(&per),
            );
            t.row(&[
                w.label().into(),
                base.name().into(),
                fmt_x(s.p10),
                fmt_x(s.median),
                fmt_x(s.p90),
                paper.into(),
            ]);
        }
    }
    t.render()
}

/// The three Fig 10 design points.
fn breakdown_policies() -> [(&'static str, Policy); 3] {
    [
        ("A/N", Policy::Saath(SaathConfig::ablation_an())),
        ("A/N+P/F", Policy::Saath(SaathConfig::ablation_an_pf())),
        ("Saath (A/N+P/F+LCoF)", Policy::saath()),
    ]
}

/// **Fig 10** — speedup breakdown across the three design ideas.
pub fn fig10(lab: &mut Lab) -> String {
    let mut t = Table::new(
        "Fig 10 — breakdown of Saath's ideas (speedup over Aalo)",
        &["trace", "design", "median", "P90"],
    );
    for w in [Workload::Fb, Workload::Osp] {
        let aalo = lab.run(w, &Policy::aalo()).to_vec();
        for (label, p) in breakdown_policies() {
            let ours = lab.run(w, &p).to_vec();
            let s = SpeedupSummary::compute(&aalo, &ours).unwrap();
            t.row(&[
                w.label().into(),
                label.into(),
                fmt_x(s.median),
                fmt_x(s.p90),
            ]);
        }
    }
    t.render()
}

fn fig_bins(lab: &mut Lab, w: Workload, title: &str, csv: &str) -> String {
    let aalo = lab.run(w, &Policy::aalo()).to_vec();
    let mut t = Table::new(title, &["design", "bin-1", "bin-2", "bin-3", "bin-4"]);
    let mut fracs_row: Option<Vec<String>> = None;
    let mut csv_out = String::from("design,bin,fraction,median_speedup\n");
    for (label, p) in breakdown_policies() {
        let ours = lab.run(w, &p).to_vec();
        let joined = join_runs(&aalo, &ours);
        let pairs: Vec<(bins::Bin, f64)> = joined
            .iter()
            .map(|(_, b, s)| {
                (
                    bins::bin_of(b),
                    b.cct().as_nanos() as f64 / s.cct().as_nanos() as f64,
                )
            })
            .collect();
        let groups = bins::group_by_bin(&pairs);
        let mut row = vec![label.to_string()];
        for (i, (g, frac)) in groups.iter().enumerate() {
            let med = percentile(g, 50.0).unwrap_or(f64::NAN);
            row.push(fmt_x(med));
            csv_out.push_str(&format!("{label},bin-{},{frac},{med}\n", i + 1));
        }
        if fracs_row.is_none() {
            let mut fr = vec!["(bin fraction)".to_string()];
            fr.extend(groups.iter().map(|(_, f)| fmt_pct(*f)));
            fracs_row = Some(fr);
        }
        t.row(&row);
    }
    if let Some(fr) = fracs_row {
        t.row(&fr);
    }
    lab.write_csv(csv, &csv_out);
    t.render()
}

/// **Fig 11** — per-bin breakdown, FB trace (Table 1 bins).
pub fn fig11(lab: &mut Lab) -> String {
    fig_bins(
        lab,
        Workload::Fb,
        "Fig 11 — median speedup over Aalo by size×width bin (FB)",
        "fig11_bins.csv",
    )
}

/// **Fig 12** — per-bin breakdown, OSP trace.
pub fn fig12(lab: &mut Lab) -> String {
    fig_bins(
        lab,
        Workload::Osp,
        "Fig 12 — median speedup over Aalo by size×width bin (OSP)",
        "fig12_bins.csv",
    )
}

/// **Fig 13** — normalized FCT deviation, Saath vs Aalo (FB): Saath's
/// gang scheduling collapses the out-of-sync spread.
pub fn fig13(lab: &mut Lab) -> String {
    let aalo = lab.run(Workload::Fb, &Policy::aalo()).to_vec();
    let saath = lab.run(Workload::Fb, &Policy::saath()).to_vec();
    let (a_eq, a_uneq) = deviation::fct_deviation_split(&aalo);
    let (s_eq, s_uneq) = deviation::fct_deviation_split(&saath);
    lab.write_csv("fig13_aalo_equal.csv", &cdf_csv(&a_eq));
    lab.write_csv("fig13_saath_equal.csv", &cdf_csv(&s_eq));
    lab.write_csv("fig13_aalo_unequal.csv", &cdf_csv(&a_uneq));
    lab.write_csv("fig13_saath_unequal.csv", &cdf_csv(&s_uneq));

    let frac0 = |v: &[f64]| saath_metrics::stats::fraction_at_most(v, 1e-9);
    let frac10 = |v: &[f64]| saath_metrics::stats::fraction_at_most(v, 0.10);
    let mut t = Table::new(
        "Fig 13 — normalized FCT deviation of multi-flow CoFlows (FB)",
        &["metric", "paper", "Aalo", "Saath"],
    );
    t.row(&[
        "equal-length, fully in sync (dev = 0)".into(),
        "20% → 40%".into(),
        fmt_pct(frac0(&a_eq)),
        fmt_pct(frac0(&s_eq)),
    ]);
    t.row(&[
        "equal-length, dev < 10%".into(),
        "47% → 71%".into(),
        fmt_pct(frac10(&a_eq)),
        fmt_pct(frac10(&s_eq)),
    ]);
    t.row(&[
        "uneven-length median dev".into(),
        "(lower is better)".into(),
        fmt_pct(percentile(&a_uneq, 50.0).unwrap_or(0.0)),
        fmt_pct(percentile(&s_uneq, 50.0).unwrap_or(0.0)),
    ]);
    t.render()
}

/// **Fig 14** — sensitivity analysis. `panel` is one of
/// `s, e, delta, a, d` (or `all`).
pub fn fig14(lab: &mut Lab, panel: &str) -> String {
    let mut out = String::new();
    let run_all = panel == "all";

    // Baseline: default Aalo on the unmodified trace at default δ.
    let base = lab.run(Workload::Fb, &Policy::aalo()).to_vec();
    let med = |records: &[CoflowRecord]| {
        SpeedupSummary::compute(&base, records)
            .map(|s| s.median)
            .unwrap_or(f64::NAN)
    };

    if run_all || panel == "s" {
        let mut t = Table::new(
            "Fig 14(a) — start queue threshold S (speedup vs default Aalo)",
            &["S", "Aalo", "Saath"],
        );
        for mb in [1u64, 10, 100, 1000, 10_000] {
            let q = saath_core::QueueConfig {
                first_threshold: saath_simcore::Bytes::mb(mb),
                ..Default::default()
            };
            let aalo = lab.run(Workload::Fb, &Policy::Aalo(q.clone())).to_vec();
            let saath = lab
                .run_named_saath(
                    Workload::Fb,
                    &format!("s={mb}"),
                    SaathConfig {
                        queues: q,
                        ..Default::default()
                    },
                )
                .to_vec();
            t.row(&[format!("{mb} MB"), fmt_x(med(&aalo)), fmt_x(med(&saath))]);
        }
        out.push_str(&t.render());
    }

    if run_all || panel == "e" {
        let mut t = Table::new(
            "Fig 14(b) — threshold growth factor E",
            &["E", "Aalo", "Saath"],
        );
        for e in [2u64, 4, 8, 16, 32] {
            let q = saath_core::QueueConfig {
                growth: e,
                ..Default::default()
            };
            let aalo = lab.run(Workload::Fb, &Policy::Aalo(q.clone())).to_vec();
            let saath = lab
                .run_named_saath(
                    Workload::Fb,
                    &format!("e={e}"),
                    SaathConfig {
                        queues: q,
                        ..Default::default()
                    },
                )
                .to_vec();
            t.row(&[format!("{e}"), fmt_x(med(&aalo)), fmt_x(med(&saath))]);
        }
        out.push_str(&t.render());
    }

    if run_all || panel == "delta" {
        let mut t = Table::new(
            "Fig 14(c) — coordination interval δ",
            &["δ", "Aalo", "Saath"],
        );
        for ms in [1u64, 8, 50, 200, 1000] {
            let ns = ms * 1_000_000;
            let aalo = lab
                .run_with_delta(Workload::Fb, &Policy::aalo(), ns)
                .to_vec();
            let saath = lab
                .run_with_delta(Workload::Fb, &Policy::saath(), ns)
                .to_vec();
            t.row(&[format!("{ms} ms"), fmt_x(med(&aalo)), fmt_x(med(&saath))]);
        }
        out.push_str(&t.render());
    }

    if run_all || panel == "a" {
        let mut t = Table::new(
            "Fig 14(d) — arrival compression A (contention; vs default Aalo at A=1)",
            &["A", "Aalo", "Saath", "Saath/Aalo"],
        );
        for (num, den) in [(1u64, 2u64), (1, 1), (2, 1), (4, 1)] {
            let trace = scale_arrivals(lab.trace(Workload::Fb), num, den);
            let aalo = lab.run_trace(&trace, &Policy::aalo(), 8_000_000);
            let saath = lab.run_trace(&trace, &Policy::saath(), 8_000_000);
            let rel = SpeedupSummary::compute(&aalo, &saath)
                .map(|s| s.median)
                .unwrap();
            t.row(&[
                format!("{:.1}", num as f64 / den as f64),
                fmt_x(med(&aalo)),
                fmt_x(med(&saath)),
                fmt_x(rel),
            ]);
        }
        out.push_str(&t.render());
    }

    if run_all || panel == "d" {
        let mut t = Table::new("Fig 14(e) — starvation deadline factor d", &["d", "Saath"]);
        for d in [1u64, 2, 4, 8, 16] {
            let saath = lab
                .run_named_saath(
                    Workload::Fb,
                    &format!("d={d}"),
                    SaathConfig {
                        deadline_factor: d,
                        ..Default::default()
                    },
                )
                .to_vec();
            t.row(&[format!("{d}"), fmt_x(med(&saath))]);
        }
        out.push_str(&t.render());
    }
    out
}

/// **Figs 15 & 16** — the testbed emulation: real coordinator/agent
/// threads over the runtime crate. Returns the rendered tables.
/// `scale` trades wall time for fidelity (50 = the default).
pub fn fig15_16(lab: &mut Lab, scale: u64, nodes_cap: usize) -> String {
    use saath_runtime::{emulate, EmulationConfig};
    use saath_workload::dag::{job_completion_time, ShuffleFractionModel};

    // A scaled-down slice of the FB-like trace keeps the emulation in
    // seconds of wall time; the full trace works too (just slower).
    let mut trace = lab.trace(Workload::Fb).clone();
    if trace.num_nodes > nodes_cap {
        // Fold the cluster onto fewer nodes, preserving contention.
        for c in &mut trace.coflows {
            for f in &mut c.flows {
                f.src = saath_simcore::NodeId(f.src.0 % nodes_cap as u32);
                f.dst = saath_simcore::NodeId(f.dst.0 % nodes_cap as u32);
            }
        }
        trace.num_nodes = nodes_cap;
    }
    let horizon = std::time::Duration::from_secs(600);

    let cfg = EmulationConfig {
        scale,
        wall_deadline: horizon,
        ..Default::default()
    };
    let aalo = emulate(
        &trace,
        &|| Box::new(saath_core::Aalo::with_defaults()),
        &cfg,
    );
    let saath = emulate(
        &trace,
        &|| Box::new(saath_core::Saath::with_defaults()),
        &cfg,
    );
    assert!(
        !aalo.coordinator.timed_out && !saath.coordinator.timed_out,
        "emulation timed out"
    );

    let ratios = speedups(&aalo.coordinator.records, &saath.coordinator.records);
    lab.write_csv("fig15_cct_ratio_cdf.csv", &cdf_csv(&ratios));

    let mut t = Table::new(
        "Fig 15 — [testbed emulation] CCT ratio Aalo/Saath",
        &["metric", "paper", "measured"],
    );
    let n = ratios.len().max(1) as f64;
    t.row(&[
        "range".into(),
        "0.09x – 12.15x".into(),
        format!(
            "{} – {}",
            fmt_x(ratios.iter().cloned().fold(f64::INFINITY, f64::min)),
            fmt_x(ratios.iter().cloned().fold(0.0, f64::max))
        ),
    ]);
    t.row(&[
        "average".into(),
        "1.88x".into(),
        fmt_x(ratios.iter().sum::<f64>() / n),
    ]);
    t.row(&[
        "median".into(),
        "1.43x".into(),
        fmt_x(percentile(&ratios, 50.0).unwrap()),
    ]);
    t.row(&[
        "CoFlows improved".into(),
        ">70%".into(),
        fmt_pct(ratios.iter().filter(|&&r| r > 1.0).count() as f64 / n),
    ]);
    let mut out = t.render();

    // Fig 16: job completion time via shuffle fractions.
    let model = ShuffleFractionModel::default();
    let mut rng = saath_simcore::DetRng::derive(lab.seed(), "fig16/shuffle");
    let joined = join_runs(&aalo.coordinator.records, &saath.coordinator.records);
    let mut by_bucket: [Vec<f64>; 4] = Default::default();
    let mut all = Vec::new();
    let mut csv = String::from("shuffle_fraction,jct_speedup\n");
    for (_, a, s) in &joined {
        let f = model.sample(&mut rng);
        let jct_a = job_completion_time(a.cct(), a.cct(), f);
        let jct_s = job_completion_time(a.cct(), s.cct(), f);
        let sp = jct_a.as_nanos() as f64 / jct_s.as_nanos().max(1) as f64;
        let b = ((f * 4.0) as usize).min(3);
        by_bucket[b].push(sp);
        all.push(sp);
        csv.push_str(&format!("{f},{sp}\n"));
    }
    lab.write_csv("fig16_jct_speedup.csv", &csv);

    let mut t = Table::new(
        "Fig 16 — [testbed emulation] job completion time speedup vs shuffle fraction",
        &["shuffle fraction", "mean", "P50", "P90", "n"],
    );
    for (i, bucket) in by_bucket.iter().enumerate() {
        let label = format!("{}–{}%", i * 25, (i + 1) * 25);
        if bucket.is_empty() {
            t.row(&[label, "-".into(), "-".into(), "-".into(), "0".into()]);
            continue;
        }
        t.row(&[
            label,
            fmt_x(bucket.iter().sum::<f64>() / bucket.len() as f64),
            fmt_x(percentile(bucket, 50.0).unwrap()),
            fmt_x(percentile(bucket, 90.0).unwrap()),
            bucket.len().to_string(),
        ]);
    }
    t.row(&[
        "all jobs (paper: mean 1.42x, P50 1.07x, P90 1.98x)".into(),
        fmt_x(all.iter().sum::<f64>() / all.len().max(1) as f64),
        fmt_x(percentile(&all, 50.0).unwrap_or(f64::NAN)),
        fmt_x(percentile(&all, 90.0).unwrap_or(f64::NAN)),
        all.len().to_string(),
    ]);
    out.push_str(&t.render());
    out
}

/// **Table 2** — scheduling overhead: schedule-compute latency, broken
/// into ordering (LCoF), all-or-none, and work-conservation phases.
pub fn table2(lab: &mut Lab) -> String {
    use saath_core::SchedTimings;
    use saath_simulator::{simulate, SimConfig};
    use saath_workload::DynamicsSpec;

    let trace = lab.trace(Workload::Fb).clone();

    let mut saath = saath_core::Saath::with_defaults();
    simulate(
        &trace,
        &mut saath,
        &SimConfig::default(),
        &DynamicsSpec::none(),
    )
    .unwrap();
    let mut aalo = saath_core::Aalo::with_defaults();
    simulate(
        &trace,
        &mut aalo,
        &SimConfig::default(),
        &DynamicsSpec::none(),
    )
    .unwrap();

    let mut t = Table::new(
        "Table 2 — coordinator schedule-compute time (this implementation)",
        &[
            "column",
            "Saath avg (ms)",
            "Saath P90 (ms)",
            "Aalo avg (ms)",
            "Aalo P90 (ms)",
        ],
    );
    let f = |v: (f64, f64)| (format!("{:.4}", v.0), format!("{:.4}", v.1));
    let (sa, sp) = f(saath.timings.total_avg_p90_ms());
    let (aa, ap) = f(aalo.timings.total_avg_p90_ms());
    t.row(&[
        "total (paper: 0.57 / 2.85 vs 0.1 / 0.2)".into(),
        sa,
        sp,
        aa,
        ap,
    ]);
    let (oa, op) = f(SchedTimings::avg_p90_ms(&saath.timings.ordering));
    t.row(&[
        "ordering+LCoF (paper: 0.02 / 0.03)".into(),
        oa,
        op,
        "-".into(),
        "-".into(),
    ]);
    let (na, np) = f(SchedTimings::avg_p90_ms(&saath.timings.all_or_none));
    t.row(&[
        "all-or-none (paper: 0.24 / 0.7)".into(),
        na,
        np,
        "-".into(),
        "-".into(),
    ]);
    let (wa, wp) = f(SchedTimings::avg_p90_ms(&saath.timings.work_conservation));
    t.row(&[
        "work conservation (rest)".into(),
        wa,
        wp,
        "-".into(),
        "-".into(),
    ]);
    t.row(&[
        "rounds / max active CoFlows".into(),
        saath.timings.rounds().to_string(),
        saath
            .timings
            .active_coflows
            .iter()
            .max()
            .copied()
            .unwrap_or(0)
            .to_string(),
        aalo.timings.rounds().to_string(),
        aalo.timings
            .active_coflows
            .iter()
            .max()
            .copied()
            .unwrap_or(0)
            .to_string(),
    ]);
    t.row(&[
        "starvation rounds (paper: <1%)".into(),
        fmt_pct(saath.starvation_kicks as f64 / saath.timings.rounds().max(1) as f64),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.render()
}

/// **Dynamics ablation** (§4.3, beyond the paper's figures): inject
/// stragglers and node failures into the FB-like replay and compare
/// Saath with and without the SRTF-style re-queue heuristic, plus the
/// skew-aware threshold extension the paper sketches. This is the
/// ablation DESIGN.md commits to for the cluster-dynamics design
/// choices.
pub fn dynamics(lab: &mut Lab) -> String {
    use saath_simulator::{run_policy, SimConfig};
    use saath_workload::DynamicsSpec;

    let trace = lab.trace(Workload::Fb).clone();
    let horizon = trace.arrival_span();
    let spec = DynamicsSpec::random(
        lab.seed(),
        trace.num_nodes,
        horizon,
        0.20,                                   // 20% of nodes straggle…
        saath_simcore::Duration::from_secs(60), // …for 60 s…
        1,
        10,   // …at 1/10 capacity
        0.15, // 15% of nodes fail once
        saath_simcore::Duration::from_secs(2),
    );
    // CoFlows whose flows touch a failed node — the population the §4.3
    // heuristic exists for (gang scheduling keeps straggler-slowed
    // CoFlows synchronized, so restarts are where estimates help).
    let failed_nodes: std::collections::HashSet<_> = spec
        .events
        .iter()
        .filter_map(|e| match e {
            saath_workload::DynamicsEvent::NodeFailure { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    let affected: std::collections::HashSet<_> = trace
        .coflows
        .iter()
        .filter(|c| {
            c.flows
                .iter()
                .any(|f| failed_nodes.contains(&f.src) || failed_nodes.contains(&f.dst))
        })
        .map(|c| c.id)
        .collect();

    let mut t = Table::new(
        format!(
            "Dynamics ablation — stragglers + failures on the FB trace              ({} CoFlows touch a failed node)",
            affected.len()
        ),
        &["variant", "avg CCT (s)", "P90 (s)", "affected avg (s)", "affected P90 (s)"],
    );
    let variants: Vec<(&str, SaathConfig)> = vec![
        ("saath (full, §4.3 heuristic on)", SaathConfig::default()),
        (
            "saath without dynamics re-queue",
            SaathConfig {
                dynamics_srtf: false,
                ..Default::default()
            },
        ),
        (
            "saath + skew-aware thresholds",
            SaathConfig {
                skew_aware_thresholds: true,
                ..Default::default()
            },
        ),
    ];
    for (label, cfg) in variants {
        let out = run_policy(&trace, &Policy::Saath(cfg), &SimConfig::default(), &spec)
            .expect("dynamics run");
        let ccts: Vec<f64> = out.records.iter().map(|r| r.cct().as_secs_f64()).collect();
        let hit: Vec<f64> = out
            .records
            .iter()
            .filter(|r| affected.contains(&r.id))
            .map(|r| r.cct().as_secs_f64())
            .collect();
        t.row(&[
            label.into(),
            format!("{:.3}", ccts.iter().sum::<f64>() / ccts.len().max(1) as f64),
            format!("{:.3}", percentile(&ccts, 90.0).unwrap_or(f64::NAN)),
            format!("{:.3}", hit.iter().sum::<f64>() / hit.len().max(1) as f64),
            format!("{:.3}", percentile(&hit, 90.0).unwrap_or(f64::NAN)),
        ]);
    }
    t.render()
}

/// **Fig 17 / Appendix A** — the exact worked example: SJF (via SEBF)
/// vs contention-aware LWTF.
pub fn fig17(lab: &Lab) -> String {
    let trace = saath_workload::paper_examples::fig17_sjf_suboptimal();
    let sebf = lab.run_trace(&trace, &Policy::Varys, 8_000_000);
    let lwtf = lab.run_trace(&trace, &Policy::Lwtf, 8_000_000);
    let avg = |r: &[CoflowRecord]| {
        if r.is_empty() {
            0.0
        } else {
            r.iter().map(|x| x.cct().as_secs_f64()).sum::<f64>() / r.len() as f64
        }
    };
    let mut t = Table::new(
        "Fig 17 — SJF is sub-optimal for CoFlows (t = 1 s units)",
        &["policy", "C1", "C2", "C3", "average (paper)"],
    );
    let row = |r: &[CoflowRecord], name: &str, paper: &str| {
        let c = |i: usize| format!("{:.2}", r[i].cct().as_secs_f64());
        vec![
            name.to_string(),
            c(0),
            c(1),
            c(2),
            format!("{:.2} ({paper})", avg(r)),
        ]
    };
    t.row(&row(&sebf, "SJF/SEBF", "9.3"));
    t.row(&row(&lwtf, "LWTF", "8.3"));
    t.render()
}

/// Number of flows in a trace.
fn flow_count(t: &saath_workload::Trace) -> usize {
    t.coflows.iter().map(|c| c.flows.len()).sum::<usize>()
}

/// An FB-like trace grown until it carries ≥ 10k flows, with arrivals
/// compressed into 100 s so many CoFlows are concurrently active —
/// the regime where the reference loop's O(active state) per-epoch cost
/// shows and where the telemetry mechanisms (queue transitions,
/// deadline rescues, stale pops) all fire.
fn grown_fb_trace(seed: u64) -> saath_workload::Trace {
    use saath_workload::gen;
    let mut gcfg = gen::fb_like(seed);
    gcfg.span = saath_simcore::Duration::from_secs(100);
    let mut trace = gen::generate(&gcfg);
    while flow_count(&trace) < 10_000 {
        gcfg.num_coflows += 100;
        trace = gen::generate(&gcfg);
    }
    trace
}

/// Event-log options for `repro epoch` / `repro scale` (`--log PATH`,
/// `--snapshot-every N`, `--resume-from PATH`). When active, the
/// baseline gains one extra *untimed* replay that records the
/// hash-chained event log (and resumes from a prior log's last
/// snapshot), so the timed runs never carry logging overhead.
pub struct LogOptions {
    /// Write the replay's event log to this path.
    pub log: Option<std::path::PathBuf>,
    /// Snapshot cadence in rounds (0 disables snapshots).
    pub snapshot_every: u64,
    /// Resume from the last snapshot of this previously recorded log.
    pub resume_from: Option<std::path::PathBuf>,
}

impl LogOptions {
    /// No logging, no snapshots, no resume — epoch/scale behave exactly
    /// as before the event log existed.
    pub fn none() -> Self {
        LogOptions {
            log: None,
            snapshot_every: 0,
            resume_from: None,
        }
    }

    fn active(&self) -> bool {
        self.log.is_some() || self.resume_from.is_some()
    }
}

/// The extra untimed replay behind `--log` / `--resume-from`: replays
/// `trace` under a fresh default Saath with the event-log sink attached,
/// chain-verifies the recorded bytes, asserts the records byte-match
/// `expect` (the timed benchmark run), and reports the log telemetry
/// counters. Panics on any mismatch — a benchmark whose log diverges
/// from its own timed run is a bug, not a degraded result.
fn logged_replay(
    trace: &saath_workload::Trace,
    cfg: &saath_simulator::SimConfig,
    dynamics: &saath_workload::DynamicsSpec,
    opts: &LogOptions,
    expect: &[CoflowRecord],
) -> String {
    use saath_core::CoflowScheduler as _;
    use saath_eventlog::{index_log, verify, ChainDigest, EventLogWriter, LogHeader};
    use saath_simulator::{simulate_resumable, ReplayHooks};
    use saath_telemetry::Counter;

    // Resume point, if requested: the prior log's last snapshot that
    // still has rounds after it (a cadence hitting the final round
    // exactly would otherwise make the continuation trivially empty),
    // falling back to the very last one.
    let snap = opts.resume_from.as_ref().map(|path| {
        let bytes = std::fs::read(path)
            .unwrap_or_else(|e| panic!("--resume-from: cannot read {}: {e}", path.display()));
        let idx = index_log(&bytes).unwrap_or_else(|e| {
            panic!("--resume-from: {} is not an event log: {e}", path.display())
        });
        let total = idx.rounds.last().map(|r| r.round + 1);
        idx.snapshots
            .iter()
            .rev()
            .find(|s| Some(s.round) < total)
            .or_else(|| idx.last_snapshot())
            .cloned()
            .unwrap_or_else(|| {
                panic!(
                    "--resume-from: {} holds no snapshot (record it with --snapshot-every N)",
                    path.display()
                )
            })
    });
    let (start_round, start_digest) = snap
        .as_ref()
        .map(|s| (s.round, s.digest))
        .unwrap_or((0, ChainDigest::ZERO));

    let mut sched = saath_core::Saath::with_defaults();
    let header = LogHeader {
        num_nodes: trace.num_nodes as u64,
        port_rate: trace.port_rate.as_u64(),
        delta_ns: cfg.delta.as_nanos(),
        scheduler: sched.name().into(),
        trace_digest: ChainDigest::ZERO,
        start_round,
        start_digest,
    };
    let mut w = EventLogWriter::new(Vec::new(), &header).expect("event-log header write failed");
    let mut tele = saath_telemetry::Telemetry::new();
    let out = simulate_resumable(
        trace,
        &mut sched,
        cfg,
        dynamics,
        Some(&mut tele),
        ReplayHooks {
            sink: Some(&mut w),
            snapshot_every: opts.snapshot_every,
            resume_from: snap.as_ref().map(|s| s.blob.as_slice()),
        },
    )
    .unwrap_or_else(|e| panic!("logged replay failed: {e}"));
    assert_eq!(
        out.records, expect,
        "logged/resumed replay diverged from the timed benchmark run"
    );

    let bytes = w.into_inner().expect("event-log flush failed");
    let summary = verify(&bytes[..]).expect("freshly recorded log failed chain verification");
    tele.incr(Counter::LogChainVerifies);
    let mut line = format!(
        "event log: rounds {}..{} ({} new), {} snapshot(s), {} B, chain {}, \
         records identical to the timed run",
        summary.start_round,
        summary.start_round + summary.rounds,
        summary.rounds,
        summary.snapshots,
        bytes.len(),
        summary.digest.to_hex(),
    );
    if let Some(path) = &opts.log {
        match std::fs::write(path, &bytes) {
            Ok(()) => line.push_str(&format!("\nevent log written to {}", path.display())),
            Err(e) => line.push_str(&format!(
                "\nwarning: could not write event log {}: {e}",
                path.display()
            )),
        }
    }
    if saath_telemetry::enabled() {
        line.push_str(&format!(
            "\nlog counters: log_rounds_appended={} log_bytes_written={} \
             log_snapshots={} log_chain_verifies={}",
            tele.counter(Counter::LogRoundsAppended),
            tele.counter(Counter::LogBytesWritten),
            tele.counter(Counter::LogSnapshots),
            tele.counter(Counter::LogChainVerifies),
        ));
    }
    line
}

/// **verify** — streams a recorded event log through the O(1)-memory
/// chain verifier and returns the summary line; a broken chain (or bad
/// framing / I/O) comes back as `Err` so the CLI can exit nonzero.
pub fn verify_log(path: &std::path::Path) -> Result<String, String> {
    let s = saath_eventlog::verify_path(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(format!(
        "{}: OK — rounds {}..{} ({} round(s)), {} snapshot(s), chain digest {}",
        path.display(),
        s.start_round,
        s.start_round + s.rounds,
        s.rounds,
        s.snapshots,
        s.digest.to_hex(),
    ))
}

/// **diff** — the differential harness: aligns two recorded logs,
/// binary-searches the chained digests to the first divergent round,
/// and renders the minimal field-level diff of that round's schedule.
/// Returns the report plus whether a divergence was found (CLI exit
/// status).
pub fn diff_cmd(a: &std::path::Path, b: &std::path::Path) -> Result<(String, bool), String> {
    let ab = std::fs::read(a).map_err(|e| format!("cannot read {}: {e}", a.display()))?;
    let bb = std::fs::read(b).map_err(|e| format!("cannot read {}: {e}", b.display()))?;
    let d = saath_eventlog::diff_logs(&ab, &bb).map_err(|e| e.to_string())?;
    let report = format!("A = {}\nB = {}\n{}", a.display(), b.display(), d.render());
    Ok((report, d.first_divergent_round.is_some()))
}

/// Renders a simulator run's instrumentation as a Prometheus text page
/// (the same exposition format the runtime's live `/metrics` endpoint
/// serves): the deterministic round count first, then the per-phase
/// wall-time summary under the section banner. `spans` is the merged
/// scheduler + engine profiler; `rounds` the replay's round count.
fn sim_metrics_page(spans: &saath_telemetry::SpanProfiler, rounds: u64) -> String {
    use saath_telemetry::prom::PromText;
    let mut p = PromText::new();
    p.section("deterministic");
    p.counter(
        "saath_sim_rounds_total",
        "Scheduling rounds the replay executed",
        &[("", rounds)],
    );
    p.section("wall-clock (nondeterministic values, stable layout)");
    let rows = spans.rows();
    if !rows.is_empty() {
        p.phase_summary(
            "saath_epoch_phase_ns",
            "Epoch lifecycle phase latency in nanoseconds",
            &rows,
        );
    }
    p.finish()
}

/// Writes a metrics page to `path` (`--metrics-out`), reporting on
/// stderr so `--json` stdout stays a clean document.
fn write_metrics_out(path: &std::path::Path, page: &str) {
    match std::fs::write(path, page) {
        Ok(()) => eprintln!("metrics exposition written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// **emulate** — runs the runtime coordinator/agent emulation once
/// (Saath policy, the fig 15/16 machinery) with the live metrics plane
/// attached: serves `/metrics` at `metrics_addr` for the run's
/// duration (default loopback, ephemeral port) and, with
/// `metrics_out`, dumps the final exposition page to a file. This is
/// the observability smoke entry — CCT analysis stays with `fig15`.
pub fn emulate_cmd(
    lab: &Lab,
    scale: u64,
    nodes_cap: usize,
    shards: usize,
    metrics_addr: Option<String>,
    metrics_out: Option<&std::path::Path>,
) -> String {
    use saath_runtime::{emulate, EmulationConfig};

    let mut trace = lab.trace(Workload::Fb).clone();
    if trace.num_nodes > nodes_cap {
        for c in &mut trace.coflows {
            for f in &mut c.flows {
                f.src = saath_simcore::NodeId(f.src.0 % nodes_cap as u32);
                f.dst = saath_simcore::NodeId(f.dst.0 % nodes_cap as u32);
            }
        }
        trace.num_nodes = nodes_cap;
    }

    // The harness reports the resolved (possibly ephemeral) address on
    // stderr once the endpoint is bound.
    let addr = metrics_addr.unwrap_or_else(|| "127.0.0.1:0".into());
    let cfg = EmulationConfig {
        scale,
        shards,
        metrics_addr: Some(addr),
        wall_deadline: std::time::Duration::from_secs(600),
        ..Default::default()
    };
    let report = emulate(
        &trace,
        &|| Box::new(saath_core::Saath::with_defaults()),
        &cfg,
    );

    let mut t = Table::new(
        "Runtime emulation — live metrics plane",
        &["metric", "value"],
    );
    t.row(&["nodes".into(), trace.num_nodes.to_string()]);
    t.row(&["coflows".into(), trace.coflows.len().to_string()]);
    t.row(&["shards".into(), cfg.shards.to_string()]);
    t.row(&[
        "completed".into(),
        report.coordinator.records.len().to_string(),
    ]);
    t.row(&["epochs".into(), report.coordinator.epochs.to_string()]);
    t.row(&[
        "timed out".into(),
        if report.coordinator.timed_out {
            "YES".into()
        } else {
            "no".into()
        },
    ]);
    let mut out = t.render();

    let page = report.metrics.expect("metrics_addr was set");
    if let Some(path) = metrics_out {
        write_metrics_out(path, &page);
    }
    // The deterministic section is small and worth printing; the
    // wall-clock phase summary follows for the curious.
    out.push_str(&page);
    out
}

/// **emulate --multiplex** — the readiness-driven host sweep: emulated
/// cluster sizes up to `--nodes`, each run multiplexing the agents
/// onto at most 64 host threads ([`saath_runtime::run_agent_host`])
/// instead of one thread per node. The workload is a synthetic
/// width-2 coflow set spread across the whole port range, so schedule
/// pushes and stats traverse many hosts while the active flow count
/// stays bounded — the sweep measures the host fabric (thread count,
/// shared links, readiness loop, hello wave), not the scheduler.
/// Writes `BENCH_emulate_scale.json` (skipped for `small` smoke runs);
/// with `json`, returns the JSON document instead of the table.
pub fn emulate_scale_cmd(
    lab: &Lab,
    scale: u64,
    nodes_cap: usize,
    small: bool,
    json: bool,
) -> String {
    use saath_runtime::{emulate, EmulationConfig};
    use saath_simcore::{Bytes, CoflowId, NodeId, Rate, Time};
    use saath_workload::{CoflowSpec, FlowSpec, Trace};

    /// Host-thread ceiling: every sweep point runs on at most this
    /// many agent threads, whatever its node count.
    const MAX_HOSTS: usize = 64;

    let top = nodes_cap.max(8);
    let mut points = vec![top.div_ceil(25).max(8), top.div_ceil(5).max(8), top];
    points.sort_unstable();
    points.dedup();
    let n_coflows = if small { 4 } else { 16 };
    let flow_mb = if small { 5 } else { 20 };

    let synth = |nodes: usize| -> Trace {
        let half = (nodes / 2).max(1);
        let coflows = (0..n_coflows)
            .map(|i| {
                let src = (i * 97) % half;
                let dst = half + (i * 131) % (nodes - half).max(1);
                CoflowSpec::new(
                    CoflowId(i as u32),
                    Time::from_millis(100 * i as u64),
                    vec![
                        FlowSpec::new(NodeId(src as u32), NodeId(dst as u32), Bytes::mb(flow_mb)),
                        FlowSpec::new(
                            NodeId(((i * 53 + 1) % half) as u32),
                            NodeId(dst as u32),
                            Bytes::mb(flow_mb),
                        ),
                    ],
                )
            })
            .collect();
        Trace {
            num_nodes: nodes,
            port_rate: Rate::gbps(1),
            coflows,
        }
    };

    let mut t = Table::new(
        "Multiplexed emulation sweep — N emulated ports on O(hosts) threads",
        &[
            "nodes",
            "hosts",
            "agents/host",
            "coflows",
            "completed",
            "epochs",
            "wall ms",
        ],
    );
    let mut docs = Vec::new();
    for &nodes in &points {
        let per_host = nodes.div_ceil(MAX_HOSTS);
        let hosts = nodes.div_ceil(per_host);
        let trace = synth(nodes);
        let cfg = EmulationConfig {
            scale,
            multiplex: per_host,
            wall_deadline: std::time::Duration::from_secs(600),
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let report = emulate(
            &trace,
            &|| Box::new(saath_core::Saath::with_defaults()),
            &cfg,
        );
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            !report.coordinator.timed_out,
            "emulate sweep point {nodes} hit the wall deadline"
        );
        let completed = report.coordinator.records.len();
        assert_eq!(
            completed,
            trace.coflows.len(),
            "emulate sweep point {nodes} lost coflows"
        );
        eprintln!(
            "[emulate-scale] {nodes} nodes on {hosts} hosts ({per_host}/host): \
             {completed} coflows in {wall_ms:.0} ms"
        );
        t.row(&[
            nodes.to_string(),
            hosts.to_string(),
            per_host.to_string(),
            trace.coflows.len().to_string(),
            completed.to_string(),
            report.coordinator.epochs.to_string(),
            format!("{wall_ms:.1}"),
        ]);
        docs.push(format!(
            "    {{\n      \"nodes\": {nodes},\n      \"hosts\": {hosts},\n      \
             \"agents_per_host\": {per_host},\n      \"coflows\": {},\n      \
             \"completed\": {completed},\n      \"epochs\": {},\n      \
             \"wall_ms\": {wall_ms:.1}\n    }}",
            trace.coflows.len(),
            report.coordinator.epochs,
        ));
    }
    let json_doc = format!(
        "{{\n  \"experiment\": \"emulate_scale\",\n  \"seed\": {},\n  \
         \"scale\": {scale},\n  \"transport\": \"inproc\",\n  \
         \"max_hosts\": {MAX_HOSTS},\n  \"points\": [\n{}\n  ]\n}}\n",
        lab.seed(),
        docs.join(",\n"),
    );
    if !small {
        if let Err(e) = std::fs::write("BENCH_emulate_scale.json", &json_doc) {
            eprintln!("warning: could not write BENCH_emulate_scale.json: {e}");
        }
    }
    if json {
        return json_doc;
    }
    t.render()
}

/// **Epoch loop** — not a paper figure: the wall-clock baseline of the
/// incremental simulation engine against the recompute-everything
/// reference loop it replaced, on an FB-like workload grown to ≥ 10k
/// flows. Also asserts the two loops emit byte-identical
/// [`CoflowRecord`]s, so the speedup is never bought with drift.
/// Writes `BENCH_epoch_loop.json` in the working directory; with
/// `json`, returns the JSON document instead of the rendered table.
///
/// When the lab's FB workload was loaded from a real coflow-benchmark
/// file (`repro epoch --trace PATH`), that file is streamed through the
/// ingestion path instead of the generator preset and the baseline goes
/// to `BENCH_epoch_fb_trace.json` — a second, trace-driven baseline.
/// (The published Facebook trace is not redistributable here; `repro
/// gen-trace` writes a full-size stand-in in the same format.)
pub fn epoch(
    lab: &Lab,
    json: bool,
    small: bool,
    log: &LogOptions,
    metrics_out: Option<&std::path::Path>,
) -> String {
    use saath_simulator::{simulate, simulate_reference, simulate_with_telemetry, SimConfig};
    use saath_workload::DynamicsSpec;
    use std::time::Instant;

    // `small` runs the lab's FB trace instead of the grown ≥ 10k-flow
    // workload (CI smoke, like `scale --small`) and skips the BENCH
    // file so smoke numbers never overwrite a recorded baseline.
    let (trace, source, bench_file) = if lab.fb_is_real() {
        (
            lab.trace(Workload::Fb).clone(),
            "coflow-benchmark-file",
            Some("BENCH_epoch_fb_trace.json"),
        )
    } else if small {
        (lab.trace(Workload::Fb).clone(), "lab-small-fb", None)
    } else {
        (
            grown_fb_trace(lab.seed()),
            "generator-grown-fb",
            Some("BENCH_epoch_loop.json"),
        )
    };
    let flows = flow_count(&trace);

    // Both loops call the *same* scheduler on the *same* views at the
    // same times, so scheduler compute time is a shared constant
    // (Amdahl). Report the end-to-end wall clock AND the loop overhead
    // (total − in-scheduler time from `SchedTimings`): the latter is
    // what the incremental restructure actually changed.
    let cfg = SimConfig::default();
    let dynamics = DynamicsSpec::none();
    let time_runs = |reference: bool, runs: usize| {
        let (mut best_total, mut best_loop) = (f64::INFINITY, f64::INFINITY);
        let mut last = None;
        for _ in 0..runs {
            let mut sched = saath_core::Saath::with_defaults();
            let t = Instant::now();
            let out = if reference {
                simulate_reference(&trace, &mut sched, &cfg, &dynamics)
            } else {
                simulate(&trace, &mut sched, &cfg, &dynamics)
            }
            .expect("epoch-loop simulation failed");
            let total = t.elapsed().as_secs_f64() * 1e3;
            let compute = sched
                .timings
                .total
                .iter()
                .map(|x| x.as_secs_f64() * 1e3)
                .sum::<f64>();
            best_total = best_total.min(total);
            best_loop = best_loop.min(total - compute);
            last = Some(out);
        }
        (best_total, best_loop, last.unwrap())
    };
    let (inc_total, inc_loop, inc) = time_runs(false, 3);
    let (ref_total, ref_loop, re) = time_runs(true, 2);

    let identical = inc.records == re.records && inc.end == re.end;
    assert!(
        identical,
        "incremental loop diverged from the reference loop"
    );
    let total_speedup = ref_total / inc_total;
    let loop_speedup = ref_loop / inc_loop;

    // A separate *untimed* instrumented run collects the engine
    // counters (heap traffic, stale-pop ratio, dirty-set sizes). It is
    // deliberately excluded from the timing loop above so the baseline
    // numbers never include instrumentation, whatever the feature state.
    let mut tele = saath_telemetry::Telemetry::new();
    let mut spans = {
        let mut sched = saath_core::Saath::with_defaults();
        simulate_with_telemetry(&trace, &mut sched, &cfg, &dynamics, Some(&mut tele))
            .expect("instrumented epoch-loop run failed");
        sched.timings.spans.clone()
    };
    // One profile across both layers: scheduler phases (sched_*) from
    // `SchedTimings`, engine sections (engine_*) from the telemetry run.
    spans.merge(&tele.spans);
    let stale_ratio = tele.stale_pop_ratio();
    let mean_dirty = tele.dirty_set.mean();

    // `--log` / `--resume-from`: one more untimed replay, recording the
    // hash-chained event log and pinning its records to the timed run.
    // Reported on stderr so `--json` stdout stays a clean document.
    if log.active() {
        eprintln!(
            "{}",
            logged_replay(&trace, &cfg, &dynamics, log, &inc.records)
        );
    }

    // The vendored serde stub cannot serialize, so the baseline is
    // formatted by hand — it is a flat object of scalars.
    let json_doc = format!(
        "{{\n  \"experiment\": \"epoch_loop\",\n  \"seed\": {seed},\n  \
         \"trace_source\": \"{source}\",\n  \
         \"num_nodes\": {nodes},\n  \"num_coflows\": {coflows},\n  \
         \"num_flows\": {flows},\n  \"delta_ms\": 8,\n  \
         \"rounds\": {rounds},\n  \
         \"total_reference_ms\": {ref_total:.1},\n  \
         \"total_incremental_ms\": {inc_total:.1},\n  \
         \"total_speedup\": {total_speedup:.2},\n  \
         \"loop_reference_ms\": {ref_loop:.1},\n  \
         \"loop_incremental_ms\": {inc_loop:.1},\n  \
         \"loop_speedup\": {loop_speedup:.2},\n  \
         \"records_identical\": true,\n  \
         \"telemetry_enabled\": {tele_on},\n  \
         \"heap_pushes\": {pushes},\n  \
         \"heap_compactions\": {compactions},\n  \
         \"stale_pop_ratio\": {stale_ratio:.4},\n  \
         \"mean_dirty_set\": {mean_dirty:.1},\n  \
         \"max_heap_len\": {max_heap}\n}}\n",
        seed = lab.seed(),
        nodes = trace.num_nodes,
        coflows = trace.coflows.len(),
        rounds = inc.rounds,
        tele_on = saath_telemetry::enabled(),
        pushes = tele.counter(saath_telemetry::Counter::HeapPush),
        compactions = tele.counter(saath_telemetry::Counter::HeapCompactions),
        max_heap = tele.heap_len.max,
    );
    if let Some(bench_file) = bench_file {
        if let Err(e) = std::fs::write(bench_file, &json_doc) {
            eprintln!("warning: could not write {bench_file}: {e}");
        }
    }
    if let Some(path) = metrics_out {
        write_metrics_out(path, &sim_metrics_page(&spans, inc.rounds));
    }
    if json {
        return json_doc;
    }

    let mut t = Table::new(
        "Epoch loop — incremental engine vs reference loop",
        &["metric", "reference", "incremental", "speedup"],
    );
    t.row(&[
        "trace".into(),
        format!("{} coflows", trace.coflows.len()),
        format!("{flows} flows"),
        format!("{} rounds", inc.rounds),
    ]);
    t.row(&[
        "end-to-end (best ms)".into(),
        format!("{ref_total:.1}"),
        format!("{inc_total:.1}"),
        fmt_x(total_speedup),
    ]);
    t.row(&[
        "epoch loop only (best ms)".into(),
        format!("{ref_loop:.1}"),
        format!("{inc_loop:.1}"),
        fmt_x(loop_speedup),
    ]);
    t.row(&[
        "records identical".into(),
        "yes".into(),
        "yes".into(),
        "—".into(),
    ]);
    t.row(&[
        "stale pops / mean dirty set".into(),
        fmt_pct(stale_ratio),
        format!("{mean_dirty:.1}"),
        if saath_telemetry::enabled() {
            "telemetry on".into()
        } else {
            "telemetry off".into()
        },
    ]);
    let mut out = t.render();
    out.push_str(
        &saath_metrics::phase_table("epoch loop (untimed instrumented run)", &spans).render(),
    );
    out
}

/// An FB-like trace at an explicit cluster size, grown until it carries
/// at least `target_flows` flows (arrivals compressed into 100 s so the
/// active set — and with it the per-round contention work — scales with
/// the flow count).
fn grown_trace_at(seed: u64, nodes: usize, target_flows: usize) -> saath_workload::Trace {
    use saath_workload::gen;
    let mut gcfg = gen::fb_like(seed);
    gcfg.num_nodes = nodes;
    gcfg.max_width = (nodes * nodes).min(gcfg.max_width);
    gcfg.span = saath_simcore::Duration::from_secs(100);
    let mut trace = gen::generate(&gcfg);
    while flow_count(&trace) < target_flows {
        // Jump proportionally instead of stepping: 100k-flow points
        // would otherwise regenerate the trace hundreds of times.
        let have = flow_count(&trace).max(1);
        gcfg.num_coflows = (gcfg.num_coflows * target_flows)
            .div_ceil(have)
            .max(gcfg.num_coflows + 50);
        trace = gen::generate(&gcfg);
    }
    trace
}

/// **gen-trace** — writes the grown FB-like workload (the `epoch`
/// baseline's trace: ≥ 10k flows on 150 nodes) to `out` in the
/// published `coflow-benchmark` text format. The real Facebook trace is
/// not redistributable with this repository; this produces a full-size
/// stand-in in the identical format, so `repro epoch --trace <out>`
/// exercises the exact file-streaming ingestion path the published
/// trace would.
pub fn gen_trace(seed: u64, out: &std::path::Path) -> String {
    let trace = grown_fb_trace(seed);
    let text = saath_workload::io::write_coflow_benchmark(&trace);
    if let Err(e) = std::fs::write(out, &text) {
        return format!("error: could not write {}: {e}", out.display());
    }
    format!(
        "wrote {}: {} nodes, {} coflows, {} flows, {} bytes (coflow-benchmark format)",
        out.display(),
        trace.num_nodes,
        trace.coflows.len(),
        flow_count(&trace),
        text.len()
    )
}

/// Per-mode measurements of one scalability-sweep point.
struct ScaleRun {
    wall_ms: f64,
    rounds: u64,
    rounds_per_sec: f64,
    sched_ms: f64,
    contention_ms: f64,
    ordering_ms: f64,
    all_or_none_ms: f64,
    work_conservation_ms: f64,
    probe_ms: f64,
    merge_ms: f64,
    records: Vec<saath_metrics::CoflowRecord>,
    spans: saath_telemetry::SpanProfiler,
}

/// **Scalability sweep** (Fig 9's scale axis, §5.4) — not a CCT figure:
/// rounds/sec of the full replay loop as cluster size and flow count
/// grow from 150 nodes × 10k flows to 1k nodes × 100k flows, comparing
/// the per-round full recomputation (contention rebuild + LCoF
/// re-sort) against the incremental mode ([`ContentionTracker`] delta
/// update + `OrderBook` repositioning), with per-phase scheduler
/// timings for both. Asserts the two modes produce byte-identical
/// records at every point; `small` smoke runs additionally pin the
/// records to the O(state)-per-step reference simulation loop. Writes
/// `BENCH_scalability.json` (skipped for `small` smoke runs); with
/// `json`, returns the JSON document instead of the rendered table.
///
/// Built with `--features parallel` the same sweep also exercises the
/// sharded gang probes (probe/merge columns become non-zero), so serial
/// vs parallel is a rebuild of the same command.
///
/// `shards > 1` appends a shard-scaling sweep: the multi-coordinator
/// [`ShardedScheduler`](saath_runtime::ShardedScheduler) replayed on
/// the sweep's first point for K ∈ {1, 2, 4} ∩ [1, `shards`], asserting
/// byte-identical records at every K and reporting the reconciliation
/// overhead (K replicas of the policy + the flow-id-ordered merge).
///
/// `partitioned` extends that with the partitioned-compute mode
/// ([`PartitionedScheduler`](saath_simulator::PartitionedScheduler)):
/// K ∈ {2, 4} ∩ [1, `shards`] × staleness S ∈ {0, 1, 4, 16} (or just
/// `staleness` when given), on the sweep's smallest *and* largest
/// points. Every (nodes, K, S) entry reports the busiest shard's
/// sched_ms, its speedup over the single coordinator's sched_ms, and
/// the average CCT deviation from the single-coordinator records —
/// asserted exactly zero at S=0 (the replicated oracle contract). On
/// the smallest point each combination is additionally replayed with
/// an in-memory event log and diffed against the oracle's log to pin
/// `first_divergence_round` — the same alignment `repro diff` performs
/// on recorded logs.
#[allow(clippy::too_many_arguments)]
pub fn scale(
    lab: &Lab,
    json: bool,
    small: bool,
    shards: usize,
    partitioned: bool,
    staleness: Option<u64>,
    log: &LogOptions,
    metrics_out: Option<&std::path::Path>,
) -> String {
    use saath_simulator::{simulate, SimConfig};
    use saath_workload::DynamicsSpec;
    use std::time::Instant;

    let points: &[(usize, usize)] = if small {
        &[(40, 1_000), (80, 2_500)]
    } else {
        &[
            (150, 10_000),
            (300, 25_000),
            (600, 50_000),
            (1_000, 100_000),
        ]
    };
    let cfg = SimConfig::default();
    let dynamics = DynamicsSpec::none();

    let run_mode = |trace: &saath_workload::Trace, incremental: bool| -> ScaleRun {
        let mut sched = saath_core::Saath::new(SaathConfig {
            incremental_contention: incremental,
            incremental_order: incremental,
            ..SaathConfig::default()
        });
        let t = Instant::now();
        let out = simulate(trace, &mut sched, &cfg, &dynamics).expect("scale-sweep run failed");
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        // `.max(0.0)` normalizes the empty sum (−0.0 since Rust 1.74)
        // so absent probe/merge phases serialize as plain 0.0.
        let sum_ms = |v: &[std::time::Duration]| {
            v.iter()
                .map(|d| d.as_secs_f64() * 1e3)
                .sum::<f64>()
                .max(0.0)
        };
        ScaleRun {
            wall_ms,
            rounds: out.rounds,
            rounds_per_sec: out.rounds as f64 / (wall_ms / 1e3).max(1e-9),
            sched_ms: sum_ms(&sched.timings.total),
            contention_ms: sum_ms(&sched.timings.contention),
            ordering_ms: sum_ms(&sched.timings.ordering),
            all_or_none_ms: sum_ms(&sched.timings.all_or_none),
            work_conservation_ms: sum_ms(&sched.timings.work_conservation),
            probe_ms: sum_ms(&sched.timings.probe),
            merge_ms: sum_ms(&sched.timings.merge),
            records: out.records,
            spans: sched.timings.spans.clone(),
        }
    };
    let mode_json = |label: &str, r: &ScaleRun| {
        format!(
            "      \"{label}\": {{\n        \"wall_ms\": {:.1},\n        \
             \"rounds_per_sec\": {:.1},\n        \"sched_ms\": {:.1},\n        \
             \"contention_ms\": {:.1},\n        \"ordering_ms\": {:.1},\n        \
             \"all_or_none_ms\": {:.1},\n        \"work_conservation_ms\": {:.1},\n        \
             \"probe_ms\": {:.1},\n        \"merge_ms\": {:.1}\n      }}",
            r.wall_ms,
            r.rounds_per_sec,
            r.sched_ms,
            r.contention_ms,
            r.ordering_ms,
            r.all_or_none_ms,
            r.work_conservation_ms,
            r.probe_ms,
            r.merge_ms,
        )
    };

    let mut t = Table::new(
        "Scalability sweep — rounds/sec, full recompute vs incremental contention + order",
        &[
            "nodes",
            "flows",
            "rounds",
            "rebuild r/s",
            "incr r/s",
            "speedup",
            "k_c ms (reb → inc)",
            "order ms (reb → inc)",
        ],
    );
    let mut point_docs = Vec::new();
    // Per-phase latency distribution of the incremental mode, pooled
    // across every sweep point (each point feeds its per-round samples).
    let mut inc_spans = saath_telemetry::SpanProfiler::new();
    // Single-coordinator oracle (records + sched_ms) per point, kept
    // for the partitioned sweep's deviation/speedup comparisons.
    let mut oracles: Vec<(Vec<CoflowRecord>, f64)> = Vec::new();
    for (pi, &(nodes, target_flows)) in points.iter().enumerate() {
        let trace = grown_trace_at(lab.seed(), nodes, target_flows);
        let flows = flow_count(&trace);
        let rebuild = run_mode(&trace, false);
        let incremental = run_mode(&trace, true);
        inc_spans.merge(&incremental.spans);
        if pi == 0 && log.active() {
            // `--log` / `--resume-from` record the sweep's first point
            // (the one a prior invocation with the same seed also ran),
            // untimed, pinned to the timed incremental records.
            eprintln!(
                "{}",
                logged_replay(&trace, &cfg, &dynamics, log, &incremental.records)
            );
        }
        assert_eq!(
            rebuild.records, incremental.records,
            "incremental contention/order changed the schedule at {nodes} nodes"
        );
        assert_eq!(rebuild.rounds, incremental.rounds);
        if small {
            // Smoke runs additionally pin both modes to the original
            // O(state)-per-step reference loop: a third, independent
            // implementation that must produce the exact same records.
            let mut sched = saath_core::Saath::with_defaults();
            let refr = saath_simulator::simulate_reference(&trace, &mut sched, &cfg, &dynamics)
                .expect("scale-sweep reference run failed");
            assert_eq!(
                refr.records, incremental.records,
                "scheduling records diverged from the reference loop at {nodes} nodes"
            );
        }
        let speedup = incremental.rounds_per_sec / rebuild.rounds_per_sec.max(1e-9);
        t.row(&[
            nodes.to_string(),
            flows.to_string(),
            incremental.rounds.to_string(),
            format!("{:.1}", rebuild.rounds_per_sec),
            format!("{:.1}", incremental.rounds_per_sec),
            fmt_x(speedup),
            format!(
                "{:.1} → {:.1}",
                rebuild.contention_ms, incremental.contention_ms
            ),
            format!(
                "{:.1} → {:.1}",
                rebuild.ordering_ms, incremental.ordering_ms
            ),
        ]);
        point_docs.push(format!(
            "    {{\n      \"nodes\": {nodes},\n      \"coflows\": {},\n      \
             \"flows\": {flows},\n      \"rounds\": {},\n      \
             \"records_identical\": true,\n      \
             \"rounds_per_sec_speedup\": {speedup:.2},\n\
             {},\n{}\n    }}",
            trace.coflows.len(),
            incremental.rounds,
            mode_json("full_rebuild", &rebuild),
            mode_json("incremental", &incremental),
        ));
        oracles.push((incremental.records.clone(), incremental.sched_ms));
    }

    // Shard-scaling sweep: the multi-coordinator mode on the sweep's
    // first (smallest) point. Each shard replicates the full policy, so
    // wall time grows ~K× — the sweep reports that honestly; what
    // sharding buys is failure-domain division, not compute division.
    let mut shard_docs = Vec::new();
    let mut shard_rows: Vec<[String; 5]> = Vec::new();
    if shards > 1 {
        let (nodes, target_flows) = points[0];
        let trace = grown_trace_at(lab.seed(), nodes, target_flows);
        let flows = flow_count(&trace);
        let mut baseline: Option<(f64, Vec<saath_metrics::CoflowRecord>)> = None;
        for k in [1usize, 2, 4] {
            if k > shards {
                break;
            }
            let mut sched = saath_runtime::ShardedScheduler::new(k, || {
                Box::new(saath_core::Saath::with_defaults())
            });
            let t0 = Instant::now();
            let out =
                simulate(&trace, &mut sched, &cfg, &dynamics).expect("shard-sweep run failed");
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let (base_ms, base_records) = baseline.get_or_insert((wall_ms, out.records.clone()));
            assert_eq!(
                &out.records, base_records,
                "K={k} shards diverged from the single-coordinator records"
            );
            let overhead = wall_ms / base_ms.max(1e-9);
            shard_rows.push([
                k.to_string(),
                nodes.to_string(),
                flows.to_string(),
                format!("{wall_ms:.1}"),
                fmt_x(overhead),
            ]);
            shard_docs.push(format!(
                "    {{\n      \"shards\": {k},\n      \"nodes\": {nodes},\n      \
                 \"mode\": \"replicated\",\n      \"staleness\": 0,\n      \
                 \"coflows\": {},\n      \"flows\": {flows},\n      \
                 \"wall_ms\": {wall_ms:.1},\n      \
                 \"replication_overhead\": {overhead:.2},\n      \
                 \"records_identical\": true\n    }}",
                trace.coflows.len(),
            ));
        }
    }

    // Partitioned-compute sweep: per-shard views + bounded-staleness
    // summaries, on the smallest and largest points. The entries share
    // the `shard_sweep` array with the replicated mode above —
    // bench-diff keys them by (nodes, shards, mode, staleness), so the
    // two modes never collide.
    let mut part_rows: Vec<[String; 8]> = Vec::new();
    if partitioned && shards > 1 {
        use saath_eventlog::{diff_logs, ChainDigest, EventLogWriter, LogHeader};
        use saath_metrics::deviation::avg_cct_deviation;
        use saath_simulator::{simulate_resumable, PartitionedScheduler, ReplayHooks};

        let staleness_grid: Vec<u64> = match staleness {
            Some(s) => vec![s],
            None => vec![0, 1, 4, 16],
        };
        let ks: Vec<usize> = [2usize, 4]
            .iter()
            .copied()
            .filter(|&k| k <= shards)
            .collect();
        let part_points: Vec<usize> = if small || points.len() == 1 {
            vec![0]
        } else {
            vec![0, points.len() - 1]
        };
        // Record one run with an in-memory event log sink; returns the
        // log bytes alongside the engine output.
        let logged = |trace: &saath_workload::Trace,
                      sched: &mut dyn saath_core::view::CoflowScheduler|
         -> (Vec<u8>, saath_simulator::SimOutput) {
            let header = LogHeader {
                num_nodes: trace.num_nodes as u64,
                port_rate: trace.port_rate.as_u64(),
                delta_ns: cfg.delta.as_nanos(),
                scheduler: sched.name().into(),
                trace_digest: ChainDigest::ZERO,
                start_round: 0,
                start_digest: ChainDigest::ZERO,
            };
            let mut w =
                EventLogWriter::new(Vec::new(), &header).expect("event-log header write failed");
            let out = simulate_resumable(
                trace,
                sched,
                &cfg,
                &dynamics,
                None,
                ReplayHooks {
                    sink: Some(&mut w),
                    snapshot_every: 0,
                    resume_from: None,
                },
            )
            .expect("partitioned-sweep logged run failed");
            (w.into_inner().expect("event-log flush failed"), out)
        };
        for (i, &pi) in part_points.iter().enumerate() {
            let (nodes, target_flows) = points[pi];
            let trace = grown_trace_at(lab.seed(), nodes, target_flows);
            let flows = flow_count(&trace);
            let (oracle_records, oracle_sched_ms) = &oracles[pi];
            // The differ needs the oracle's log; only the smallest
            // point pays for the extra replay.
            let oracle_log = (i == 0).then(|| {
                let mut single = saath_core::Saath::with_defaults();
                let (bytes, out) = logged(&trace, &mut single);
                assert_eq!(
                    &out.records, oracle_records,
                    "oracle log replay diverged from the timed run at {nodes} nodes"
                );
                bytes
            });
            for &k in &ks {
                for &s in &staleness_grid {
                    let mut sched = PartitionedScheduler::new(k, s, SaathConfig::default());
                    let t0 = Instant::now();
                    let (part_log, out) = if oracle_log.is_some() {
                        let (bytes, out) = logged(&trace, &mut sched);
                        (Some(bytes), out)
                    } else {
                        (
                            None,
                            simulate(&trace, &mut sched, &cfg, &dynamics)
                                .expect("partitioned-sweep run failed"),
                        )
                    };
                    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                    let max_shard_sched_ms = (0..k)
                        .map(|i| {
                            sched
                                .shard_timings(i)
                                .total
                                .iter()
                                .map(|d| d.as_secs_f64() * 1e3)
                                .sum::<f64>()
                        })
                        .fold(0.0f64, f64::max);
                    let sched_speedup = oracle_sched_ms / max_shard_sched_ms.max(1e-9);
                    let identical = &out.records == oracle_records;
                    assert!(
                        s != 0 || identical,
                        "K={k} S=0 must be byte-identical at {nodes} nodes"
                    );
                    let dev = avg_cct_deviation(oracle_records, &out.records).unwrap_or(0.0);
                    let first_div = match (&oracle_log, &part_log) {
                        (Some(a), Some(b)) => {
                            diff_logs(a, b)
                                .expect("partitioned log not diff-comparable to oracle log")
                                .first_divergent_round
                        }
                        _ => None,
                    };
                    let first_div_json = first_div
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "null".into());
                    part_rows.push([
                        nodes.to_string(),
                        k.to_string(),
                        s.to_string(),
                        format!("{max_shard_sched_ms:.1}"),
                        fmt_x(sched_speedup),
                        format!("{dev:.4}"),
                        sched.merge_clamps().to_string(),
                        first_div.map(|r| r.to_string()).unwrap_or_else(|| {
                            if identical {
                                "-".into()
                            } else {
                                "?".into()
                            }
                        }),
                    ]);
                    shard_docs.push(format!(
                        "    {{\n      \"shards\": {k},\n      \"nodes\": {nodes},\n      \
                         \"mode\": \"partitioned\",\n      \"staleness\": {s},\n      \
                         \"coflows\": {},\n      \"flows\": {flows},\n      \
                         \"rounds\": {},\n      \"wall_ms\": {wall_ms:.1},\n      \
                         \"max_shard_sched_ms\": {max_shard_sched_ms:.1},\n      \
                         \"sched_speedup\": {sched_speedup:.2},\n      \
                         \"avg_cct_deviation\": {dev:.6},\n      \
                         \"records_identical\": {identical},\n      \
                         \"merge_clamps\": {},\n      \
                         \"stale_order_decisions\": {},\n      \
                         \"summary_bytes_exchanged\": {},\n      \
                         \"first_divergence_round\": {first_div_json}\n    }}",
                        trace.coflows.len(),
                        out.rounds,
                        sched.merge_clamps(),
                        sched.stale_order_decisions(),
                        sched.summary_bytes_exchanged(),
                    ));
                }
            }
        }
    }
    let shard_json = if shard_docs.is_empty() {
        String::new()
    } else {
        format!(",\n  \"shard_sweep\": [\n{}\n  ]", shard_docs.join(",\n"))
    };

    let json_doc = format!(
        "{{\n  \"experiment\": \"scalability_sweep\",\n  \"seed\": {},\n  \
         \"delta_ms\": 8,\n  \"parallel_feature\": {},\n  \
         \"telemetry_feature\": {},\n  \"points\": [\n{}\n  ]{}\n}}\n",
        lab.seed(),
        cfg!(feature = "parallel"),
        saath_telemetry::enabled(),
        point_docs.join(",\n"),
        shard_json,
    );
    if !small {
        if let Err(e) = std::fs::write("BENCH_scalability.json", &json_doc) {
            eprintln!("warning: could not write BENCH_scalability.json: {e}");
        }
    }
    if let Some(path) = metrics_out {
        let rounds = inc_spans.hist(saath_telemetry::Phase::SchedTotal).count;
        write_metrics_out(path, &sim_metrics_page(&inc_spans, rounds));
    }
    if json {
        return json_doc;
    }
    let mut rendered = t.render();
    rendered.push_str(
        &saath_metrics::phase_table(
            "scalability sweep (incremental mode, all points)",
            &inc_spans,
        )
        .render(),
    );
    if !shard_rows.is_empty() {
        let mut st = Table::new(
            "Shard-scaling sweep — K coordinator replicas, byte-identical records",
            &["shards", "nodes", "flows", "wall ms", "overhead"],
        );
        for row in &shard_rows {
            st.row(row);
        }
        rendered.push('\n');
        rendered.push_str(&st.render());
    }
    if !part_rows.is_empty() {
        let mut pt = Table::new(
            "Partitioned-compute sweep — per-shard views + bounded-staleness summaries \
             (speedup = single-coordinator sched_ms / busiest shard's)",
            &[
                "nodes",
                "shards",
                "staleness",
                "shard sched ms",
                "speedup",
                "cct dev",
                "clamps",
                "first div round",
            ],
        );
        for row in &part_rows {
            pt.row(row);
        }
        rendered.push('\n');
        rendered.push_str(&pt.render());
    }
    rendered
}

/// **Trace diagnosis** — not a paper figure: runs Saath and Aalo over
/// the same FB-like workload with full instrumentation, writes each
/// run's deterministic JSONL round trace to `results/trace_<policy>.jsonl`,
/// and prints the per-policy mechanism breakdown that maps the run back
/// to the paper's design levers (D1 LCoF ordering, D2 all-or-none,
/// D3 queue transitions, D4 work conservation, D5 starvation
/// deadlines). `small` uses the lab's FB trace instead of the grown
/// ≥ 10k-flow workload (CI smoke test).
pub fn trace_diag(lab: &Lab, small: bool) -> String {
    use saath_simulator::{simulate_with_telemetry, SimConfig};
    use saath_workload::DynamicsSpec;

    let trace = if small {
        lab.trace(Workload::Fb).clone()
    } else {
        grown_fb_trace(lab.seed())
    };
    let cfg = SimConfig::default();
    let dynamics = DynamicsSpec::none();

    let mut out = String::new();
    let mut lines = Vec::new();
    // Concrete scheduler types (not `Policy`) so the per-policy
    // `MechCounters` stay reachable after the run.
    for policy in ["saath", "aalo"] {
        let mut tele = saath_telemetry::Telemetry::with_jsonl();
        let mech = match policy {
            "saath" => {
                let mut s = saath_core::Saath::with_defaults();
                simulate_with_telemetry(&trace, &mut s, &cfg, &dynamics, Some(&mut tele))
                    .unwrap_or_else(|e| panic!("trace diagnosis: saath failed: {e}"));
                // Wall-clock phase spans stay out of the deterministic
                // JSONL; report them here alongside the counters.
                let f = |v: &[std::time::Duration]| saath_core::SchedTimings::avg_p90_ms(v);
                let (ca, cp) = f(&s.timings.contention);
                out.push_str(&format!(
                    "saath contention phase: {ca:.4} ms avg / {cp:.4} ms P90\n"
                ));
                if s.timings.probe.is_empty() {
                    out.push_str(
                        "saath probe/merge phases: (serial admission — \
                         rebuild with --features parallel)\n",
                    );
                } else {
                    let (pa, pp) = f(&s.timings.probe);
                    let (ma, mp) = f(&s.timings.merge);
                    out.push_str(&format!(
                        "saath probe phase: {pa:.4} ms avg / {pp:.4} ms P90 \
                         (sharded); merge: {ma:.4} ms avg / {mp:.4} ms P90\n"
                    ));
                }
                out.push_str(
                    &saath_metrics::phase_table("saath scheduler phases", &s.timings.spans)
                        .render(),
                );
                s.mech
            }
            _ => {
                let mut s = saath_core::Aalo::with_defaults();
                simulate_with_telemetry(&trace, &mut s, &cfg, &dynamics, Some(&mut tele))
                    .unwrap_or_else(|e| panic!("trace diagnosis: aalo failed: {e}"));
                s.mech
            }
        };
        lab.write_csv(&format!("trace_{policy}.jsonl"), tele.jsonl());
        out.push_str(&saath_metrics::engine_table(policy, &tele).render());
        out.push_str(&saath_metrics::mech_table(policy, &mech).render());
        lines.push(saath_metrics::mech_breakdown_line(policy, &mech, &tele));
        lines.push(saath_metrics::eventlog_line(policy, &tele));
    }
    // Partitioned-compute diagnosis: the same trace through K=2 shards
    // at staleness 4, surfacing the summary-plane counters the
    // Prometheus families export (`saath_summary_*`,
    // `saath_stale_order_decisions_total`).
    {
        let mut part = saath_simulator::PartitionedScheduler::new(2, 4, SaathConfig::default());
        saath_simulator::simulate(&trace, &mut part, &cfg, &dynamics)
            .unwrap_or_else(|e| panic!("trace diagnosis: partitioned saath failed: {e}"));
        let mut pt = Table::new(
            "partitioned compute (K=2, staleness 4) — per-shard scheduling",
            &["shard", "sched ms", "avg ms", "p90 ms"],
        );
        for s in 0..part.shards() {
            let t = part.shard_timings(s);
            let (avg, p90) = saath_core::SchedTimings::avg_p90_ms(&t.total);
            let total: f64 = t.total.iter().map(|d| d.as_secs_f64() * 1e3).sum();
            pt.row(&[
                s.to_string(),
                format!("{total:.1}"),
                format!("{avg:.4}"),
                format!("{p90:.4}"),
            ]);
        }
        out.push_str(&pt.render());
        out.push_str(&format!(
            "partitioned summary plane: {} refreshes, {} bytes exchanged, \
             {} stale-order decisions, {} merge clamps, final age {} rounds\n",
            part.summary_refreshes(),
            part.summary_bytes_exchanged(),
            part.stale_order_decisions(),
            part.merge_clamps(),
            part.summary_age_rounds()
                .map_or_else(|| "-".into(), |a| a.to_string()),
        ));
    }
    out.push_str("== mechanism breakdown ==\n");
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    if saath_telemetry::enabled() {
        out.push_str(&format!(
            "JSONL round traces written to {}/trace_saath.jsonl and trace_aalo.jsonl\n",
            lab.out_dir.display()
        ));
    } else {
        out.push_str(
            "telemetry feature is OFF — counters read 0 and no JSONL was recorded; \
             rebuild with `--features telemetry` (bench default)\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full harness runs end-to-end on small traces and produces
    /// non-empty, well-formed tables.
    #[test]
    fn all_figures_render_on_small_lab() {
        let mut lab = Lab::small(5);
        lab.out_dir = std::env::temp_dir().join("saath-bench-test");
        for (name, text) in [
            ("fig2", fig2(&mut lab)),
            ("fig3", fig3(&mut lab)),
            ("fig9", fig9(&mut lab)),
            ("fig10", fig10(&mut lab)),
            ("fig11", fig11(&mut lab)),
            ("fig12", fig12(&mut lab)),
            ("fig13", fig13(&mut lab)),
            ("fig17", fig17(&lab)),
            ("table2", table2(&mut lab)),
            ("dynamics", dynamics(&mut lab)),
        ] {
            assert!(
                text.lines().count() >= 4,
                "{name} produced no rows:\n{text}"
            );
            assert!(text.contains("=="), "{name} missing title");
        }
    }

    #[test]
    fn fig14_panels_render() {
        let mut lab = Lab::small(6);
        lab.out_dir = std::env::temp_dir().join("saath-bench-test");
        for panel in ["delta", "d"] {
            let text = fig14(&mut lab, panel);
            assert!(text.contains("Fig 14"), "panel {panel} missing:\n{text}");
        }
    }

    #[test]
    fn emulation_figures_render_small() {
        let mut lab = Lab::small(7);
        lab.out_dir = std::env::temp_dir().join("saath-bench-test");
        // High scale → fast wall time; small node cap keeps threads low.
        let text = fig15_16(&mut lab, 100, 12);
        assert!(text.contains("Fig 15"));
        assert!(text.contains("Fig 16"));
    }
}
