//! Shared experiment infrastructure: the two traces, a memoized run
//! cache, and CSV output.

use saath_metrics::CoflowRecord;
use saath_simulator::{run_policy, Policy, SimConfig};
use saath_workload::{gen, DynamicsSpec, Trace};
use std::collections::HashMap;

/// Which of the paper's two workloads an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// The Facebook-like trace (150 nodes, 526 CoFlows).
    Fb,
    /// The OSP-like trace (100 nodes, 1000 CoFlows, busier ports).
    Osp,
}

impl Workload {
    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Fb => "FB",
            Workload::Osp => "OSP",
        }
    }
}

/// The experiment laboratory: traces plus a `(workload, policy, δ)`
/// memo of simulation results, because Figs 9–13 all reuse the same
/// base runs.
pub struct Lab {
    fb: Trace,
    osp: Trace,
    seed: u64,
    /// Whether the FB workload was replaced by a real trace file via
    /// [`with_fb_trace`](Lab::with_fb_trace) — experiments that would
    /// otherwise substitute a generator preset (e.g. `epoch`'s grown
    /// workload) honor the file instead.
    fb_is_real: bool,
    cache: HashMap<(Workload, String, u64), Vec<CoflowRecord>>,
    /// Where CSV output goes (`results/` by default).
    pub out_dir: std::path::PathBuf,
}

impl Lab {
    /// A lab over freshly generated traces with the given seed.
    pub fn new(seed: u64) -> Lab {
        Lab {
            fb: gen::generate(&gen::fb_like(seed)),
            osp: gen::generate(&gen::osp_like(seed)),
            seed,
            fb_is_real: false,
            cache: HashMap::new(),
            out_dir: std::path::PathBuf::from("results"),
        }
    }

    /// A faster lab for tests: small traces, same machinery.
    pub fn small(seed: u64) -> Lab {
        let mut fb_cfg = gen::small(seed, 25, 80);
        fb_cfg.num_nodes = 25;
        let mut osp_cfg = gen::small(seed + 1, 20, 100);
        osp_cfg.span = saath_simcore::Duration::from_secs(60);
        Lab {
            fb: gen::generate(&fb_cfg),
            osp: gen::generate(&osp_cfg),
            seed,
            fb_is_real: false,
            cache: HashMap::new(),
            out_dir: std::path::PathBuf::from("results"),
        }
    }

    /// Replaces the FB workload with a real `coflow-benchmark` trace
    /// file (drop-in support for the published Facebook trace).
    pub fn with_fb_trace(mut self, trace: Trace) -> Lab {
        self.fb = trace;
        self.fb_is_real = true;
        self.cache.retain(|(w, _, _), _| *w != Workload::Fb);
        self
    }

    /// Whether the FB workload came from a real trace file.
    pub fn fb_is_real(&self) -> bool {
        self.fb_is_real
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The trace backing a workload.
    pub fn trace(&self, w: Workload) -> &Trace {
        match w {
            Workload::Fb => &self.fb,
            Workload::Osp => &self.osp,
        }
    }

    /// Runs (or recalls) a policy on a workload at the default δ.
    pub fn run(&mut self, w: Workload, policy: &Policy) -> &[CoflowRecord] {
        self.run_with_delta(w, policy, SimConfig::default().delta.as_nanos())
    }

    /// Runs (or recalls) a policy at a specific δ (nanoseconds).
    pub fn run_with_delta(
        &mut self,
        w: Workload,
        policy: &Policy,
        delta_ns: u64,
    ) -> &[CoflowRecord] {
        let key = (w, policy.name().to_string(), delta_ns);
        if !self.cache.contains_key(&key) {
            let cfg = SimConfig {
                delta: saath_simcore::Duration::from_nanos(delta_ns),
                ..SimConfig::default()
            };
            let out = run_policy(self.trace(w), policy, &cfg, &DynamicsSpec::none())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", policy.name(), w.label()));
            assert_eq!(
                out.unfinished,
                0,
                "{} left CoFlows unfinished on {}",
                policy.name(),
                w.label()
            );
            self.cache.insert(key.clone(), out.records);
        }
        &self.cache[&key]
    }

    /// Runs (or recalls) a custom Saath configuration under a unique
    /// cache tag (sensitivity sweeps reuse these across panels).
    pub fn run_named_saath(
        &mut self,
        w: Workload,
        tag: &str,
        cfg: saath_core::SaathConfig,
    ) -> &[CoflowRecord] {
        let key = (
            w,
            format!("saath[{tag}]"),
            SimConfig::default().delta.as_nanos(),
        );
        if !self.cache.contains_key(&key) {
            let out = run_policy(
                self.trace(w),
                &Policy::Saath(cfg),
                &SimConfig::default(),
                &DynamicsSpec::none(),
            )
            .unwrap_or_else(|e| panic!("saath[{tag}] on {}: {e}", w.label()));
            self.cache.insert(key.clone(), out.records);
        }
        &self.cache[&key]
    }

    /// Runs a policy on an ad-hoc trace (no caching).
    pub fn run_trace(&self, trace: &Trace, policy: &Policy, delta_ns: u64) -> Vec<CoflowRecord> {
        let cfg = SimConfig {
            delta: saath_simcore::Duration::from_nanos(delta_ns),
            ..SimConfig::default()
        };
        run_policy(trace, policy, &cfg, &DynamicsSpec::none())
            .unwrap_or_else(|e| panic!("{}: {e}", policy.name()))
            .records
    }

    /// Writes a CSV artifact under the output directory.
    pub fn write_csv(&self, name: &str, csv: &str) {
        if std::fs::create_dir_all(&self.out_dir).is_ok() {
            let path = self.out_dir.join(name);
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_return_identical_records() {
        let mut lab = Lab::small(3);
        let a = lab.run(Workload::Fb, &Policy::saath()).to_vec();
        let b = lab.run(Workload::Fb, &Policy::saath()).to_vec();
        assert_eq!(a, b);
        assert_eq!(a.len(), lab.trace(Workload::Fb).coflows.len());
    }

    #[test]
    fn delta_is_part_of_the_cache_key() {
        let mut lab = Lab::small(3);
        let fast = lab
            .run_with_delta(Workload::Fb, &Policy::saath(), 1_000_000)
            .to_vec();
        let slow = lab
            .run_with_delta(Workload::Fb, &Policy::saath(), 500_000_000)
            .to_vec();
        assert_ne!(fast, slow, "different δ must not share cache entries");
    }

    #[test]
    fn with_fb_trace_substitutes_and_invalidates_cache() {
        let mut lab = Lab::small(3);
        let before = lab.run(Workload::Fb, &Policy::saath()).to_vec();
        let replacement = saath_workload::gen::generate(&saath_workload::gen::small(99, 10, 12));
        let mut lab = Lab::small(3).with_fb_trace(replacement.clone());
        assert_eq!(lab.trace(Workload::Fb), &replacement);
        let after = lab.run(Workload::Fb, &Policy::saath()).to_vec();
        assert_eq!(after.len(), 12);
        assert_ne!(before, after);
        let _ = before;
    }

    #[test]
    fn workloads_differ() {
        let lab = Lab::small(3);
        assert_ne!(lab.trace(Workload::Fb), lab.trace(Workload::Osp));
        assert_eq!(Workload::Fb.label(), "FB");
    }
}
