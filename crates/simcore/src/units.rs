//! Data sizes and rates, with exact transfer arithmetic.
//!
//! The whole workspace agrees on these two units:
//!
//! * [`Bytes`] — a data volume (flow size, bytes sent, queue threshold).
//! * [`Rate`] — bytes per second (a port's capacity, a flow's assigned
//!   rate). 1 Gbps, the paper's port speed, is `Rate::gbps(1)` =
//!   125 000 000 B/s.
//!
//! [`transfer_time`] and [`bytes_in`] convert between the two without
//! ever touching floating point: a flow of `n` bytes at rate `r`
//! completes in exactly `ceil(n * 1e9 / r)` nanoseconds, and the
//! simulator credits `floor(r * dt / 1e9)` bytes for an interval `dt`.
//! Rounding the completion up and the credit down means a flow is never
//! reported finished before its bytes have actually been accounted.

use crate::time::Duration;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A data volume in bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Bytes(pub u64);

/// A data rate in bytes per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Rate(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Builds a volume from kilobytes (10^3).
    pub const fn kb(n: u64) -> Bytes {
        Bytes(n * 1_000)
    }

    /// Builds a volume from megabytes (10^6). Trace files and the paper's
    /// queue thresholds are quoted in MB.
    pub const fn mb(n: u64) -> Bytes {
        Bytes(n * 1_000_000)
    }

    /// Builds a volume from gigabytes (10^9).
    pub const fn gb(n: u64) -> Bytes {
        Bytes(n * 1_000_000_000)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This volume in megabytes as a float — reporting only.
    pub fn as_mb_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction (draining a flow never goes negative).
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// `self / n`, used to split a queue threshold equally among the
    /// flows of a CoFlow (Saath's per-flow threshold, Eq. 1 in the
    /// paper). Integer division rounds down, which errs on the side of
    /// moving CoFlows to lower-priority queues *sooner* — the same
    /// direction the optimization pushes.
    pub fn div_per_flow(self, n: usize) -> Bytes {
        assert!(n > 0, "CoFlow with zero flows");
        Bytes(self.0 / n as u64)
    }

    /// Saturating multiplication.
    pub fn saturating_mul(self, k: u64) -> Bytes {
        Bytes(self.0.saturating_mul(k))
    }

    /// Minimum of two volumes.
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }
}

impl Rate {
    /// Zero rate (an unscheduled flow).
    pub const ZERO: Rate = Rate(0);

    /// Builds a rate from bits per second.
    pub const fn bps(bits: u64) -> Rate {
        Rate(bits / 8)
    }

    /// Builds a rate from megabits per second.
    pub const fn mbps(n: u64) -> Rate {
        Rate(n * 1_000_000 / 8)
    }

    /// Builds a rate from gigabits per second. The paper's testbed and
    /// simulations use 1 Gbps ports.
    pub const fn gbps(n: u64) -> Rate {
        Rate(n * 1_000_000_000 / 8)
    }

    /// The raw rate in bytes per second.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this rate is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Minimum of two rates (the bottleneck).
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }

    /// Saturating subtraction (remaining capacity after an allocation).
    pub fn saturating_sub(self, rhs: Rate) -> Rate {
        Rate(self.0.saturating_sub(rhs.0))
    }

    /// Equal split of this rate among `n` flows, rounding down so the
    /// split never oversubscribes the port.
    pub fn div_even(self, n: usize) -> Rate {
        assert!(n > 0, "splitting a rate among zero flows");
        Rate(self.0 / n as u64)
    }

    /// Scales the rate by `num/den` (straggler slowdown injection).
    pub fn mul_ratio(self, num: u64, den: u64) -> Rate {
        assert!(den != 0, "mul_ratio with zero denominator");
        Rate(((self.0 as u128 * num as u128) / den as u128) as u64)
    }
}

/// Exact time to move `volume` at `rate`: `ceil(volume * 1e9 / rate)`
/// nanoseconds. A zero rate yields [`Duration::INFINITE`]; zero volume
/// completes instantly.
pub fn transfer_time(volume: Bytes, rate: Rate) -> Duration {
    if volume.0 == 0 {
        return Duration::ZERO;
    }
    if rate.0 == 0 {
        return Duration::INFINITE;
    }
    let num = volume.0 as u128 * 1_000_000_000u128;
    let den = rate.0 as u128;
    let ns = num.div_ceil(den);
    if ns >= u64::MAX as u128 {
        Duration::INFINITE
    } else {
        Duration(ns as u64)
    }
}

/// Bytes moved in `dt` at `rate`: `floor(rate * dt / 1e9)`.
pub fn bytes_in(rate: Rate, dt: Duration) -> Bytes {
    if dt.is_infinite() {
        // Callers never ask for an infinite advance with a nonzero rate;
        // treat it as "as much as a u64 can hold" defensively.
        return if rate.0 == 0 {
            Bytes::ZERO
        } else {
            Bytes(u64::MAX)
        };
    }
    let num = rate.0 as u128 * dt.as_nanos() as u128;
    Bytes((num / 1_000_000_000u128).min(u64::MAX as u128) as u64)
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl AddAssign for Rate {
    fn add_assign(&mut self, rhs: Rate) {
        self.0 += rhs.0;
    }
}

impl Sub for Rate {
    type Output = Rate;
    fn sub(self, rhs: Rate) -> Rate {
        Rate(self.0 - rhs.0)
    }
}

impl SubAssign for Rate {
    fn sub_assign(&mut self, rhs: Rate) {
        self.0 -= rhs.0;
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        Rate(iter.map(|r| r.0).sum())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}GB", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}MB", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}KB", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bits = self.0 as f64 * 8.0;
        if bits >= 1e9 {
            write!(f, "{:.2}Gbps", bits / 1e9)
        } else if bits >= 1e6 {
            write!(f, "{:.2}Mbps", bits / 1e6)
        } else {
            write!(f, "{}bps", bits)
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors() {
        assert_eq!(Bytes::mb(10).as_u64(), 10_000_000);
        assert_eq!(Bytes::gb(1), Bytes::mb(1_000));
        assert_eq!(Rate::gbps(1).as_u64(), 125_000_000);
        assert_eq!(Rate::mbps(8).as_u64(), 1_000_000);
        assert_eq!(Rate::bps(800), Rate(100));
    }

    #[test]
    fn transfer_time_exact_cases() {
        // 1 MB at 1 Gbps = 8 ms exactly (the paper's δ anchor: "the time
        // required to send 1MB at a port, which is 8ms").
        assert_eq!(
            transfer_time(Bytes::mb(1), Rate::gbps(1)),
            Duration::from_millis(8)
        );
        assert_eq!(transfer_time(Bytes::ZERO, Rate::gbps(1)), Duration::ZERO);
        assert!(transfer_time(Bytes(1), Rate::ZERO).is_infinite());
        // Ceil rounding: 1 byte at 3 B/s needs 333,333,334 ns.
        assert_eq!(transfer_time(Bytes(1), Rate(3)), Duration(333_333_334));
    }

    #[test]
    fn bytes_in_floor() {
        assert_eq!(
            bytes_in(Rate::gbps(1), Duration::from_millis(8)),
            Bytes::mb(1)
        );
        assert_eq!(bytes_in(Rate(3), Duration(333_333_333)), Bytes(0));
        assert_eq!(bytes_in(Rate(3), Duration(333_333_334)), Bytes(1));
        assert_eq!(bytes_in(Rate::ZERO, Duration::INFINITE), Bytes::ZERO);
        assert_eq!(bytes_in(Rate(1), Duration::INFINITE), Bytes(u64::MAX));
    }

    #[test]
    fn per_flow_split() {
        // 200 MB threshold over 100 flows = 2 MB per flow (paper §4.2-D3).
        assert_eq!(Bytes::mb(200).div_per_flow(100), Bytes::mb(2));
        assert_eq!(Rate::gbps(1).div_even(4), Rate(31_250_000));
    }

    proptest! {
        /// A flow never finishes before its bytes are accounted: the
        /// bytes credited over the (ceil-rounded) transfer time always
        /// cover the volume.
        #[test]
        fn credit_covers_volume(vol in 1u64..=u64::from(u32::MAX), rate in 1u64..=Rate::gbps(100).as_u64()) {
            let t = transfer_time(Bytes(vol), Rate(rate));
            prop_assert!(!t.is_infinite());
            let credited = bytes_in(Rate(rate), t);
            prop_assert!(credited.as_u64() >= vol);
        }

        /// ...and never overshoots by more than one rate-quantum (one
        /// byte per nanosecond of rounding, i.e. < rate/1e9 + 1 bytes).
        #[test]
        fn credit_overshoot_bounded(vol in 1u64..=u64::from(u32::MAX), rate in 1u64..=Rate::gbps(100).as_u64()) {
            let t = transfer_time(Bytes(vol), Rate(rate));
            let credited = bytes_in(Rate(rate), t);
            let slack = rate / 1_000_000_000 + 1;
            prop_assert!(credited.as_u64() - vol <= slack);
        }

        /// bytes_in is monotone in the duration.
        #[test]
        fn bytes_in_monotone(rate in 0u64..=Rate::gbps(10).as_u64(), a in 0u64..1_000_000_000_000, b in 0u64..1_000_000_000_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bytes_in(Rate(rate), Duration(lo)) <= bytes_in(Rate(rate), Duration(hi)));
        }
    }
}
