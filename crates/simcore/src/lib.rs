//! # saath-simcore
//!
//! Deterministic discrete-event simulation substrate for the Saath
//! (CoNEXT'17) reproduction.
//!
//! The Saath paper evaluates its CoFlow scheduler with a 4 KLoC C++
//! fluid-flow simulator. This crate provides the foundations that
//! simulator needs, with two hard guarantees the rest of the workspace
//! relies on:
//!
//! * **Determinism.** All quantities are integers: [`Time`] and
//!   [`Duration`] are nanoseconds, [`Bytes`] are bytes, [`Rate`] is
//!   bytes/second. Completion times and queue-threshold crossings are
//!   computed with ceiling division, so two runs with the same seed are
//!   bit-identical on every platform — no floating-point drift, and no
//!   iteration-order surprises (the [`event::EventQueue`] breaks ties
//!   with a monotone sequence number).
//! * **No wall-clock dependence.** Nothing here reads the system clock;
//!   simulated time only advances when the caller advances it.
//!
//! The crate is intentionally dependency-light (only `rand` for seeded
//! generators and `serde` for serializable records) in the spirit of the
//! smoltcp design notes: simplicity and robustness over cleverness.
//!
//! ## Layout
//!
//! * [`time`] — [`Time`] / [`Duration`] newtypes and grid quantization
//!   (the coordinator's δ interval lives on this grid).
//! * [`units`] — [`Bytes`] and [`Rate`] plus exact transfer arithmetic.
//! * [`event`] — a deterministic event queue with stable tie-breaking.
//! * [`fasthash`] — a non-cryptographic hasher ([`FastHashMap`] /
//!   [`FastHashSet`]) for the schedulers' internal integer-keyed maps.
//! * [`rng`] — named, seed-derived random streams so adding a new
//!   consumer never perturbs existing ones.
//! * [`ids`] — typed identifiers shared across the workspace
//!   ([`CoflowId`], [`FlowId`], [`NodeId`], [`PortId`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod fasthash;
pub mod ids;
pub mod rng;
pub mod time;
pub mod units;

pub use event::EventQueue;
pub use fasthash::{FastHashMap, FastHashSet};
pub use ids::{CoflowId, FlowId, JobId, NodeId, PortId};
pub use rng::DetRng;
pub use time::{Duration, Time};
pub use units::{Bytes, Rate};
