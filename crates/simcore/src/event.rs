//! A deterministic event queue.
//!
//! `std::collections::BinaryHeap` is not stable for equal keys, so a
//! simulator built directly on it would reorder same-instant events from
//! run to run depending on insertion history. [`EventQueue`] pairs every
//! event with a monotone sequence number: events fire in time order, and
//! same-time events fire in *insertion* order, always.

use crate::time::Time;
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: fire `payload` at `at`.
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pair is popped first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-heap of timestamped events with stable FIFO tie-breaking.
///
/// ```
/// use saath_simcore::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_millis(5), "b");
/// q.push(Time::from_millis(1), "a");
/// q.push(Time::from_millis(5), "c"); // same instant as "b": FIFO
/// assert_eq!(q.pop(), Some((Time::from_millis(1), "a")));
/// assert_eq!(q.pop(), Some((Time::from_millis(5), "b")));
/// assert_eq!(q.pop(), Some((Time::from_millis(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with space for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: Time, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// The instant of the next event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Removes and returns the earliest event only if it fires at or
    /// before `now` — the simulator's "drain everything due" loop.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, E)> {
        match self.heap.peek() {
            Some(e) if e.at <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// The next sequence number this queue would assign — part of the
    /// queue's deterministic state (FIFO tie-breaking depends on it),
    /// so snapshots must capture and restore it.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Every pending entry as `(fire_time, seq, payload)`, sorted by
    /// `(fire_time, seq)` — i.e. in pop order. The heap's internal
    /// array layout is insertion-history dependent, so this sorted view
    /// is the queue's canonical serializable form.
    pub fn entries(&self) -> Vec<(Time, u64, &E)> {
        let mut v: Vec<(Time, u64, &E)> = self
            .heap
            .iter()
            .map(|e| (e.at, e.seq, &e.payload))
            .collect();
        v.sort_by_key(|&(at, seq, _)| (at, seq));
        v
    }

    /// Rebuilds a queue from entries captured by [`entries`] and the
    /// matching [`next_seq`]. Pop order depends only on the `(at, seq)`
    /// keys, so the restored queue is behaviorally identical to the
    /// original regardless of internal heap layout.
    ///
    /// [`entries`]: EventQueue::entries
    /// [`next_seq`]: EventQueue::next_seq
    pub fn from_entries(entries: impl IntoIterator<Item = (Time, u64, E)>, next_seq: u64) -> Self {
        let heap: BinaryHeap<Entry<E>> = entries
            .into_iter()
            .map(|(at, seq, payload)| Entry { at, seq, payload })
            .collect();
        EventQueue { heap, next_seq }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(Time(30), 1);
        q.push(Time(10), 2);
        q.push(Time(30), 3);
        q.push(Time(20), 4);
        q.push(Time(30), 5);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3, 5]);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Time(10), "early");
        q.push(Time(20), "late");
        assert_eq!(q.pop_due(Time(15)), Some((Time(10), "early")));
        assert_eq!(q.pop_due(Time(15)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(Time(20)), Some((Time(20), "late")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_and_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert_eq!(q.peek_time(), None);
        q.push(Time(5), ());
        assert_eq!(q.peek_time(), Some(Time(5)));
        q.clear();
        assert!(q.is_empty());
        // Sequence numbers keep growing across clear(): FIFO order is
        // preserved even for events pushed after a reset.
        q.push(Time(5), ());
        assert_eq!(q.pop(), Some((Time(5), ())));
    }

    #[test]
    fn entries_roundtrip_preserves_pop_order() {
        let mut q = EventQueue::new();
        q.push(Time(30), 1);
        q.push(Time(10), 2);
        q.push(Time(30), 3);
        q.pop(); // consume "2" so seq state is mid-stream
        let snap: Vec<(Time, u64, i32)> = q.entries().iter().map(|&(t, s, p)| (t, s, *p)).collect();
        assert_eq!(snap, vec![(Time(30), 0, 1), (Time(30), 2, 3)]);
        let mut r = EventQueue::from_entries(snap, q.next_seq());
        assert_eq!(r.next_seq(), 3);
        r.push(Time(30), 4); // gets seq 3: fires after the restored ties
        let order: Vec<i32> = std::iter::from_fn(|| r.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 4]);
    }

    proptest! {
        /// Popped times are nondecreasing for arbitrary insert orders.
        #[test]
        fn pops_are_sorted(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(Time(*t), i);
            }
            let mut last = Time::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Same-time events preserve insertion order (stability).
        #[test]
        fn ties_are_fifo(tags in proptest::collection::vec(0u64..4, 1..100)) {
            let mut q = EventQueue::new();
            for (i, tag) in tags.iter().enumerate() {
                q.push(Time(*tag), i);
            }
            let mut last_seq_per_time = std::collections::HashMap::new();
            while let Some((t, seq)) = q.pop() {
                if let Some(prev) = last_seq_per_time.insert(t, seq) {
                    prop_assert!(seq > prev, "tie at {t:?} broke FIFO order");
                }
            }
        }
    }
}
