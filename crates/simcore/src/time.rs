//! Simulated time.
//!
//! [`Time`] is an absolute instant and [`Duration`] a span, both counted
//! in integer nanoseconds since the start of the simulation. Nanosecond
//! granularity is fine enough that rounding a transfer time *up* to the
//! next tick (the only rounding this workspace ever performs) costs a
//! 1 Gbps flow at most one byte-time of error, and coarse enough that a
//! `u64` holds ~584 years of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An absolute instant in simulated time (nanoseconds since t = 0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// A sentinel "never happens" instant, ordered after every real one.
    pub const NEVER: Time = Time(u64::MAX);

    /// Builds an instant from whole milliseconds (trace files use ms).
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// This instant expressed in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This instant in seconds as a float — for reporting only, never for
    /// simulation arithmetic.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from an earlier instant to this one.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(earlier <= self, "since() called with a later instant");
        Duration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The next multiple of `grid` at or after this instant.
    ///
    /// The coordinator computes schedules on a δ grid; an event that lands
    /// mid-interval only takes effect at the next boundary. A `grid` of
    /// zero means "no quantization" and returns `self`.
    pub fn round_up_to(self, grid: Duration) -> Time {
        if grid.0 == 0 {
            return self;
        }
        match self.0 % grid.0 {
            0 => self,
            rem => Time(self.0.saturating_add(grid.0 - rem)),
        }
    }

    /// The previous multiple of `grid` at or before this instant.
    pub fn round_down_to(self, grid: Duration) -> Time {
        if grid.0 == 0 {
            return self;
        }
        Time(self.0 - self.0 % grid.0)
    }

    /// Whether this is the [`Time::NEVER`] sentinel.
    pub const fn is_never(self) -> bool {
        self.0 == u64::MAX
    }

    /// Checked addition; `NEVER` absorbs any addition.
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// A sentinel "infinite" span.
    pub const INFINITE: Duration = Duration(u64::MAX);

    /// Builds a span from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// This span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This span in seconds as a float — reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this is the [`Duration::INFINITE`] sentinel.
    pub const fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }

    /// `self * num / den` with 128-bit intermediates (no overflow for any
    /// realistic span). Used to scale trace inter-arrival times for the
    /// Fig 14(d) contention sweep.
    pub fn mul_ratio(self, num: u64, den: u64) -> Duration {
        assert!(den != 0, "mul_ratio with zero denominator");
        Duration(((self.0 as u128 * num as u128) / den as u128) as u64)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Rem<Duration> for Time {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            write!(f, "T[never]")
        } else {
            write!(f, "T[{:.6}s]", self.as_secs_f64())
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Time::from_millis(8).as_nanos(), 8_000_000);
        assert_eq!(Time::from_secs(2).as_millis(), 2_000);
        assert_eq!(Duration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Duration::from_millis(8).as_millis(), 8);
        assert_eq!(Duration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_millis(10) + Duration::from_millis(6);
        assert_eq!(t, Time::from_millis(16));
        assert_eq!(t - Time::from_millis(10), Duration::from_millis(6));
        assert_eq!(t.since(Time::from_millis(16)), Duration::ZERO);
        assert_eq!(
            Time::from_millis(5).saturating_since(Time::from_millis(9)),
            Duration::ZERO
        );
    }

    #[test]
    fn grid_rounding_matches_coordinator_semantics() {
        let delta = Duration::from_millis(8);
        // Exactly on the boundary stays put.
        assert_eq!(
            Time::from_millis(16).round_up_to(delta),
            Time::from_millis(16)
        );
        // Mid-interval rounds to the next boundary.
        assert_eq!(
            Time::from_millis(17).round_up_to(delta),
            Time::from_millis(24)
        );
        assert_eq!(
            Time::from_millis(17).round_down_to(delta),
            Time::from_millis(16)
        );
        // Zero grid disables quantization.
        assert_eq!(Time(123).round_up_to(Duration::ZERO), Time(123));
    }

    #[test]
    fn never_is_after_everything_and_absorbs() {
        assert!(Time::NEVER > Time::from_secs(1_000_000));
        assert!(Time::NEVER.is_never());
        assert!(Time::NEVER
            .saturating_add(Duration::from_secs(1))
            .is_never());
        assert_eq!(
            Time::NEVER.round_up_to(Duration::from_millis(8)),
            Time::NEVER
        );
    }

    #[test]
    fn ratio_scaling() {
        let d = Duration::from_secs(10);
        assert_eq!(d.mul_ratio(1, 2), Duration::from_secs(5));
        assert_eq!(d.mul_ratio(4, 1), Duration::from_secs(40));
        // Large values do not overflow thanks to the u128 intermediate.
        let big = Duration::from_secs(3600 * 24 * 365);
        assert_eq!(big.mul_ratio(3, 3), big);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Duration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", Duration(12)), "12ns");
        assert_eq!(format!("{}", Duration::INFINITE), "inf");
        assert_eq!(format!("{}", Time::NEVER), "T[never]");
    }
}
