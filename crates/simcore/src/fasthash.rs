//! A fast, deterministic hasher for integer-keyed scratch maps.
//!
//! The schedulers keep several `HashMap`s keyed by [`CoflowId`] /
//! small tuples on their per-round hot paths (incremental contention,
//! the maintained LCoF order). `std`'s default SipHash is designed to
//! resist hash-flooding from untrusted keys; our keys are internal
//! dense integers, so that robustness buys nothing and costs a
//! measurable fraction of the round. This is the classic
//! multiply-rotate scheme (as used by rustc's `FxHasher`): one rotate,
//! one xor, one multiply per word.
//!
//! Two cautions, both upheld by the workspace:
//!
//! * **Not DoS-resistant.** Only use for internal ids, never for keys
//!   an adversary chooses.
//! * **Iteration order is still arbitrary.** Nothing scheduler-visible
//!   may depend on map iteration order; every consumer sorts before
//!   acting on iterated keys (see `ContentionTracker`'s departure
//!   scan).
//!
//! [`CoflowId`]: crate::CoflowId

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from splitmix64's finalizer family; any odd constant
/// with well-mixed bits works.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The word-at-a-time multiply-rotate hasher. Use via [`FastHashMap`] /
/// [`FastHashSet`] rather than directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Byte-slice fallback (derived Hash on structs routes integer
        // fields through the typed writers below, so this is cold).
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (stateless, so maps built with it
/// are `Default`-constructible).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`] — for internal integer keys only.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`] — for internal integer keys only.
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoflowId;

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FastHashMap<CoflowId, u32> = FastHashMap::default();
        for i in 0..1000u32 {
            m.insert(CoflowId(i), i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&CoflowId(i)), Some(&(i * 2)));
            assert_eq!(m.remove(&CoflowId(i)), Some(i * 2));
        }
        assert!(m.is_empty());

        let mut s: FastHashSet<(u32, u32)> = FastHashSet::default();
        assert!(s.insert((3, 4)));
        assert!(!s.insert((3, 4)));
        assert!(s.contains(&(3, 4)));
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let hash_of = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish()
        };
        // Deterministic across calls (no per-instance random state).
        assert_eq!(hash_of(42), hash_of(42));
        // Dense inputs must not collapse to few buckets: check the top
        // bits (what hashbrown's control bytes use) vary.
        let mut tops: FastHashSet<u8> = FastHashSet::default();
        for n in 0..64u64 {
            tops.insert((hash_of(n) >> 57) as u8);
        }
        assert!(tops.len() > 32, "top-bit spread too weak: {}", tops.len());
    }

    #[test]
    fn byte_fallback_matches_word_width() {
        // The slice path must consume all bytes (padding short tails),
        // so distinct slices hash differently.
        let slice_hash = |b: &[u8]| {
            let mut h = FastHasher::default();
            h.write(b);
            h.finish()
        };
        assert_ne!(slice_hash(b"abc"), slice_hash(b"abd"));
        assert_ne!(slice_hash(b"abc"), slice_hash(b"abcabcabc"));
    }
}
