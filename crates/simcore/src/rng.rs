//! Named, seed-derived random streams.
//!
//! Workload generators need randomness; experiments need repeatability.
//! [`DetRng`] derives an independent stream from a master seed and a
//! string label (e.g. `"fb-like/sizes"`), so:
//!
//! * the same `(seed, label)` always produces the same stream;
//! * adding a new consumer with a fresh label never perturbs existing
//!   streams — runs stay comparable as the workspace grows.
//!
//! The derivation is an FNV-1a hash of the label folded into the seed,
//! feeding `rand`'s `SmallRng`. We do not need cryptographic quality,
//! only speed and independence-in-practice.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream (see module docs).
pub struct DetRng {
    inner: SmallRng,
    label_hash: u64,
}

/// FNV-1a, the classic 64-bit variant.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

impl DetRng {
    /// Derives the stream `label` from `seed`.
    pub fn derive(seed: u64, label: &str) -> DetRng {
        let label_hash = fnv1a(label.as_bytes());
        // SplitMix-style finalization to spread the combined bits.
        let mut z = seed ^ label_hash;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        DetRng {
            inner: SmallRng::seed_from_u64(z),
            label_hash,
        }
    }

    /// Derives a child stream (e.g. one stream per CoFlow index).
    pub fn child(&self, index: u64) -> DetRng {
        let mut z = self.label_hash ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 31;
        DetRng {
            inner: SmallRng::seed_from_u64(z),
            label_hash: z,
        }
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.inner.gen::<f64>() < p
    }

    /// Exponential inter-arrival gap with the given mean, in integer
    /// units (rounded, at least 0). Poisson arrivals are built from this.
    pub fn exp_gap(&mut self, mean: f64) -> u64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let x = -mean * u.ln();
        if x >= u64::MAX as f64 {
            u64::MAX
        } else {
            x.round() as u64
        }
    }

    /// Pareto-distributed value with scale `x_min` and shape `alpha`,
    /// capped at `cap`. Heavy-tailed CoFlow sizes come from here.
    pub fn pareto(&mut self, x_min: f64, alpha: f64, cap: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0 && cap >= x_min);
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        (x_min / u.powf(1.0 / alpha)).min(cap)
    }

    /// Picks an index from a discrete distribution given as weights.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all-zero weights");
        let mut x = self.inner.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct values from `[0, n)` (k ≤ n), in random
    /// order. Used to pick the mapper/reducer nodes of a CoFlow.
    pub fn sample_distinct(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!(
            k as u64 <= n,
            "cannot sample {k} distinct values from [0,{n})"
        );
        // Partial Fisher–Yates over a lazily-materialized permutation.
        let mut swaps: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(k);
        for i in 0..k as u64 {
            let j = self.inner.gen_range(i..n);
            let vi = *swaps.get(&i).unwrap_or(&i);
            let vj = *swaps.get(&j).unwrap_or(&j);
            out.push(vj);
            swaps.insert(j, vi);
            swaps.insert(i, vj);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::derive(7, "sizes");
        let mut b = DetRng::derive(7, "sizes");
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = DetRng::derive(7, "sizes");
        let mut b = DetRng::derive(7, "widths");
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4, "streams with different labels look identical");
    }

    #[test]
    fn children_are_independent_of_sibling_consumption() {
        let parent = DetRng::derive(9, "coflows");
        let mut c0a = parent.child(0);
        // Consuming from child 1 must not change child 0's stream.
        let mut c1 = parent.child(1);
        let _ = c1.below(100);
        let mut c0b = parent.child(0);
        assert_eq!(c0a.below(u64::MAX), c0b.below(u64::MAX));
    }

    #[test]
    fn exp_gap_mean_is_roughly_right() {
        let mut r = DetRng::derive(3, "arrivals");
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.exp_gap(1000.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 1000.0).abs() < 50.0,
            "mean {mean} too far from 1000"
        );
    }

    #[test]
    fn pareto_respects_bounds() {
        let mut r = DetRng::derive(3, "sizes");
        for _ in 0..10_000 {
            let x = r.pareto(2.0, 1.1, 500.0);
            assert!((2.0..=500.0).contains(&x));
        }
    }

    #[test]
    fn weighted_hits_every_bucket() {
        let mut r = DetRng::derive(5, "mix");
        let w = [0.23, 0.50, 0.27];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.weighted(&w)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let frac = *c as f64 / 30_000.0;
            assert!((frac - w[i]).abs() < 0.02, "bucket {i}: {frac} vs {}", w[i]);
        }
    }

    proptest! {
        #[test]
        fn sample_distinct_is_distinct_and_in_range(n in 1u64..500, k_frac in 0.0f64..1.0) {
            let k = ((n as f64) * k_frac) as usize;
            let mut r = DetRng::derive(11, "ports");
            let s = r.sample_distinct(n, k);
            prop_assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            prop_assert_eq!(set.len(), k, "duplicates in sample");
            prop_assert!(s.iter().all(|&v| v < n));
        }

        #[test]
        fn shuffle_is_a_permutation(len in 0usize..100) {
            let mut r = DetRng::derive(13, "shuffle");
            let mut v: Vec<usize> = (0..len).collect();
            r.shuffle(&mut v);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
        }
    }
}
