//! Typed identifiers shared across the workspace.
//!
//! Every entity the simulator and schedulers talk about — nodes, ports,
//! flows, CoFlows, jobs — gets its own newtype over a dense `u32` index.
//! Dense indices let hot paths use `Vec`-backed tables instead of hash
//! maps, and the newtypes make it a compile error to index a port table
//! with a flow id.
//!
//! ## Port encoding
//!
//! The fabric is the usual *big switch*: every node `n` owns exactly two
//! contended resources, its uplink (sending NIC) and its downlink
//! (receiving NIC). With `N` nodes, [`PortId`] packs both directions
//! into one dense space of `2N` ports: uplink of node `n` is index `n`,
//! downlink is `N + n`. All rate-allocation code iterates over that flat
//! space without caring about direction.

use core::fmt;
use serde::{Deserialize, Serialize};

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw dense index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            pub fn from_index(idx: usize) -> Self {
                $name(u32::try_from(idx).expect("id index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

dense_id!(
    /// A machine in the cluster (one sender/receiver endpoint).
    NodeId,
    "n"
);
dense_id!(
    /// A CoFlow — the unit the schedulers order and gang-schedule.
    CoflowId,
    "c"
);
dense_id!(
    /// A single flow (one sender → receiver transfer inside a CoFlow).
    FlowId,
    "f"
);
dense_id!(
    /// An analytics job (owns one or more CoFlows; used for Fig 16's
    /// job-completion-time analysis and DAG scheduling).
    JobId,
    "j"
);

/// A contended fabric resource: the uplink or downlink of a node, packed
/// into one dense index space (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub u32);

impl PortId {
    /// The uplink (sending side) of `node`.
    pub fn uplink(node: NodeId) -> PortId {
        PortId(node.0)
    }

    /// The downlink (receiving side) of `node` in a cluster of
    /// `num_nodes` machines.
    pub fn downlink(node: NodeId, num_nodes: usize) -> PortId {
        PortId(node.0 + u32::try_from(num_nodes).expect("cluster too large"))
    }

    /// The dense index into a `2 * num_nodes` port table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Decodes this port back into (node, is_downlink) given the cluster
    /// size it was encoded with.
    pub fn decode(self, num_nodes: usize) -> (NodeId, bool) {
        let n = u32::try_from(num_nodes).expect("cluster too large");
        if self.0 < n {
            (NodeId(self.0), false)
        } else {
            (NodeId(self.0 - n), true)
        }
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_roundtrip() {
        let c = CoflowId::from_index(42);
        assert_eq!(c.index(), 42);
        assert_eq!(format!("{c}"), "c42");
        assert_eq!(CoflowId::from(7u32), CoflowId(7));
        assert_eq!(format!("{}", FlowId(3)), "f3");
        assert_eq!(format!("{}", NodeId(9)), "n9");
        assert_eq!(format!("{}", JobId(1)), "j1");
    }

    #[test]
    fn port_encoding_is_a_bijection() {
        let n = 150; // the FB trace's cluster size
        for node in 0..n {
            let node = NodeId(node as u32);
            let up = PortId::uplink(node);
            let down = PortId::downlink(node, n);
            assert_eq!(up.decode(n), (node, false));
            assert_eq!(down.decode(n), (node, true));
            assert_ne!(up, down);
            assert!(up.index() < n);
            assert!(down.index() >= n && down.index() < 2 * n);
        }
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn oversized_index_panics() {
        let _ = FlowId::from_index(usize::MAX);
    }
}
