//! # saath-telemetry
//!
//! The workspace's zero-overhead instrumentation layer: cheap monotonic
//! counters, min/max/mean accumulators, per-policy mechanism counters,
//! and a deterministic JSONL round-trace buffer, all behind one
//! [`Telemetry`] handle.
//!
//! Two switches make it zero-overhead:
//!
//! 1. **Compile time** — the `telemetry` cargo feature. [`enabled`] is a
//!    `const fn` returning `cfg!(feature = "telemetry")`, so every call
//!    site written as `if telemetry::enabled() { … }` const-folds to
//!    nothing when the feature is off. The engine equivalence suite
//!    proves records stay byte-identical and the criterion benches prove
//!    speed is unchanged.
//! 2. **Run time** — instrumented entry points take
//!    `Option<&mut Telemetry>`; passing `None` skips even the cheap
//!    increments, and un-instrumented wrappers (plain `simulate`) keep
//!    their signatures.
//!
//! The JSONL round trace contains **only deterministic integers**
//! (simulated time, set sizes, port utilization in permille) — never
//! wall-clock times — so two runs of the same seeded workload are
//! byte-identical and diffable. Wall-time goes to the summary
//! histograms instead, which are printed but never serialized into the
//! trace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod prom;

use std::fmt::Write as _;
use std::time::Instant;

/// Whether the `telemetry` cargo feature is compiled in.
///
/// `const`, so `if telemetry::enabled() { … }` is folded away entirely
/// in feature-off builds — the instrumentation's "zero" in
/// zero-overhead.
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// Monotonic event counters, one slot per variant.
///
/// Engine counters (`Heap*`, `SchedRounds`) are incremented by the
/// simulator's epoch loop; `Coord*` by the runtime coordinator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Completion-heap entries pushed (rate changes + re-keyed stale
    /// entries).
    HeapPush,
    /// Heap pops whose key matched the flow's current prediction — the
    /// pop that actually advances time.
    HeapPopCurrent,
    /// Heap pops that surfaced *earlier* than the flow's current
    /// prediction (the entry went stale while buried) and were re-keyed.
    HeapPopStale,
    /// Heap pops superseded by a later-pushed, earlier-keyed entry.
    HeapPopSuperseded,
    /// Heap pops for flows already finished, rate-zero, or unbounded.
    HeapPopDead,
    /// Completion-heap rebuilds triggered by the stale-fraction bound.
    HeapCompactions,
    /// Scheduling rounds (boundary crossings that ran `compute`).
    SchedRounds,
    /// Flow-stat report messages drained by the coordinator.
    CoordStatsMsgs,
    /// Schedule messages pushed by the coordinator.
    CoordScheduleMsgs,
    /// Coordinator sync rounds (δ epochs) completed.
    CoordEpochs,
    /// Shard schedule slices received by the reconciler.
    CoordShardSlices,
    /// Reconciliation rounds where a shard's slice was missing and its
    /// previous slice was reused (agents comply with the old schedule).
    CoordShardFallbacks,
    /// Rate assignments clamped by the reconciler's port-capacity merge
    /// (zero when shard replicas agree, i.e. in steady state).
    CoordMergeClamps,
    /// Global rebuild broadcasts after a shard restart.
    CoordShardRebuilds,
    /// Round records appended to an event log.
    LogRoundsAppended,
    /// Bytes written to an event log (frames + header).
    LogBytesWritten,
    /// Engine snapshots framed into an event log.
    LogSnapshots,
    /// Full chain-verification passes completed over a log.
    LogChainVerifies,
}

/// All counters, in display order.
pub const COUNTERS: [Counter; 18] = [
    Counter::HeapPush,
    Counter::HeapPopCurrent,
    Counter::HeapPopStale,
    Counter::HeapPopSuperseded,
    Counter::HeapPopDead,
    Counter::HeapCompactions,
    Counter::SchedRounds,
    Counter::CoordStatsMsgs,
    Counter::CoordScheduleMsgs,
    Counter::CoordEpochs,
    Counter::CoordShardSlices,
    Counter::CoordShardFallbacks,
    Counter::CoordMergeClamps,
    Counter::CoordShardRebuilds,
    Counter::LogRoundsAppended,
    Counter::LogBytesWritten,
    Counter::LogSnapshots,
    Counter::LogChainVerifies,
];

impl Counter {
    /// Stable snake_case name, used in tables and the epoch JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::HeapPush => "heap_pushes",
            Counter::HeapPopCurrent => "heap_pops_current",
            Counter::HeapPopStale => "heap_pops_stale",
            Counter::HeapPopSuperseded => "heap_pops_superseded",
            Counter::HeapPopDead => "heap_pops_dead",
            Counter::HeapCompactions => "heap_compactions",
            Counter::SchedRounds => "sched_rounds",
            Counter::CoordStatsMsgs => "coord_stats_msgs",
            Counter::CoordScheduleMsgs => "coord_schedule_msgs",
            Counter::CoordEpochs => "coord_epochs",
            Counter::CoordShardSlices => "coord_shard_slices",
            Counter::CoordShardFallbacks => "coord_shard_fallbacks",
            Counter::CoordMergeClamps => "coord_merge_clamps",
            Counter::CoordShardRebuilds => "coord_shard_rebuilds",
            Counter::LogRoundsAppended => "log_rounds_appended",
            Counter::LogBytesWritten => "log_bytes_written",
            Counter::LogSnapshots => "log_snapshots",
            Counter::LogChainVerifies => "log_chain_verifies",
        }
    }
}

/// A min/sum/max accumulator over `u64` samples — the cheapest thing
/// that still answers "how big does the dirty set get, typically and at
/// worst?".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hist {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples (mean = sum / count).
    pub sum: u64,
    /// Smallest sample, 0 if none.
    pub min: u64,
    /// Largest sample, 0 if none.
    pub max: u64,
}

impl Hist {
    /// Folds one sample in.
    ///
    /// The running `sum` **saturates** at `u64::MAX` instead of
    /// wrapping: a run long enough to overflow it (≈ 584 years of
    /// nanosecond samples, or 2⁶⁴ set-size units) pins the sum — and
    /// hence [`Hist::mean`] — at a too-small ceiling rather than
    /// silently producing a tiny wrapped mean. `count`, `min`, and
    /// `max` stay exact.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Arithmetic mean, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A log2-bucketed latency histogram: every wall-time path in the
/// workspace records into one of these and can answer p50/p90/p99/max
/// after (or during) a run, where [`Hist`] only answers min/mean/max.
///
/// 65 buckets: bucket 0 holds exactly the value 0 and bucket *i* ≥ 1
/// holds `[2^(i-1), 2^i)`, so any `u64` sample lands in O(1) via
/// `leading_zeros`. Quantiles are nearest-rank over the bucket counts
/// and report the containing bucket's **upper bound** (clamped to the
/// exact observed `max`), which makes them conservative (never
/// under-report a latency) and monotone: p50 ≤ p90 ≤ p99 ≤ max always
/// holds. `sum` saturates at `u64::MAX` like [`Hist::observe`];
/// `count` and `max` stay exact.
///
/// [`Hist`] remains the right tool for set sizes (dirty sets, heap
/// lengths), where min/mean/max is the question being asked;
/// `LogHist` replaces it for durations, where tails matter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHist {
    /// Number of samples observed.
    pub count: u64,
    /// Saturating sum of all samples (mean = sum / count).
    pub sum: u64,
    /// Largest sample, 0 if none.
    pub max: u64,
    buckets: [u64; 65],
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl LogHist {
    /// An empty histogram.
    pub fn new() -> LogHist {
        LogHist::default()
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        // v = 0 → 0; otherwise 64 − clz = the bit width of v, so
        // bucket i ≥ 1 spans [2^(i-1), 2^i) and bucket 64 ends at
        // u64::MAX.
        (64 - v.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Folds one sample in.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Folds another histogram in (per-bucket addition; `sum`
    /// saturates).
    pub fn merge(&mut self, other: &LogHist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Arithmetic mean, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile for `q ∈ [0, 1]`: the upper bound of the
    /// bucket containing the rank-⌈q·count⌉ sample, clamped to the
    /// exact `max`. Returns 0 with no samples. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (nearest-rank bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// One named span kind — every wall-time section the workspace
/// profiles, across the scheduler (per-phase, unified with
/// `SchedTimings`), the simulator's epoch loop, and the runtime
/// coordinator/agent path's epoch lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Whole scheduler `compute()` round.
    SchedTotal,
    /// CoFlow ordering (queue assignment + LCoF/FIFO order).
    SchedOrder,
    /// Contention `k_c` computation (sub-span of ordering).
    SchedContention,
    /// All-or-none gang admission + MADD rate assignment.
    SchedMadd,
    /// Work-conservation backfill.
    SchedWc,
    /// Parallel speculative gang-probe fan-out.
    SchedProbe,
    /// Deterministic serial merge of speculative probes.
    SchedMerge,
    /// Engine: draining due events (arrivals, readiness, dynamics).
    EngineEvents,
    /// Engine: incremental view sync over the dirty list.
    EngineViewSync,
    /// Engine: one whole δ-boundary scheduling round.
    EngineRound,
    /// Engine: next-event-time scan and time advancement.
    EngineAdvance,
    /// Coordinator: draining agent stats reports (obs-recv).
    CoordObsRecv,
    /// Coordinator: view build + policy compute (schedule).
    CoordSchedule,
    /// Reconciler: shard slice collection + deterministic merge.
    CoordReconcile,
    /// Coordinator: pushing the schedule to every agent (broadcast).
    CoordBroadcast,
    /// Agent: applying a schedule push (apply).
    AgentApply,
}

/// All span kinds, in display order.
pub const PHASES: [Phase; 16] = [
    Phase::SchedTotal,
    Phase::SchedOrder,
    Phase::SchedContention,
    Phase::SchedMadd,
    Phase::SchedWc,
    Phase::SchedProbe,
    Phase::SchedMerge,
    Phase::EngineEvents,
    Phase::EngineViewSync,
    Phase::EngineRound,
    Phase::EngineAdvance,
    Phase::CoordObsRecv,
    Phase::CoordSchedule,
    Phase::CoordReconcile,
    Phase::CoordBroadcast,
    Phase::AgentApply,
];

impl Phase {
    /// Stable snake_case name, used in tables and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SchedTotal => "sched_total",
            Phase::SchedOrder => "sched_order",
            Phase::SchedContention => "sched_contention",
            Phase::SchedMadd => "sched_madd",
            Phase::SchedWc => "sched_wc",
            Phase::SchedProbe => "sched_probe",
            Phase::SchedMerge => "sched_merge",
            Phase::EngineEvents => "engine_events",
            Phase::EngineViewSync => "engine_view_sync",
            Phase::EngineRound => "engine_round",
            Phase::EngineAdvance => "engine_advance",
            Phase::CoordObsRecv => "coord_obs_recv",
            Phase::CoordSchedule => "coord_schedule",
            Phase::CoordReconcile => "coord_reconcile_merge",
            Phase::CoordBroadcast => "coord_broadcast",
            Phase::AgentApply => "agent_apply",
        }
    }
}

/// One [`LogHist`] per [`Phase`] — the span profiler's storage.
///
/// `observe` is **not** feature-gated: gating is the caller's job,
/// exactly as with [`Hist::observe`]. The scheduler's `SchedTimings`
/// records unconditionally (it already pays for `Instant::now`
/// regardless); the engine and runtime record only inside
/// `if telemetry::enabled()` blocks / when a metrics hub exists.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanProfiler {
    hists: [LogHist; PHASES.len()],
}

impl SpanProfiler {
    /// An empty profiler.
    pub fn new() -> SpanProfiler {
        SpanProfiler::default()
    }

    /// Folds one duration sample (nanoseconds) into `phase`.
    #[inline]
    pub fn observe(&mut self, phase: Phase, ns: u64) {
        self.hists[phase as usize].observe(ns);
    }

    /// The histogram for `phase`.
    pub fn hist(&self, phase: Phase) -> &LogHist {
        &self.hists[phase as usize]
    }

    /// Folds another profiler in, phase by phase.
    pub fn merge(&mut self, other: &SpanProfiler) {
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
    }

    /// `(phase name, histogram)` for every phase with samples, in
    /// display order.
    pub fn rows(&self) -> Vec<(&'static str, &LogHist)> {
        PHASES
            .iter()
            .filter(|p| self.hist(**p).count > 0)
            .map(|p| (p.name(), self.hist(*p)))
            .collect()
    }

    /// Starts an RAII span: the guard records the elapsed wall time
    /// into `phase` when dropped. The guard borrows the profiler
    /// mutably for its scope, so it suits sections that don't touch
    /// the profiler themselves.
    pub fn span(&mut self, phase: Phase) -> SpanGuard<'_> {
        SpanGuard {
            prof: self,
            phase,
            start: Instant::now(),
        }
    }
}

/// RAII guard from [`SpanProfiler::span`]: records `start.elapsed()`
/// into its phase on drop.
pub struct SpanGuard<'a> {
    prof: &'a mut SpanProfiler,
    phase: Phase,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.prof
            .observe(self.phase, self.start.elapsed().as_nanos() as u64);
    }
}

/// Per-policy mechanism counters — the paper's levers (D1–D5) as
/// monotonic event counts, owned by each scheduler and read back after
/// a run.
///
/// Schedulers increment these only inside `if telemetry::enabled()`
/// blocks, so feature-off builds pay nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MechCounters {
    /// CoFlows that moved to a different priority queue (per-flow
    /// threshold crossings, D3).
    pub queue_transitions: u64,
    /// CoFlows whose FIFO-derived starvation deadline newly expired
    /// (D5 trigger events).
    pub deadline_expiries: u64,
    /// Rounds in which at least one expired CoFlow was force-prioritized
    /// to the front (D5 rescues; mirrors `starvation_kicks`).
    pub starvation_rescues: u64,
    /// All-or-none gang admissions that fit and were granted (D2).
    pub gang_admissions: u64,
    /// All-or-none gang admissions rejected because the gang rate was
    /// zero at some contended port (D2).
    pub gang_rejections: u64,
    /// CoFlows skipped because not all flows were ready yet
    /// (out-of-sync avoidance, D2).
    pub unready_skips: u64,
    /// Flows granted leftover capacity by work conservation (D4).
    pub wc_backfills: u64,
    /// Intra-queue order comparisons performed by the LCoF sort (D1
    /// work; for Aalo, the FIFO sort's comparisons).
    pub lcof_comparisons: u64,
    /// MADD gang-rate evaluations (shared-bottleneck rate probes).
    pub madd_evals: u64,
    /// Port join/leave deltas applied by the incremental contention
    /// tracker (the work a full rebuild would redo from scratch).
    pub contention_deltas: u64,
    /// Contention rounds that had to rebuild tracker state (no usable
    /// `changed` hint, or a port-space change).
    pub contention_rebuilds: u64,
    /// Contention rounds served purely by delta updates — full
    /// `contention_into` rebuilds avoided.
    pub contention_rebuilds_avoided: u64,
    /// Speculative gang probes recomputed in the parallel merge because
    /// an earlier admission drew down one of the CoFlow's ports.
    pub probe_revalidations: u64,
    /// CoFlows whose LCoF ordering key changed and were re-slotted in
    /// the incremental order book (one remove + insert each).
    pub order_rekeys: u64,
    /// Rounds where the incremental order book emitted the LCoF order
    /// without a full re-sort.
    pub order_resorts_avoided: u64,
}

impl MechCounters {
    /// `(name, value)` rows in display order, for table rendering
    /// without the renderer knowing the fields.
    pub fn rows(&self) -> [(&'static str, u64); 15] {
        [
            ("queue_transitions", self.queue_transitions),
            ("deadline_expiries", self.deadline_expiries),
            ("starvation_rescues", self.starvation_rescues),
            ("gang_admissions", self.gang_admissions),
            ("gang_rejections", self.gang_rejections),
            ("unready_skips", self.unready_skips),
            ("wc_backfills", self.wc_backfills),
            ("lcof_comparisons", self.lcof_comparisons),
            ("madd_evals", self.madd_evals),
            ("contention_deltas", self.contention_deltas),
            ("contention_rebuilds", self.contention_rebuilds),
            (
                "contention_rebuilds_avoided",
                self.contention_rebuilds_avoided,
            ),
            ("probe_revalidations", self.probe_revalidations),
            ("order_rekeys", self.order_rekeys),
            ("order_resorts_avoided", self.order_resorts_avoided),
        ]
    }
}

/// One scheduling round's deterministic state, serialized as a JSONL
/// line. Integers only — see the module docs on diffability.
#[derive(Clone, Copy, Debug)]
pub struct RoundSnapshot<'a> {
    /// Scheduling-round ordinal (0-based).
    pub round: u64,
    /// Simulated time at the boundary, in nanoseconds.
    pub now_ns: u64,
    /// CoFlows active (arrived, unfinished) at the boundary.
    pub active_coflows: usize,
    /// Flows currently holding a nonzero rate.
    pub flowing: usize,
    /// Flows whose state changed since the previous boundary (the
    /// dirty set the incremental view-sync walked).
    pub dirty: usize,
    /// Completion-heap length after the round's pushes.
    pub heap_len: usize,
    /// Ports fully allocated this round (remaining = 0, capacity > 0).
    pub saturated_ports: usize,
    /// Fabric utilization in permille (allocated / capacity × 1000).
    pub utilization_permille: u64,
    /// Per-priority-queue CoFlow occupancy, lowest queue first; empty
    /// when the policy has no queue structure.
    pub queue_occupancy: &'a [usize],
}

/// The instrumentation handle threaded (as `Option<&mut Telemetry>`)
/// through instrumented entry points.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    counters: [u64; COUNTERS.len()],
    /// Dirty-set size per scheduling round.
    pub dirty_set: Hist,
    /// Completion-heap length per scheduling round.
    pub heap_len: Hist,
    /// Wall-clock nanoseconds per scheduling round (summary only,
    /// never in the JSONL trace). Log2-bucketed so tails (p99) are
    /// visible, not just the mean.
    pub round_wall_ns: LogHist,
    /// Active CoFlows per scheduling round.
    pub active_coflows: Hist,
    /// Coordinator sync-round wall latency, nanoseconds.
    pub sync_round_ns: LogHist,
    /// Per-phase wall-time spans (engine loop sections, runtime epoch
    /// lifecycle; the scheduler's phases live in `SchedTimings`, which
    /// records into the same [`Phase`]/[`LogHist`] vocabulary).
    pub spans: SpanProfiler,
    record_jsonl: bool,
    jsonl: String,
}

impl Telemetry {
    /// A handle that aggregates counters and histograms only.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// A handle that additionally buffers the JSONL round trace.
    pub fn with_jsonl() -> Telemetry {
        Telemetry {
            record_jsonl: true,
            ..Telemetry::default()
        }
    }

    /// Bumps `c` by one. No-op with the feature off.
    #[inline]
    pub fn incr(&mut self, c: Counter) {
        if enabled() {
            self.counters[c as usize] += 1;
        }
    }

    /// Bumps `c` by `n`. No-op with the feature off.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        if enabled() {
            self.counters[c as usize] += n;
        }
    }

    /// Current value of `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Whether this handle wants per-round JSONL snapshots.
    pub fn wants_jsonl(&self) -> bool {
        enabled() && self.record_jsonl
    }

    /// Appends one round snapshot as a JSONL line (hand-formatted; the
    /// workspace's serde is a vendored API stub and cannot serialize).
    /// No-op unless built via [`Telemetry::with_jsonl`].
    pub fn snapshot_round(&mut self, s: &RoundSnapshot<'_>) {
        if !self.wants_jsonl() {
            return;
        }
        let _ = write!(
            self.jsonl,
            "{{\"round\":{},\"now_ns\":{},\"active\":{},\"flowing\":{},\"dirty\":{},\
             \"heap\":{},\"sat_ports\":{},\"util_pm\":{},\"queues\":[",
            s.round,
            s.now_ns,
            s.active_coflows,
            s.flowing,
            s.dirty,
            s.heap_len,
            s.saturated_ports,
            s.utilization_permille,
        );
        for (i, q) in s.queue_occupancy.iter().enumerate() {
            if i > 0 {
                self.jsonl.push(',');
            }
            let _ = write!(self.jsonl, "{q}");
        }
        self.jsonl.push_str("]}\n");
    }

    /// The buffered JSONL trace (empty unless built via
    /// [`Telemetry::with_jsonl`]).
    pub fn jsonl(&self) -> &str {
        &self.jsonl
    }

    /// Fraction of heap pops that surfaced stale, in `[0, 1]`.
    pub fn stale_pop_ratio(&self) -> f64 {
        let stale = self.counter(Counter::HeapPopStale);
        let pops = stale
            + self.counter(Counter::HeapPopCurrent)
            + self.counter(Counter::HeapPopSuperseded)
            + self.counter(Counter::HeapPopDead);
        if pops == 0 {
            0.0
        } else {
            stale as f64 / pops as f64
        }
    }

    /// `(name, value)` rows for every counter, in display order.
    pub fn counter_rows(&self) -> [(&'static str, u64); COUNTERS.len()] {
        let mut rows = [("", 0u64); COUNTERS.len()];
        for (row, &c) in rows.iter_mut().zip(COUNTERS.iter()) {
            *row = (c.name(), self.counter(c));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_matches_feature() {
        assert_eq!(enabled(), cfg!(feature = "telemetry"));
    }

    #[test]
    fn hist_tracks_min_mean_max() {
        let mut h = Hist::default();
        assert_eq!(h.mean(), 0.0);
        for v in [4, 2, 9] {
            h.observe(v);
        }
        assert_eq!((h.min, h.max, h.count, h.sum), (2, 9, 3, 15));
        assert_eq!(h.mean(), 5.0);
    }

    #[test]
    fn hist_sum_saturates_instead_of_wrapping() {
        let mut h = Hist::default();
        h.observe(u64::MAX);
        h.observe(100);
        assert_eq!(h.sum, u64::MAX, "sum must pin at the ceiling");
        assert_eq!(h.count, 2);
        assert_eq!((h.min, h.max), (100, u64::MAX));
    }

    #[test]
    fn loghist_empty_is_all_zero() {
        let h = LogHist::new();
        assert_eq!((h.count, h.sum, h.max), (0, 0, 0));
        assert_eq!(h.mean(), 0.0);
        assert_eq!((h.p50(), h.p90(), h.p99()), (0, 0, 0));
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn loghist_single_sample_quantiles_clamp_to_max() {
        let mut h = LogHist::new();
        h.observe(1000);
        // 1000 lands in bucket [512, 1024) whose upper bound is 1023,
        // but every quantile clamps to the exact observed max.
        assert_eq!((h.p50(), h.p90(), h.p99()), (1000, 1000, 1000));
        assert_eq!(h.quantile(0.0), 1000);
        assert_eq!(h.max, 1000);
    }

    #[test]
    fn loghist_bucket_boundaries() {
        // Powers of two sit at the *lower* edge of their bucket: the
        // bucket for v is [2^(i-1), 2^i) with upper bound 2^i − 1.
        let mut h = LogHist::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        // Rank-1 (q→0) is the zero bucket.
        assert_eq!(h.quantile(0.0), 0);
        // Median (rank 4) is the value 3, in bucket [2,4) → upper 3.
        assert_eq!(h.p50(), 3);
        // Max is exact.
        assert_eq!(h.quantile(1.0), 8);
    }

    #[test]
    fn loghist_saturates_at_u64_max() {
        let mut h = LogHist::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum, u64::MAX, "sum saturates");
        assert_eq!(h.count, 2, "count stays exact");
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
    }

    #[test]
    fn loghist_quantiles_are_monotone() {
        // A skewed distribution across many buckets.
        let mut h = LogHist::new();
        for i in 0..1000u64 {
            h.observe(i * i);
        }
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        assert!(p99 <= h.max, "p99 {p99} > max {}", h.max);
        // Quantiles never under-report: p90 covers ≥ 90% of samples.
        let below = (0..1000u64).filter(|i| i * i <= p90).count();
        assert!(below >= 900, "p90 bound covers only {below}/1000");
    }

    #[test]
    fn loghist_merge_adds_bucketwise() {
        let (mut a, mut b) = (LogHist::new(), LogHist::new());
        for v in [1u64, 10, 100] {
            a.observe(v);
        }
        for v in [1000u64, 10_000] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 11_111);
        assert_eq!(a.max, 10_000);
        assert_eq!(a.quantile(1.0), 10_000);
    }

    #[test]
    fn span_profiler_records_phases_in_display_order() {
        let mut p = SpanProfiler::new();
        p.observe(Phase::CoordSchedule, 500);
        p.observe(Phase::SchedTotal, 100);
        p.observe(Phase::SchedTotal, 200);
        let rows = p.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "sched_total");
        assert_eq!(rows[0].1.count, 2);
        assert_eq!(rows[1].0, "coord_schedule");
        // RAII guard: drop records a nonzero elapsed sample.
        {
            let _g = p.span(Phase::EngineRound);
        }
        assert_eq!(p.hist(Phase::EngineRound).count, 1);
    }

    #[test]
    fn phase_names_are_unique_and_cover_all() {
        let names: Vec<_> = PHASES.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), PHASES.len(), "duplicate phase name");
    }

    #[test]
    fn counters_roundtrip_when_enabled() {
        let mut t = Telemetry::new();
        t.incr(Counter::HeapPush);
        t.add(Counter::HeapPopStale, 3);
        if enabled() {
            assert_eq!(t.counter(Counter::HeapPush), 1);
            assert_eq!(t.counter(Counter::HeapPopStale), 3);
        } else {
            // Feature off: increments are compiled-out no-ops.
            assert_eq!(t.counter(Counter::HeapPush), 0);
            assert_eq!(t.counter(Counter::HeapPopStale), 0);
        }
    }

    #[test]
    fn stale_ratio_guards_zero_pops() {
        assert_eq!(Telemetry::new().stale_pop_ratio(), 0.0);
    }

    #[test]
    fn jsonl_lines_are_integer_only_and_ordered() {
        let mut t = Telemetry::with_jsonl();
        t.snapshot_round(&RoundSnapshot {
            round: 0,
            now_ns: 8_000_000,
            active_coflows: 2,
            flowing: 5,
            dirty: 3,
            heap_len: 7,
            saturated_ports: 1,
            utilization_permille: 421,
            queue_occupancy: &[1, 1, 0],
        });
        if enabled() {
            assert_eq!(
                t.jsonl(),
                "{\"round\":0,\"now_ns\":8000000,\"active\":2,\"flowing\":5,\"dirty\":3,\
                 \"heap\":7,\"sat_ports\":1,\"util_pm\":421,\"queues\":[1,1,0]}\n"
            );
        } else {
            assert!(t.jsonl().is_empty());
        }
    }

    #[test]
    fn counter_rows_cover_every_counter() {
        let rows = Telemetry::new().counter_rows();
        assert_eq!(rows.len(), COUNTERS.len());
        assert!(rows.iter().all(|(n, _)| !n.is_empty()));
        let mech = MechCounters::default().rows();
        assert_eq!(mech.len(), 15);
    }
}
