//! Deterministic Prometheus text exposition (format 0.0.4).
//!
//! One renderer for the whole workspace, so the runtime's `/metrics`
//! endpoint and the bench `--metrics-out` dumps share a single layout
//! discipline:
//!
//! - **Families appear in the order the caller emits them** and series
//!   within a family in the order given — callers are expected to feed
//!   sorted series (the runtime hub iterates `BTreeMap`s), which makes
//!   the whole page byte-stable for a given metric state.
//! - **Values are integers only.** Deterministic series (message
//!   counts, bytes, epochs) are exactly reproducible across runs;
//!   wall-time families (nanosecond histograms) are integers too but
//!   vary run to run, so they are emitted under an explicit
//!   `wall-clock` section banner — a diff of two expositions separates
//!   "the run behaved differently" from "the run was merely
//!   slower/faster".
//! - Latency histograms render as Prometheus summaries with quantile
//!   labels `0.5`/`0.9`/`0.99`/`1` (the last is the exact max), plus
//!   `_count` and `_sum` series.
//!
//! The vendored serde is an API stub, so — like every other artifact
//! in the workspace — the exposition is hand-formatted.

use crate::LogHist;
use std::fmt::Write as _;

/// An in-progress Prometheus text page.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty page.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emits a section banner comment separating metric groups (used
    /// to fence deterministic families from wall-clock families).
    pub fn section(&mut self, title: &str) {
        let _ = writeln!(self.out, "# --- {title} ---");
    }

    fn family(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn series(&mut self, name: &str, labels: &str, value: u64) {
        if labels.is_empty() {
            let _ = writeln!(self.out, "{name} {value}");
        } else {
            let _ = writeln!(self.out, "{name}{{{labels}}} {value}");
        }
    }

    /// Emits one counter family. `series` pairs are
    /// `(rendered-labels, value)` with `""` for an unlabeled series;
    /// the caller supplies them pre-sorted.
    pub fn counter(&mut self, name: &str, help: &str, series: &[(&str, u64)]) {
        self.family(name, help, "counter");
        for (labels, v) in series {
            self.series(name, labels, *v);
        }
    }

    /// Emits one gauge family (same conventions as [`PromText::counter`]).
    pub fn gauge(&mut self, name: &str, help: &str, series: &[(&str, u64)]) {
        self.family(name, help, "gauge");
        for (labels, v) in series {
            self.series(name, labels, *v);
        }
    }

    /// Emits one summary family with a `phase` label per row: quantile
    /// series 0.5/0.9/0.99/1 (1 = exact max) plus `_count`/`_sum`.
    /// Rows render in the order given.
    pub fn phase_summary(&mut self, name: &str, help: &str, rows: &[(&str, &LogHist)]) {
        self.family(name, help, "summary");
        for (phase, h) in rows {
            for (q, v) in [
                ("0.5", h.p50()),
                ("0.9", h.p90()),
                ("0.99", h.p99()),
                ("1", h.max),
            ] {
                let _ = writeln!(self.out, "{name}{{phase=\"{phase}\",quantile=\"{q}\"}} {v}");
            }
        }
        for (phase, h) in rows {
            let _ = writeln!(self.out, "{name}_count{{phase=\"{phase}\"}} {}", h.count);
            let _ = writeln!(self.out, "{name}_sum{{phase=\"{phase}\"}} {}", h.sum);
        }
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders `labels` as a Prometheus label body (`k1="v1",k2="v2"`).
/// Values must not contain `"` or `\` — the workspace only labels by
/// identifiers and small integers, so no escaping is implemented.
pub fn label_body(labels: &[(&str, &str)]) -> String {
    let mut s = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{v}\"");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The golden layout test: a synthetic page must render
    /// byte-stable — family order = emission order, series order =
    /// caller order, integer values only, quantile ladder fixed.
    #[test]
    fn exposition_layout_is_byte_stable() {
        let mut h = LogHist::new();
        for v in [100u64, 200, 400] {
            h.observe(v);
        }
        let mut p = PromText::new();
        p.section("deterministic");
        p.counter(
            "saath_coord_epochs_total",
            "Coordinator sync epochs completed",
            &[("", 42)],
        );
        p.counter(
            "saath_shard_slices_total",
            "Shard schedule slices received",
            &[("shard=\"0\"", 7), ("shard=\"1\"", 9)],
        );
        p.gauge(
            "saath_shard_replica_lag_epochs",
            "Reconciler epoch minus last slice epoch per shard",
            &[("shard=\"0\"", 0), ("shard=\"1\"", 2)],
        );
        p.section("wall-clock (nondeterministic values, stable layout)");
        p.phase_summary(
            "saath_epoch_phase_ns",
            "Epoch lifecycle phase latency in nanoseconds",
            &[("coord_schedule", &h)],
        );
        let got = p.finish();
        let want = "\
# --- deterministic ---
# HELP saath_coord_epochs_total Coordinator sync epochs completed
# TYPE saath_coord_epochs_total counter
saath_coord_epochs_total 42
# HELP saath_shard_slices_total Shard schedule slices received
# TYPE saath_shard_slices_total counter
saath_shard_slices_total{shard=\"0\"} 7
saath_shard_slices_total{shard=\"1\"} 9
# HELP saath_shard_replica_lag_epochs Reconciler epoch minus last slice epoch per shard
# TYPE saath_shard_replica_lag_epochs gauge
saath_shard_replica_lag_epochs{shard=\"0\"} 0
saath_shard_replica_lag_epochs{shard=\"1\"} 2
# --- wall-clock (nondeterministic values, stable layout) ---
# HELP saath_epoch_phase_ns Epoch lifecycle phase latency in nanoseconds
# TYPE saath_epoch_phase_ns summary
saath_epoch_phase_ns{phase=\"coord_schedule\",quantile=\"0.5\"} 255
saath_epoch_phase_ns{phase=\"coord_schedule\",quantile=\"0.9\"} 400
saath_epoch_phase_ns{phase=\"coord_schedule\",quantile=\"0.99\"} 400
saath_epoch_phase_ns{phase=\"coord_schedule\",quantile=\"1\"} 400
saath_epoch_phase_ns_count{phase=\"coord_schedule\"} 3
saath_epoch_phase_ns_sum{phase=\"coord_schedule\"} 700
";
        assert_eq!(got, want);
    }

    #[test]
    fn label_body_renders_pairs_in_order() {
        assert_eq!(label_body(&[]), "");
        assert_eq!(label_body(&[("shard", "3")]), "shard=\"3\"");
        assert_eq!(label_body(&[("a", "1"), ("b", "x")]), "a=\"1\",b=\"x\"");
    }
}
