//! A uniform factory over every scheduler in the workspace.

use crate::engine::{simulate, SimConfig, SimError, SimOutput};
use saath_core::view::CoflowScheduler;
use saath_core::{Aalo, OfflinePolicy, OfflineScheduler, QueueConfig, Saath, SaathConfig, UcTcp};
use saath_workload::{DynamicsSpec, Trace};

/// Every scheduling policy the evaluation sweeps, with its parameters.
#[derive(Clone, Debug)]
pub enum Policy {
    /// Saath with a full configuration (ablations included).
    Saath(SaathConfig),
    /// Aalo with its queue structure.
    Aalo(QueueConfig),
    /// Varys: SEBF + MADD, clairvoyant.
    Varys,
    /// Shortest CoFlow First, clairvoyant.
    Scf,
    /// Shortest Remaining Time First, clairvoyant.
    Srtf,
    /// Least Waiting Time First (`t·k`), clairvoyant.
    Lwtf,
    /// Uncoordinated per-flow max-min ("TCP").
    UcTcp,
}

impl Policy {
    /// The default full-Saath policy.
    pub fn saath() -> Policy {
        Policy::Saath(SaathConfig::default())
    }

    /// The default Aalo policy.
    pub fn aalo() -> Policy {
        Policy::Aalo(QueueConfig::default())
    }

    /// Report name (matches the schedulers' own).
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Saath(c) => {
                // Distinguish the Fig 10 ablations in reports.
                match (c.all_or_none, c.per_flow_threshold, c.lcof) {
                    (true, true, true) => "saath",
                    (true, true, false) => "saath[a/n+p/f]",
                    (true, false, false) => "saath[a/n]",
                    _ => "saath[custom]",
                }
            }
            Policy::Aalo(_) => "aalo",
            Policy::Varys => "varys-sebf",
            Policy::Scf => "scf",
            Policy::Srtf => "srtf",
            Policy::Lwtf => "lwtf",
            Policy::UcTcp => "uc-tcp",
        }
    }

    /// Whether this policy needs ground-truth sizes.
    pub fn clairvoyant(&self) -> bool {
        matches!(
            self,
            Policy::Varys | Policy::Scf | Policy::Srtf | Policy::Lwtf
        )
    }

    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn CoflowScheduler> {
        match self {
            Policy::Saath(c) => Box::new(Saath::new(c.clone())),
            Policy::Aalo(q) => Box::new(Aalo::new(q.clone())),
            Policy::Varys => Box::new(OfflineScheduler::varys()),
            Policy::Scf => Box::new(OfflineScheduler::new(OfflinePolicy::Scf)),
            Policy::Srtf => Box::new(OfflineScheduler::new(OfflinePolicy::Srtf)),
            Policy::Lwtf => Box::new(OfflineScheduler::new(OfflinePolicy::Lwtf)),
            Policy::UcTcp => Box::new(UcTcp::new()),
        }
    }
}

/// Builds the policy's scheduler and replays `trace` under it, setting
/// the oracle exposure automatically.
pub fn run_policy(
    trace: &Trace,
    policy: &Policy,
    cfg: &SimConfig,
    dynamics: &DynamicsSpec,
) -> Result<SimOutput, SimError> {
    let mut cfg = cfg.clone();
    cfg.clairvoyant = policy.clairvoyant();
    let mut sched = policy.build();
    simulate(trace, sched.as_mut(), &cfg, dynamics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saath_workload::gen;

    #[test]
    fn names_and_clairvoyance() {
        assert_eq!(Policy::saath().name(), "saath");
        assert_eq!(
            Policy::Saath(SaathConfig::ablation_an()).name(),
            "saath[a/n]"
        );
        assert_eq!(
            Policy::Saath(SaathConfig::ablation_an_pf()).name(),
            "saath[a/n+p/f]"
        );
        assert_eq!(Policy::aalo().name(), "aalo");
        assert!(!Policy::saath().clairvoyant());
        assert!(Policy::Varys.clairvoyant());
        assert!(Policy::Lwtf.clairvoyant());
        assert!(!Policy::UcTcp.clairvoyant());
    }

    #[test]
    fn run_policy_handles_oracle_automatically() {
        let trace = gen::generate(&gen::small(5, 8, 20));
        for p in [
            Policy::saath(),
            Policy::aalo(),
            Policy::Varys,
            Policy::Scf,
            Policy::Srtf,
            Policy::Lwtf,
            Policy::UcTcp,
        ] {
            let out = run_policy(&trace, &p, &SimConfig::default(), &DynamicsSpec::none())
                .unwrap_or_else(|e| panic!("{} failed: {e}", p.name()));
            assert_eq!(out.records.len(), 20, "{} lost coflows", p.name());
            assert_eq!(out.unfinished, 0, "{}", p.name());
        }
    }
}
