//! Partitioned-compute sharding: per-shard views with bounded-staleness
//! contention summaries.
//!
//! [`crate::engine`] drives one [`CoflowScheduler`]; PR 5's
//! `ShardedScheduler` (saath-runtime) models the *replicated* sharded
//! coordinator — every shard recomputes the full schedule, so K shards
//! cost K× the compute. [`PartitionedScheduler`] models the
//! *partitioned* coordinator: each shard runs its own [`Saath`] over
//! full views of only its **owned** CoFlows ([`shard_of`]), plus one
//! compact [`ContentionSummary`] per remote shard refreshed every S
//! rounds (the staleness budget). Per-shard scheduling cost then scales
//! with owned CoFlows, not all CoFlows.
//!
//! ## What crosses the shard boundary
//!
//! At each summary refresh, shard `s` exports (see
//! [`saath_core::summary`]):
//!
//! * per-port counts of its CoFlows with unfinished flows — consumed by
//!   remote shards as a `k_c` addend (max count over the owned CoFlow's
//!   ports, per remote shard: a deterministic lower bound on distinct
//!   remote contenders), keeping LCoF ordering cluster-aware;
//! * the per-port rates its last slice claimed — pre-charged against
//!   every peer's bank, but only down to a **reserve** of capacity/K
//!   per port. The reserve is load-bearing: with full deferral, two
//!   shards sharing a hot port oscillate in lockstep (both back off,
//!   the port idles, both rush back in — measurably *worse* with
//!   fresher summaries), and with one-sided deferral a saturated peer
//!   monopolizes the port. The floor keeps backoff partial — every
//!   shard can always admit its 1/K slice anywhere — at the price of a
//!   bounded overcommit;
//! * per-queue CoFlow counts and `k_c` sums, for observability.
//!
//! Between refreshes shards decide on summaries up to S−1 rounds old;
//! the port-capacity-clamping merge ([`merge_rates_rotated`], clamp
//! order rotated by round so no flow is systematically starved) stays
//! the safety net that restores feasibility when stale summaries let
//! two shards claim the same port.
//!
//! ## The S=0 oracle contract
//!
//! S=0 means *exchange every round, omitting nothing* — the summary
//! degenerates to the full view, so the implementation runs the
//! replicated path: every shard computes over the full view and emits
//! its owned slice, exactly like `ShardedScheduler`. Records are then
//! byte-identical to the single coordinator for any K (the replicas
//! agree, so the merge never clamps — debug-asserted). S≥1 is the
//! genuinely partitioned path, which trades bounded CCT deviation
//! (measured by the `repro scale --partitioned` sweep) for sub-linear
//! per-shard cost.

use saath_core::merge::{merge_rates, merge_rates_rotated};
use saath_core::summary::{port_rates_of_slice, remote_contention, ContentionSummary};
use saath_core::timing::SchedTimings;
use saath_core::view::{shard_of, ClusterView, CoflowScheduler, CoflowView, Schedule};
use saath_core::{Saath, SaathConfig};
use saath_fabric::PortBank;
use saath_simcore::{CoflowId, FastHashMap, FlowId, PortId, Rate, Time};

/// A [`CoflowScheduler`] that partitions the scheduling compute across
/// K in-process [`Saath`] instances coupled only by bounded-staleness
/// [`ContentionSummary`]s. See the module docs; deterministic, so the
/// sweep's deviation-vs-staleness curve replays bit-for-bit.
pub struct PartitionedScheduler {
    shards: Vec<Saath>,
    cfg: SaathConfig,
    /// Summary refresh period in rounds; 0 = replicated oracle mode.
    staleness: u64,
    /// Recreate every shard policy at this time (kill drill).
    restart_at: Option<Time>,
    restarted: bool,
    round: u64,
    last_export_round: Option<u64>,
    last_num_nodes: usize,
    /// Per-shard owned views, maintained incrementally from the
    /// engine's `changed` hint (only changed CoFlows are re-cloned).
    owned: Vec<Vec<CoflowView>>,
    /// CoFlow id → slot in its owning shard's `owned` vector.
    slot: FastHashMap<CoflowId, u32>,
    /// Per-shard changed hints forwarded to the inner schedulers.
    owned_changed: Vec<Vec<CoflowId>>,
    /// This round's hints are `None` (full resync) instead.
    full_hint: bool,
    /// Latest summary per shard (empty until the first refresh).
    summaries: Vec<ContentionSummary>,
    /// id → position in the current view, rebuilt on hinted rounds.
    view_index: FastHashMap<CoflowId, u32>,
    gone: Vec<CoflowId>,
    remote_buf: Vec<(CoflowId, u32)>,
    port_scratch: Vec<u32>,
    scratch: PortBank,
    slice: Schedule,
    entries: Vec<(FlowId, Rate, PortId, PortId)>,
    shard_entries: Vec<Vec<(FlowId, Rate, PortId, PortId)>>,
    // -- counters (see accessors) --
    stale_order_decisions: u64,
    summary_bytes_exchanged: u64,
    summary_refreshes: u64,
    merge_clamps: u64,
}

impl PartitionedScheduler {
    /// K shards of `cfg`-configured Saath with summary staleness budget
    /// `staleness` (in rounds; 0 = replicated oracle mode). S≥1
    /// requires incremental contention + LCoF — the summary export
    /// reads the contention tracker, which is idle otherwise.
    pub fn new(k: usize, staleness: u64, cfg: SaathConfig) -> PartitionedScheduler {
        assert!(k > 0, "need at least one shard");
        assert!(
            staleness == 0 || (cfg.incremental_contention && cfg.lcof),
            "partitioned mode (S ≥ 1) requires incremental_contention and lcof"
        );
        PartitionedScheduler {
            shards: (0..k).map(|_| Saath::new(cfg.clone())).collect(),
            cfg,
            staleness,
            restart_at: None,
            restarted: false,
            round: 0,
            last_export_round: None,
            last_num_nodes: 0,
            owned: (0..k).map(|_| Vec::new()).collect(),
            slot: FastHashMap::default(),
            owned_changed: (0..k).map(|_| Vec::new()).collect(),
            full_hint: true,
            summaries: (0..k).map(|_| ContentionSummary::default()).collect(),
            view_index: FastHashMap::default(),
            gone: Vec::new(),
            remote_buf: Vec::new(),
            port_scratch: Vec::new(),
            scratch: PortBank::uniform(1, Rate(1)),
            slice: Schedule::default(),
            entries: Vec::new(),
            shard_entries: (0..k).map(|_| Vec::new()).collect(),
            stale_order_decisions: 0,
            summary_bytes_exchanged: 0,
            summary_refreshes: 0,
            merge_clamps: 0,
        }
    }

    /// Like [`PartitionedScheduler::new`] but recreates every shard
    /// policy on the first round at or after `at` (kill drill: all
    /// incremental state, including summaries, is lost and rebuilt).
    pub fn with_restart(
        k: usize,
        staleness: u64,
        cfg: SaathConfig,
        at: Time,
    ) -> PartitionedScheduler {
        let mut s = PartitionedScheduler::new(k, staleness, cfg);
        s.restart_at = Some(at);
        s
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The staleness budget S (rounds between summary refreshes).
    pub fn staleness(&self) -> u64 {
        self.staleness
    }

    /// Per-shard scheduling-phase timings — the partitioned-mode cost
    /// metric (`sched_ms` of the busiest shard vs the single
    /// coordinator's).
    pub fn shard_timings(&self, shard: usize) -> &SchedTimings {
        &self.shards[shard].timings
    }

    /// Ordering decisions made against summaries older than the
    /// unavoidable one-round lag (or before any summary existed):
    /// counts every owned CoFlow ordered on such a round.
    pub fn stale_order_decisions(&self) -> u64 {
        self.stale_order_decisions
    }

    /// Total summary bytes shipped (each refresh sends every shard's
    /// summary to its K−1 peers, in the runtime wire encoding).
    pub fn summary_bytes_exchanged(&self) -> u64 {
        self.summary_bytes_exchanged
    }

    /// Number of summary refresh rounds.
    pub fn summary_refreshes(&self) -> u64 {
        self.summary_refreshes
    }

    /// Merge clamps across the run — nonzero only where stale summaries
    /// let shards overcommit a port (always zero at S=0).
    pub fn merge_clamps(&self) -> u64 {
        self.merge_clamps
    }

    /// Age (rounds) of the summaries the *next* round would consume;
    /// `None` before the first refresh.
    pub fn summary_age_rounds(&self) -> Option<u64> {
        self.last_export_round.map(|e| self.round - e)
    }

    /// Rebuilds or incrementally patches the per-shard owned views from
    /// the engine view. `changed: None` forces a full resync; otherwise
    /// only hinted CoFlows are re-cloned and departures are detected
    /// against the view's id set (mirroring `ContentionTracker`).
    fn sync_owned_views(&mut self, view: &ClusterView<'_>, changed: Option<&[CoflowId]>) {
        let k = self.shards.len();
        match changed {
            None => {
                for v in &mut self.owned {
                    v.clear();
                }
                self.slot.clear();
                for c in view.coflows {
                    let s = shard_of(c.id, k);
                    self.slot.insert(c.id, self.owned[s].len() as u32);
                    self.owned[s].push(c.clone());
                }
                self.full_hint = true;
            }
            Some(ch) => {
                self.view_index.clear();
                for (i, c) in view.coflows.iter().enumerate() {
                    self.view_index.insert(c.id, i as u32);
                }
                // Departures (sorted for deterministic slot churn).
                self.gone.clear();
                self.gone.extend(
                    self.slot
                        .keys()
                        .filter(|id| !self.view_index.contains_key(id))
                        .copied(),
                );
                self.gone.sort_unstable();
                for gi in 0..self.gone.len() {
                    let id = self.gone[gi];
                    let s = shard_of(id, k);
                    let at = self.slot.remove(&id).expect("departure not tracked") as usize;
                    self.owned[s].swap_remove(at);
                    if at < self.owned[s].len() {
                        let moved = self.owned[s][at].id;
                        self.slot.insert(moved, at as u32);
                    }
                }
                // Changed + new CoFlows: re-clone just those.
                for v in &mut self.owned_changed {
                    v.clear();
                }
                for &id in ch {
                    let Some(&vi) = self.view_index.get(&id) else {
                        continue;
                    };
                    let s = shard_of(id, k);
                    match self.slot.get(&id) {
                        Some(&at) => {
                            self.owned[s][at as usize].clone_from(&view.coflows[vi as usize]);
                        }
                        None => {
                            self.slot.insert(id, self.owned[s].len() as u32);
                            self.owned[s].push(view.coflows[vi as usize].clone());
                        }
                    }
                    self.owned_changed[s].push(id);
                }
                self.full_hint = false;
            }
        }
    }
}

impl CoflowScheduler for PartitionedScheduler {
    fn name(&self) -> &'static str {
        // Same name as the inner policy: event logs from partitioned
        // runs stay `diff_logs`-comparable against the replicated /
        // single-coordinator oracle.
        self.shards[0].name()
    }

    fn requires_clairvoyance(&self) -> bool {
        self.shards[0].requires_clairvoyance()
    }

    fn compute(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule) {
        let k = self.shards.len();
        self.round += 1;

        // Kill drill: every shard policy is recreated; summaries and
        // owned-view caches are lost with them, so this round resyncs
        // from scratch with `changed: None`.
        let mut rebuilt = false;
        if let Some(t) = self.restart_at {
            if !self.restarted && view.now >= t {
                self.shards = (0..k).map(|_| Saath::new(self.cfg.clone())).collect();
                for s in &mut self.summaries {
                    s.clear();
                }
                self.last_export_round = None;
                self.restarted = true;
                rebuilt = true;
            }
        }
        // A port-space change invalidates summaries and cached views.
        if self.last_num_nodes != view.num_nodes {
            self.last_num_nodes = view.num_nodes;
            for s in &mut self.summaries {
                s.clear();
            }
            self.last_export_round = None;
            rebuilt = rebuilt || self.round > 1;
        }
        let changed = if rebuilt { None } else { view.changed };

        if k == 1 {
            // One shard owns everything: exactly the single coordinator.
            let v = ClusterView {
                now: view.now,
                num_nodes: view.num_nodes,
                coflows: view.coflows,
                changed,
            };
            self.shards[0].compute(&v, bank, out);
            return;
        }

        if self.staleness == 0 {
            // Replicated oracle mode: full view per shard, owned slices
            // merged — byte-identical to the single coordinator.
            self.entries.clear();
            for (i, sched) in self.shards.iter_mut().enumerate() {
                self.scratch.clone_reset_from(bank);
                self.slice.clear();
                let v = ClusterView {
                    now: view.now,
                    num_nodes: view.num_nodes,
                    coflows: view.coflows,
                    changed,
                };
                sched.compute(&v, &mut self.scratch, &mut self.slice);
                for cf in view.coflows {
                    if shard_of(cf.id, k) != i {
                        continue;
                    }
                    for f in &cf.flows {
                        let r = self.slice.rate_of(f.id);
                        if !r.is_zero() {
                            let e = f.endpoints(view.num_nodes);
                            self.entries.push((f.id, r, e.src, e.dst));
                        }
                    }
                }
            }
            let clamps = merge_rates(&mut self.entries, bank, out);
            debug_assert_eq!(clamps, 0, "S=0 replicas must merge without clamping");
            self.merge_clamps += clamps;
            return;
        }

        // ---- Partitioned path (S ≥ 1) ----
        self.sync_owned_views(view, changed);
        let stale_round = match self.last_export_round {
            None => true,
            Some(e) => self.round - e > 1,
        };

        self.entries.clear();
        for s in 0..k {
            // Remote contention addends for this shard's owned CoFlows.
            self.remote_buf.clear();
            for c in &self.owned[s] {
                let add = remote_contention(
                    c,
                    view.num_nodes,
                    &self.summaries,
                    s as u32,
                    &mut self.port_scratch,
                );
                if add > 0 {
                    self.remote_buf.push((c.id, add));
                }
            }
            self.shards[s].set_remote_contention(&self.remote_buf);

            // Pre-charge every remote shard's claimed port capacity,
            // but never below a reserve of capacity/K per port. The
            // reserve is what makes symmetric deferral stable: without
            // it, two shards sharing a hot port each see the other's
            // claim, both back off completely, the port idles, both
            // summaries go quiet, and both rush back in — a cycle that
            // stays perfectly synchronized at S=1. With the floor, a
            // shard can always admit at least its 1/K slice of any
            // port, so backoff is partial, a saturated peer can never
            // monopolize a hot port, and under full backlog the shards
            // converge to a fair static split. The bounded overcommit
            // this allows is what the rotated merge clamp arbitrates.
            self.scratch.clone_reset_from(bank);
            for t in (0..k).filter(|&t| t != s) {
                for &(p, r) in &self.summaries[t].port_rates {
                    let pid = PortId(p);
                    let reserve = self.scratch.capacity(pid).as_u64() / k as u64;
                    let chargeable =
                        Rate(self.scratch.remaining(pid).as_u64().saturating_sub(reserve));
                    let give = Rate(r).min(chargeable);
                    if !give.is_zero() {
                        self.scratch.allocate(pid, give);
                    }
                }
            }

            self.slice.clear();
            let hint = if self.full_hint {
                None
            } else {
                Some(self.owned_changed[s].as_slice())
            };
            let v = ClusterView {
                now: view.now,
                num_nodes: view.num_nodes,
                coflows: &self.owned[s],
                changed: hint,
            };
            self.shards[s].compute(&v, &mut self.scratch, &mut self.slice);

            self.shard_entries[s].clear();
            for c in &self.owned[s] {
                for f in &c.flows {
                    let r = self.slice.rate_of(f.id);
                    if !r.is_zero() {
                        let e = f.endpoints(view.num_nodes);
                        self.shard_entries[s].push((f.id, r, e.src, e.dst));
                    }
                }
            }
            self.entries.extend_from_slice(&self.shard_entries[s]);
            if stale_round {
                self.stale_order_decisions += self.owned[s].len() as u64;
            }
        }
        // Round-rotated clamp order: clamping is routine here, and a
        // fixed order would starve the same flows every round.
        self.merge_clamps += merge_rates_rotated(&mut self.entries, bank, out, self.round);

        // Refresh summaries once the staleness budget is spent.
        let due = match self.last_export_round {
            None => true,
            Some(e) => self.round - e >= self.staleness,
        };
        if due {
            for s in 0..k {
                let (sched, summary) = (&self.shards[s], &mut self.summaries[s]);
                sched.export_summary(s as u32, self.round, summary);
                port_rates_of_slice(&self.shard_entries[s], &mut summary.port_rates);
                self.summary_bytes_exchanged += (summary.encoded_len() * (k - 1)) as u64;
            }
            self.summary_refreshes += 1;
            self.last_export_round = Some(self.round);
        }
    }

    fn mech_counters(&self) -> Option<&saath_telemetry::MechCounters> {
        self.shards[0].mech_counters()
    }

    fn queue_occupancy(&self) -> Option<&[usize]> {
        self.shards[0].queue_occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saath_core::view::FlowView;
    use saath_simcore::{Bytes, NodeId};

    fn cv(id: u32, flows: &[(u32, u32, u32)]) -> CoflowView {
        CoflowView {
            id: CoflowId(id),
            arrival: Time::ZERO,
            flows: flows
                .iter()
                .map(|&(f, s, d)| FlowView {
                    id: FlowId(f),
                    src: NodeId(s),
                    dst: NodeId(d),
                    sent: Bytes::ZERO,
                    ready: true,
                    finished: false,
                    oracle_size: None,
                })
                .collect(),
            restarted: false,
        }
    }

    fn round(
        sched: &mut PartitionedScheduler,
        coflows: &[CoflowView],
        num_nodes: usize,
        changed: Option<&[CoflowId]>,
    ) -> Schedule {
        let view = ClusterView {
            now: Time::from_millis(1),
            num_nodes,
            coflows,
            changed,
        };
        let mut bank = PortBank::uniform(num_nodes, Rate::gbps(1));
        let mut out = Schedule::default();
        sched.compute(&view, &mut bank, &mut out);
        out
    }

    #[test]
    fn s0_single_round_matches_plain_saath() {
        let coflows = vec![
            cv(1, &[(10, 0, 3)]),
            cv(2, &[(20, 0, 4), (21, 1, 5), (22, 2, 6)]),
            cv(3, &[(30, 1, 7)]),
            cv(4, &[(40, 2, 8)]),
        ];
        let mut plain = Saath::with_defaults();
        let view = ClusterView {
            now: Time::from_millis(1),
            num_nodes: 9,
            coflows: &coflows,
            changed: None,
        };
        let mut bank = PortBank::uniform(9, Rate::gbps(1));
        let mut want = Schedule::default();
        plain.compute(&view, &mut bank, &mut want);
        for k in [1usize, 2, 4] {
            let mut part = PartitionedScheduler::new(k, 0, SaathConfig::default());
            let got = round(&mut part, &coflows, 9, None);
            assert_eq!(
                {
                    let mut r = got.rates.clone();
                    r.sort_unstable_by_key(|&(f, _)| f);
                    r
                },
                {
                    let mut r = want.rates.clone();
                    r.sort_unstable_by_key(|&(f, _)| f);
                    r
                },
                "K={k} S=0 diverged from plain Saath"
            );
            assert_eq!(part.merge_clamps(), 0);
        }
    }

    #[test]
    fn partitioned_rounds_feasible_and_counted() {
        let coflows = vec![
            cv(1, &[(10, 0, 3)]),
            cv(2, &[(20, 0, 4), (21, 1, 5), (22, 2, 6)]),
            cv(3, &[(30, 1, 7)]),
            cv(4, &[(40, 2, 8)]),
        ];
        let mut part = PartitionedScheduler::new(2, 4, SaathConfig::default());
        for r in 0..10u32 {
            let out = round(
                &mut part,
                &coflows,
                9,
                if r == 0 { None } else { Some(&[]) },
            );
            // Feasibility: per-port totals within capacity is merge_rates'
            // invariant; just sanity-check something was scheduled.
            assert!(!out.rates.is_empty(), "round {r} scheduled nothing");
        }
        assert!(part.summary_refreshes() > 0);
        assert!(part.summary_bytes_exchanged() > 0);
        assert!(
            part.stale_order_decisions() > 0,
            "S=4 rounds must count stale ordering decisions"
        );
        // Exports fire at rounds 1, 5, 9 → age 1 after round 10.
        assert_eq!(part.summary_age_rounds(), Some(1));
    }

    #[test]
    #[should_panic(expected = "requires incremental_contention")]
    fn s1_requires_tracker() {
        let _ = PartitionedScheduler::new(
            2,
            1,
            SaathConfig {
                incremental_contention: false,
                ..Default::default()
            },
        );
    }
}
