//! The replay engine: δ-quantized coordination over an event-exact
//! fluid-flow model.
//!
//! Two implementations of the same semantics live here:
//!
//! * [`simulate`] — the production epoch loop. Advancing simulated time
//!   is O(changes), not O(state): the next flow completion comes from a
//!   lazily-invalidated min-heap of predicted completion times instead
//!   of a scan over every active flow; schedules are applied as a diff
//!   against the previous round (only flows whose rate actually changed
//!   are touched); and views are re-synced only for CoFlows whose flows
//!   progressed since the last round (a dirty set).
//! * [`simulate_reference`] — the original O(state)-per-step loop, kept
//!   verbatim as the executable specification. The equivalence test
//!   below and `tests/engine_equivalence.rs` assert the two produce
//!   byte-identical [`CoflowRecord`]s; the `repro` binary's
//!   `epoch-loop` experiment measures the speedup between them.
//!
//! Why byte-identical equivalence is non-trivial: rates and volumes use
//! exact integer arithmetic (`transfer_time` rounds up, `bytes_in`
//! rounds down), so a flow's predicted completion drifts monotonically
//! *later* as an interval is subdivided — `Σ floor(r·dtᵢ) ≤
//! floor(r·Σdtᵢ)`. The incremental loop therefore never introduces or
//! removes time steps relative to the reference: heap entries are
//! pushed only on rate changes, and a stale entry surfacing at the top
//! is re-pushed at the flow's *current* prediction, so the popped
//! minimum equals the reference's fresh scan exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use saath_core::view::{ClusterView, CoflowScheduler, CoflowView, FlowView, Schedule};
use saath_eventlog::{RateEntry, RoundRecord, RoundSink};
use saath_fabric::PortBank;
use saath_metrics::CoflowRecord;
use saath_simcore::units::{bytes_in, transfer_time};
use saath_simcore::{Bytes, CoflowId, Duration, EventQueue, FlowId, NodeId, Rate, Time};
use saath_telemetry::{Counter, Phase, RoundSnapshot, Telemetry};
use saath_workload::{DynamicsEvent, DynamicsSpec, Trace};

use crate::snapshot;

/// Bumps a counter on an `Option<&mut Telemetry>`; compiles to nothing
/// when the `telemetry` feature is off.
macro_rules! tele_incr {
    ($tele:expr, $c:expr) => {
        if saath_telemetry::enabled() {
            if let Some(t) = $tele.as_deref_mut() {
                t.incr($c);
            }
        }
    };
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Coordination interval δ. The scheduler recomputes rates at every
    /// multiple of δ while any CoFlow is active; `Duration::ZERO` means
    /// "recompute at every event" (an idealized, infinitely-fast
    /// coordinator).
    pub delta: Duration,
    /// Expose ground-truth flow sizes to the scheduler. Required by the
    /// offline baselines; must be off for honest online runs.
    pub clairvoyant: bool,
    /// Optional wall on simulated time; CoFlows unfinished at the
    /// horizon are reported in [`SimOutput::unfinished`].
    pub horizon: Option<Time>,
    /// Safety valve against scheduler livelock: abort after this many
    /// scheduling rounds.
    pub max_rounds: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            delta: Duration::from_millis(8),
            clairvoyant: false,
            horizon: None,
            max_rounds: 100_000_000,
        }
    }
}

/// Why a simulation could not run (distinct from running out of time,
/// which is reported in-band via [`SimOutput::unfinished`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The trace failed validation.
    InvalidTrace(String),
    /// A clairvoyant scheduler was run without `clairvoyant: true`.
    NeedsOracle(&'static str),
    /// The round safety valve tripped (almost certainly a livelocked
    /// scheduler handing out zero rates forever).
    RoundLimit(u64),
    /// Appending to the event log failed (I/O or framing).
    Log(String),
    /// A snapshot could not be taken, or a resume blob could not be
    /// applied (shape mismatch, wrong scheduler, truncation).
    Snapshot(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidTrace(e) => write!(f, "invalid trace: {e}"),
            SimError::NeedsOracle(n) => {
                write!(
                    f,
                    "scheduler `{n}` is clairvoyant; run with clairvoyant: true"
                )
            }
            SimError::RoundLimit(n) => write!(f, "round limit {n} exceeded"),
            SimError::Log(e) => write!(f, "event log: {e}"),
            SimError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of one replay.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// One record per *completed* CoFlow, sorted by id.
    pub records: Vec<CoflowRecord>,
    /// CoFlows that never finished (horizon reached).
    pub unfinished: usize,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Simulated time at which the replay ended.
    pub end: Time,
}

impl SimOutput {
    /// Average CCT over completed CoFlows, in seconds (reporting aid).
    pub fn avg_cct_secs(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.cct().as_secs_f64())
            .sum::<f64>()
            / self.records.len() as f64
    }
}

pub(crate) struct SimFlow {
    pub(crate) coflow: usize,
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) size: Bytes,
    pub(crate) sent: Bytes,
    pub(crate) rate: Rate,
    pub(crate) ready_at: Time,
    pub(crate) finished_at: Option<Time>,
    /// Predicted absolute completion under the current rate;
    /// `Time::NEVER` while paused or finished. Maintained only by the
    /// incremental loop (the reference loop recomputes it by scanning).
    pub(crate) pred: Time,
}

pub(crate) struct SimCoflow {
    pub(crate) released: Option<Time>,
    pub(crate) finished: Option<Time>,
    pub(crate) first_flow: usize,
    pub(crate) num_flows: usize,
    /// Flows not yet finished; the incremental loop's O(1) stand-in for
    /// the reference loop's all-flows-done scan.
    pub(crate) unfinished: usize,
    pub(crate) deps_left: usize,
    pub(crate) dependents: Vec<usize>,
    pub(crate) restarted: bool,
    pub(crate) view_slot: usize, // usize::MAX when inactive
}

pub(crate) enum DynAction {
    StraggleStart {
        node: NodeId,
        num: u64,
        den: u64,
    },
    StraggleEnd {
        node: NodeId,
    },
    Fail {
        node: NodeId,
        restart_delay: Duration,
    },
}

/// Flattens the trace into dense flow/coflow tables with reversed
/// dependency edges (shared by both engine loops).
pub(crate) fn flatten(trace: &Trace) -> (Vec<SimFlow>, Vec<SimCoflow>) {
    let n_coflows = trace.coflows.len();
    let mut flows: Vec<SimFlow> = Vec::with_capacity(trace.num_flows());
    let mut coflows: Vec<SimCoflow> = Vec::with_capacity(n_coflows);
    let mut id_to_idx = std::collections::HashMap::with_capacity(n_coflows);
    for (ci, c) in trace.coflows.iter().enumerate() {
        id_to_idx.insert(c.id, ci);
        let first_flow = flows.len();
        for f in &c.flows {
            flows.push(SimFlow {
                coflow: ci,
                src: f.src,
                dst: f.dst,
                size: f.size,
                sent: Bytes::ZERO,
                rate: Rate::ZERO,
                ready_at: Time::NEVER, // set at release
                finished_at: None,
                pred: Time::NEVER,
            });
        }
        coflows.push(SimCoflow {
            released: None,
            finished: None,
            first_flow,
            num_flows: c.flows.len(),
            unfinished: c.flows.len(),
            deps_left: c.deps.len(),
            dependents: Vec::new(),
            restarted: false,
            view_slot: usize::MAX,
        });
    }
    // Reverse dependency edges.
    for (ci, c) in trace.coflows.iter().enumerate() {
        for d in &c.deps {
            let di = id_to_idx[d];
            coflows[di].dependents.push(ci);
        }
    }
    (flows, coflows)
}

/// Builds the arrival and dynamics event queues (shared by both loops;
/// push order fixes `EventQueue` tie-break sequence numbers, so it must
/// be identical between them).
fn event_sources(
    trace: &Trace,
    dynamics: &DynamicsSpec,
) -> (EventQueue<usize>, EventQueue<DynAction>) {
    let mut arrivals: EventQueue<usize> = EventQueue::with_capacity(trace.coflows.len());
    for (ci, c) in trace.coflows.iter().enumerate() {
        if c.deps.is_empty() {
            arrivals.push(c.arrival, ci);
        }
    }
    let mut dyn_events: EventQueue<DynAction> = EventQueue::new();
    for ev in dynamics.sorted() {
        match ev {
            DynamicsEvent::Straggler {
                node,
                at,
                until,
                num,
                den,
            } => {
                dyn_events.push(at, DynAction::StraggleStart { node, num, den });
                dyn_events.push(until, DynAction::StraggleEnd { node });
            }
            DynamicsEvent::NodeFailure {
                node,
                at,
                restart_delay,
            } => {
                dyn_events.push(
                    at,
                    DynAction::Fail {
                        node,
                        restart_delay,
                    },
                );
            }
        }
    }
    (arrivals, dyn_events)
}

/// Builds the [`CoflowView`] pushed into the active set when a CoFlow
/// is released at time `t` (shared by both loops).
pub(crate) fn make_view(
    trace: &Trace,
    ci: usize,
    first_flow: usize,
    t: Time,
    clairvoyant: bool,
) -> CoflowView {
    let spec = &trace.coflows[ci];
    CoflowView {
        id: spec.id,
        arrival: t,
        flows: spec
            .flows
            .iter()
            .enumerate()
            .map(|(k, f)| FlowView {
                id: FlowId::from_index(first_flow + k),
                src: f.src,
                dst: f.dst,
                sent: Bytes::ZERO,
                ready: false,
                finished: false,
                oracle_size: clairvoyant.then_some(f.size),
            })
            .collect(),
        restarted: false,
    }
}

#[inline]
fn mark_dirty(dirty: &mut [bool], dirty_list: &mut Vec<usize>, ci: usize) {
    if !dirty[ci] {
        dirty[ci] = true;
        dirty_list.push(ci);
    }
}

/// Replay persistence hooks: an optional event-log sink, a snapshot
/// cadence, and an optional snapshot blob to resume from.
///
/// With a `sink`, every scheduling round appends one canonical
/// [`RoundRecord`] and (at the cadence) one engine snapshot. With
/// `resume_from`, the engine restores the blob's state and continues —
/// producing round records and CoFlow records byte-identical to the
/// uninterrupted run's suffix.
#[derive(Default)]
pub struct ReplayHooks<'a> {
    /// Where round records and snapshots go; `None` disables logging.
    pub sink: Option<&'a mut dyn RoundSink>,
    /// Snapshot every this many scheduling rounds; `0` disables
    /// snapshots. Cadence does not perturb the simulation, so logs
    /// written at different cadences chain to identical digests.
    pub snapshot_every: u64,
    /// A snapshot blob (from [`crate::snapshot`] via the log) to resume
    /// from instead of starting at time zero.
    pub resume_from: Option<&'a [u8]>,
}

impl ReplayHooks<'_> {
    /// No logging, no snapshots, no resume — plain simulation.
    pub fn none() -> Self {
        ReplayHooks::default()
    }
}

/// Replays `trace` under `sched`, returning per-CoFlow records.
///
/// This is the incremental epoch loop; it produces byte-identical
/// records to [`simulate_reference`] while doing per-step work
/// proportional to what changed rather than to the number of active
/// flows.
pub fn simulate(
    trace: &Trace,
    sched: &mut dyn CoflowScheduler,
    cfg: &SimConfig,
    dynamics: &DynamicsSpec,
) -> Result<SimOutput, SimError> {
    simulate_with_telemetry(trace, sched, cfg, dynamics, None)
}

/// [`simulate`] with an optional instrumentation handle.
///
/// With `Some(tele)` the engine counts heap pushes and pop outcomes,
/// dirty-set sizes, scheduling rounds and per-round wall-time, and —
/// if the handle was built with [`Telemetry::with_jsonl`] — appends one
/// deterministic JSONL round snapshot per scheduling round. With `None`
/// (or with the `telemetry` feature off) the instrumentation vanishes;
/// records are byte-identical either way, which
/// `tests/engine_equivalence.rs` asserts.
pub fn simulate_with_telemetry(
    trace: &Trace,
    sched: &mut dyn CoflowScheduler,
    cfg: &SimConfig,
    dynamics: &DynamicsSpec,
    tele: Option<&mut Telemetry>,
) -> Result<SimOutput, SimError> {
    simulate_resumable(trace, sched, cfg, dynamics, tele, ReplayHooks::none())
}

/// [`simulate_with_telemetry`] plus persistence: event logging, periodic
/// snapshots, and resume-from-snapshot (see [`ReplayHooks`]).
///
/// Resume semantics: the blob restores the engine to the top of the
/// epoch loop exactly as it stood when the snapshot was taken. The first
/// post-resume round hands the scheduler `changed: None` — the hint
/// contract's "assume everything changed" — so schedulers rebuild their
/// view-derived caches from the cold state; only genuinely historical
/// scheduler state travels in the blob (`CoflowScheduler::save_state`).
/// The continuation's round records and CoFlow records are
/// byte-identical to the uninterrupted run's, which
/// `tests/snapshot_resume.rs` asserts at every boundary.
pub fn simulate_resumable(
    trace: &Trace,
    sched: &mut dyn CoflowScheduler,
    cfg: &SimConfig,
    dynamics: &DynamicsSpec,
    mut tele: Option<&mut Telemetry>,
    mut hooks: ReplayHooks<'_>,
) -> Result<SimOutput, SimError> {
    trace
        .validate()
        .map_err(|e| SimError::InvalidTrace(e.to_string()))?;
    if sched.requires_clairvoyance() && !cfg.clairvoyant {
        return Err(SimError::NeedsOracle(sched.name()));
    }

    let n_coflows = trace.coflows.len();
    let num_nodes = trace.num_nodes;

    let (mut flows, mut coflows) = flatten(trace);
    let (mut arrivals, mut dyn_events) = event_sources(trace, dynamics);

    // ---- Live state ----
    let mut bank = PortBank::uniform(num_nodes, trace.port_rate);
    let nominal = trace.port_rate;
    let mut views: Vec<CoflowView> = Vec::new(); // active CoFlows
    let mut view_owner: Vec<usize> = Vec::new(); // views[i] belongs to coflow view_owner[i]
    let mut schedule = Schedule::default();
    let mut records: Vec<CoflowRecord> = Vec::with_capacity(n_coflows);

    let mut now = Time::ZERO;
    let mut rounds: u64 = 0;
    // Nodes currently straggling — any CoFlow with unfinished flows on
    // one is flagged `restarted` at view-sync time, so the §4.3
    // heuristic sees it regardless of when the CoFlow was released or
    // whether its flows happened to hold a rate when the event fired.
    let mut straggled = vec![false; num_nodes];

    // ---- Incremental machinery ----
    // Flows holding a nonzero rate (superset: zeroed entries are
    // compacted away at the next advancement pass). Order follows the
    // schedule's rate list, so iteration stays deterministic.
    let mut flowing: Vec<usize> = Vec::new();
    // Min-heap of (predicted completion, flow). Entries are pushed only
    // when a flow's rate changes; predictions drift monotonically later
    // between rate changes (integer floor/ceil), so every flowing flow
    // always has an entry at or before its current prediction. Stale
    // entries are re-pushed at the current prediction when they surface.
    let mut completions: BinaryHeap<Reverse<(Time, u32)>> = BinaryHeap::new();
    // CoFlows whose view lags ground truth (flows progressed, readiness
    // or restart flags changed) — the only ones re-synced per round.
    let mut dirty = vec![false; n_coflows];
    let mut dirty_list: Vec<usize> = Vec::new();
    // Wakes the sync for CoFlows whose flows become ready mid-run
    // (`available_after` delays, failure restarts). Readiness is not a
    // `t_next` candidate — exactly as in the reference loop, a flow
    // becoming ready between steps is seen at the next step.
    let mut ready_events: EventQueue<usize> = EventQueue::new();
    // Round stamps for the schedule diff: flows stamped this round keep
    // a rate; previously-flowing flows that lost theirs are zeroed.
    let mut sched_stamp: Vec<u64> = vec![0; flows.len()];
    let mut round_stamp: u64 = 0;
    // CoFlow ids drained from the dirty set this round — handed to the
    // scheduler as the `ClusterView::changed` hint so incremental
    // contention tracking and order maintenance can delta-update
    // instead of rebuilding. The hint contract (see `ClusterView`)
    // covers *any* view-content change — footprints, `sent` bytes,
    // readiness, restarts — because schedulers also cache queue
    // assignments and ordering keys. The dirty set marks arrival, byte
    // progress, finish, readiness, straggler start/end, and failure
    // resets, satisfying that contract.
    let mut changed_ids: Vec<CoflowId> = Vec::new();

    // ---- Resume from a snapshot blob, if asked ----
    // `resumed_cold` forces `changed: None` on the first post-resume
    // compute; `last_snapshot` stops an immediate re-snapshot at the
    // restored round count.
    let mut resumed_cold = false;
    let mut last_snapshot: u64 = 0;
    if let Some(blob) = hooks.resume_from {
        let st = snapshot::apply(blob, trace, cfg, sched).map_err(SimError::Snapshot)?;
        now = st.now;
        rounds = st.rounds;
        flows = st.flows;
        coflows = st.coflows;
        arrivals = st.arrivals;
        dyn_events = st.dyn_events;
        ready_events = st.ready_events;
        views = st.views;
        view_owner = st.view_owner;
        bank = st.bank;
        straggled = st.straggled;
        flowing = st.flowing;
        dirty = st.dirty;
        dirty_list = st.dirty_list;
        // The completion heap is not serialized: rebuild it with exactly
        // one current entry per flowing flow. A binary heap's pop order
        // depends only on its key multiset, and the lazy-deletion loop
        // makes stale/dead entries unobservable, so this matches the
        // uninterrupted run's popped minima exactly (the same argument
        // as the compaction pass below).
        for &fi in &flowing {
            let f = &flows[fi];
            if f.finished_at.is_none() && !f.rate.is_zero() && !f.pred.is_never() {
                completions.push(Reverse((f.pred, fi as u32)));
            }
        }
        // Records of CoFlows that finished before the snapshot: rebuilt
        // from the restored tables. Push order differs from the original
        // run's, but the final sort-by-id normalizes it.
        for (ci, sc) in coflows.iter().enumerate() {
            if let Some(finish) = sc.finished {
                let released = sc.released.expect("finished before release");
                let spec = &trace.coflows[ci];
                records.push(CoflowRecord {
                    id: spec.id,
                    job: spec.job,
                    arrival: spec.arrival,
                    released,
                    finish,
                    width: spec.flows.len(),
                    total_bytes: spec.total_size(),
                    flow_fcts: (0..sc.num_flows)
                        .map(|k| {
                            flows[sc.first_flow + k]
                                .finished_at
                                .unwrap()
                                .since(released)
                        })
                        .collect(),
                    flow_sizes: spec.flows.iter().map(|f| f.size).collect(),
                });
            }
        }
        resumed_cold = true;
        last_snapshot = rounds;
    }

    loop {
        // ---- 0. Snapshot at the cadence ----
        // Taken at the top of the loop: `now` is the instant the
        // previous iteration advanced to, and every event due at `now`
        // is still queued — exactly the state `apply` re-enters.
        if hooks.snapshot_every > 0
            && rounds > 0
            && rounds.is_multiple_of(hooks.snapshot_every)
            && last_snapshot != rounds
        {
            last_snapshot = rounds;
            if let Some(sink) = hooks.sink.as_deref_mut() {
                let blob = snapshot::encode(
                    &snapshot::SnapshotView {
                        now,
                        rounds,
                        flows: &flows,
                        coflows: &coflows,
                        arrivals: &arrivals,
                        dyn_events: &dyn_events,
                        ready_events: &ready_events,
                        views: &views,
                        view_owner: &view_owner,
                        bank: &bank,
                        straggled: &straggled,
                        flowing: &flowing,
                        dirty_list: &dirty_list,
                    },
                    trace,
                    cfg,
                    &*sched,
                );
                let n = sink
                    .append_snapshot(rounds, &blob)
                    .map_err(|e| SimError::Snapshot(e.to_string()))?;
                if saath_telemetry::enabled() {
                    if let Some(t) = tele.as_deref_mut() {
                        t.incr(Counter::LogSnapshots);
                        t.add(Counter::LogBytesWritten, n);
                    }
                }
            }
        }

        // ---- 1. Drain everything due at `now` ----
        // Section spans are recorded explicitly (Instant before,
        // observe after) rather than via RAII guards because the
        // sections themselves thread `tele` mutably; both paths feed
        // the same `Phase`/`LogHist` vocabulary.
        let t_events = (saath_telemetry::enabled() && tele.is_some()).then(Instant::now);
        while let Some((t, ci)) = arrivals.pop_due(now) {
            let t = t.max(now);
            let sc = &mut coflows[ci];
            debug_assert!(sc.released.is_none(), "double release of coflow {ci}");
            debug_assert!(sc.num_flows > 0, "validate() admitted an empty coflow");
            sc.released = Some(t);
            sc.view_slot = views.len();
            let first_flow = sc.first_flow;
            for (k, f) in trace.coflows[ci].flows.iter().enumerate() {
                let ready_at = t + f.available_after;
                flows[first_flow + k].ready_at = ready_at;
                if ready_at > t && !ready_at.is_never() {
                    ready_events.push(ready_at, ci);
                }
            }
            views.push(make_view(trace, ci, first_flow, t, cfg.clairvoyant));
            view_owner.push(ci);
            mark_dirty(&mut dirty, &mut dirty_list, ci);
        }
        while let Some((_, ci)) = ready_events.pop_due(now) {
            if coflows[ci].view_slot != usize::MAX {
                mark_dirty(&mut dirty, &mut dirty_list, ci);
            }
        }
        while let Some((_, action)) = dyn_events.pop_due(now) {
            match action {
                DynAction::StraggleStart { node, num, den } => {
                    bank.set_node_capacity(node, nominal.mul_ratio(num, den));
                    straggled[node.index()] = true;
                    // Scale down in-flight rates on that node so the
                    // port is never oversubscribed mid-interval. Every
                    // nonzero-rate flow is in `flowing`.
                    for &fi in &flowing {
                        let f = &mut flows[fi];
                        if f.finished_at.is_none()
                            && f.rate != Rate::ZERO
                            && (f.src == node || f.dst == node)
                        {
                            f.rate = f.rate.mul_ratio(num, den);
                            f.pred = if f.rate.is_zero() {
                                Time::NEVER
                            } else {
                                let rem = f.size.saturating_sub(f.sent);
                                now.saturating_add(transfer_time(rem, f.rate))
                            };
                            if !f.pred.is_never() {
                                completions.push(Reverse((f.pred, fi as u32)));
                                tele_incr!(tele, Counter::HeapPush);
                            }
                        }
                    }
                    // Straggler flags can flip for any active CoFlow.
                    for &ci in &view_owner {
                        mark_dirty(&mut dirty, &mut dirty_list, ci);
                    }
                }
                DynAction::StraggleEnd { node } => {
                    bank.set_node_capacity(node, nominal);
                    straggled[node.index()] = false;
                    for &ci in &view_owner {
                        mark_dirty(&mut dirty, &mut dirty_list, ci);
                    }
                }
                DynAction::Fail {
                    node,
                    restart_delay,
                } => {
                    for f in flows.iter_mut() {
                        if f.finished_at.is_none()
                            && (f.src == node || f.dst == node)
                            && coflows[f.coflow].released.is_some()
                        {
                            f.sent = Bytes::ZERO;
                            f.rate = Rate::ZERO;
                            f.pred = Time::NEVER;
                            f.ready_at = f.ready_at.max(now.saturating_add(restart_delay));
                            let slot = coflows[f.coflow].view_slot;
                            if slot != usize::MAX {
                                coflows[f.coflow].restarted = true;
                                views[slot].restarted = true;
                                mark_dirty(&mut dirty, &mut dirty_list, f.coflow);
                                if f.ready_at > now && !f.ready_at.is_never() {
                                    ready_events.push(f.ready_at, f.coflow);
                                }
                            }
                        }
                    }
                }
            }
        }
        if let (Some(t0), Some(t)) = (t_events, tele.as_deref_mut()) {
            t.spans
                .observe(Phase::EngineEvents, t0.elapsed().as_nanos() as u64);
        }

        // ---- 2. Recompute the schedule on δ boundaries ----
        let on_boundary = cfg.delta == Duration::ZERO || (now % cfg.delta) == Duration::ZERO;
        if on_boundary && !views.is_empty() {
            rounds += 1;
            if rounds > cfg.max_rounds {
                return Err(SimError::RoundLimit(cfg.max_rounds));
            }
            // Wall-clock only when instrumented; it never reaches the
            // JSONL trace, so determinism is unaffected.
            let t_round = tele.as_ref().map(|_| Instant::now());
            let dirty_n = dirty_list.len();
            // Sync views with ground truth — only where it moved.
            let t_viewsync = t_round.map(|_| Instant::now());
            let any_straggler = straggled.iter().any(|&b| b);
            changed_ids.clear();
            for ci in dirty_list.drain(..) {
                dirty[ci] = false;
                let slot = coflows[ci].view_slot;
                if slot == usize::MAX {
                    continue; // completed since it was marked
                }
                changed_ids.push(views[slot].id);
                let view = &mut views[slot];
                let base = coflows[ci].first_flow;
                let mut touches_straggler = false;
                for (k, fv) in view.flows.iter_mut().enumerate() {
                    let f = &flows[base + k];
                    fv.sent = f.sent;
                    fv.finished = f.finished_at.is_some();
                    fv.ready = f.ready_at <= now;
                    if any_straggler
                        && f.finished_at.is_none()
                        && (straggled[f.src.index()] || straggled[f.dst.index()])
                    {
                        touches_straggler = true;
                    }
                }
                // Failure flags persist (the framework's `update()` told
                // the coordinator); straggler flags follow the slowdown.
                view.restarted = coflows[ci].restarted || touches_straggler;
            }
            if saath_telemetry::enabled() {
                if let (Some(t0), Some(t)) = (t_viewsync, tele.as_deref_mut()) {
                    t.spans
                        .observe(Phase::EngineViewSync, t0.elapsed().as_nanos() as u64);
                }
            }
            bank.reset_round();
            schedule.clear();
            {
                // First round after a resume: the scheduler's
                // view-derived caches are cold, so hand it the hint
                // contract's "assume everything changed". Output is
                // identical either way (the incremental paths are
                // oracle-checked against full rebuilds every round);
                // only the rebuild cost differs, once.
                let changed = if resumed_cold {
                    None
                } else {
                    Some(changed_ids.as_slice())
                };
                let view = ClusterView {
                    now,
                    num_nodes,
                    coflows: &views,
                    changed,
                };
                sched.compute(&view, &mut bank, &mut schedule);
                resumed_cold = false;
            }
            // Apply as a diff: zero only flows that lost their rate,
            // set only flows whose rate actually changed.
            round_stamp += 1;
            for &(fid, _) in &schedule.rates {
                sched_stamp[fid.index()] = round_stamp;
            }
            for &fi in &flowing {
                if sched_stamp[fi] != round_stamp {
                    let f = &mut flows[fi];
                    f.rate = Rate::ZERO;
                    f.pred = Time::NEVER;
                }
            }
            flowing.clear();
            for &(fid, rate) in &schedule.rates {
                let fi = fid.index();
                let f = &mut flows[fi];
                debug_assert!(f.finished_at.is_none(), "rate for finished flow {fid}");
                debug_assert!(f.ready_at <= now, "rate for unready flow {fid}");
                if f.rate != rate {
                    f.rate = rate;
                    let rem = f.size.saturating_sub(f.sent);
                    f.pred = now.saturating_add(transfer_time(rem, rate));
                    if !f.pred.is_never() {
                        completions.push(Reverse((f.pred, fi as u32)));
                        tele_incr!(tele, Counter::HeapPush);
                    }
                }
                // Unchanged rate ⇒ `pred` was refreshed at `now` by the
                // advancement pass that ended here; nothing to do.
                flowing.push(fi);
            }
            #[cfg(debug_assertions)]
            check_feasibility(&flows, &bank, num_nodes);

            // Append this round to the event log. Entries carry the
            // flow's endpoints so the differ can name ports without the
            // trace; zero rates are dropped (paused flows are absent by
            // convention) and the writer canonicalizes entry order, so
            // sharded and single-coordinator runs log identical bytes.
            if let Some(sink) = hooks.sink.as_deref_mut() {
                let rec = RoundRecord {
                    round: rounds - 1,
                    now_ns: now.as_nanos(),
                    active: views.len() as u32,
                    entries: schedule
                        .rates
                        .iter()
                        .filter(|&&(_, rate)| !rate.is_zero())
                        .map(|&(fid, rate)| {
                            let f = &flows[fid.index()];
                            RateEntry {
                                flow: fid.0,
                                src: f.src.0,
                                dst: f.dst.0,
                                rate: rate.as_u64(),
                            }
                        })
                        .collect(),
                };
                let n = sink
                    .append_round(&rec)
                    .map_err(|e| SimError::Log(e.to_string()))?;
                if saath_telemetry::enabled() {
                    if let Some(t) = tele.as_deref_mut() {
                        t.incr(Counter::LogRoundsAppended);
                        t.add(Counter::LogBytesWritten, n);
                    }
                }
            }

            if saath_telemetry::enabled() {
                if let Some(t) = tele.as_deref_mut() {
                    t.incr(Counter::SchedRounds);
                    t.dirty_set.observe(dirty_n as u64);
                    t.heap_len.observe(completions.len() as u64);
                    t.active_coflows.observe(views.len() as u64);
                    if let Some(started) = t_round {
                        let ns = started.elapsed().as_nanos() as u64;
                        t.round_wall_ns.observe(ns);
                        t.spans.observe(Phase::EngineRound, ns);
                    }
                    if t.wants_jsonl() {
                        t.snapshot_round(&RoundSnapshot {
                            round: rounds - 1,
                            now_ns: now.as_nanos(),
                            active_coflows: views.len(),
                            flowing: flowing.len(),
                            dirty: dirty_n,
                            heap_len: completions.len(),
                            saturated_ports: bank.saturated_ports(),
                            utilization_permille: bank.utilization_permille(),
                            queue_occupancy: sched.queue_occupancy().unwrap_or(&[]),
                        });
                    }
                }
            }
        }

        // ---- 3. Find the next instant anything changes ----
        let mut t_next = Time::NEVER;
        if let Some(t) = arrivals.peek_time() {
            t_next = t_next.min(t);
        }
        if let Some(t) = dyn_events.peek_time() {
            t_next = t_next.min(t);
        }
        if !views.is_empty() {
            // Heap hygiene: under heavy rate churn (stragglers, δ≈0)
            // dead and stale entries can pile up faster than lazy
            // deletion drains them. When the heap dwarfs the flowing
            // set, rebuild it with exactly one current entry per
            // candidate flow. Every unfinished nonzero-rate flow is in
            // `flowing`, keys `(pred, flow)` are unique, and a binary
            // heap's observable pop order depends only on its key
            // multiset — so the popped minima (and hence the records)
            // are unchanged, which the equivalence suite asserts.
            if completions.len() > 64 && completions.len() > 4 * flowing.len() {
                completions.clear();
                for &fi in &flowing {
                    let f = &flows[fi];
                    if f.finished_at.is_none() && !f.rate.is_zero() && !f.pred.is_never() {
                        completions.push(Reverse((f.pred, fi as u32)));
                    }
                }
                tele_incr!(tele, Counter::HeapCompactions);
            }
            // Earliest completion under current rates, from the heap.
            let t_complete = loop {
                let Some(&Reverse((t, fi))) = completions.peek() else {
                    break Time::NEVER;
                };
                let f = &flows[fi as usize];
                if f.finished_at.is_some() || f.rate.is_zero() || f.pred.is_never() {
                    completions.pop(); // flow no longer completing
                    tele_incr!(tele, Counter::HeapPopDead);
                } else if t == f.pred {
                    tele_incr!(tele, Counter::HeapPopCurrent);
                    break t; // entry is current: true minimum
                } else if t < f.pred {
                    // Stale (prediction drifted later): re-key at the
                    // current prediction and keep looking.
                    completions.pop();
                    completions.push(Reverse((f.pred, fi)));
                    tele_incr!(tele, Counter::HeapPopStale);
                    tele_incr!(tele, Counter::HeapPush);
                } else {
                    // Superseded: a rate change already pushed a fresher
                    // entry at or before the current prediction.
                    completions.pop();
                    tele_incr!(tele, Counter::HeapPopSuperseded);
                }
            };
            t_next = t_next.min(t_complete);
            // Next schedule boundary.
            let next_boundary = if cfg.delta == Duration::ZERO {
                // Event-driven mode: recompute whenever anything above
                // fires; no synthetic boundaries needed.
                Time::NEVER
            } else {
                Time((now.as_nanos() / cfg.delta.as_nanos() + 1) * cfg.delta.as_nanos())
            };
            t_next = t_next.min(next_boundary);
        }

        if t_next.is_never() {
            break; // no active work, no future events
        }
        if let Some(h) = cfg.horizon {
            if t_next > h {
                now = h;
                break;
            }
        }

        // ---- 4. Advance the flowing flows to t_next ----
        let t_advance = (saath_telemetry::enabled() && tele.is_some()).then(Instant::now);
        let dt = t_next - now;
        let mut completed = 0usize;
        flowing.retain(|&fi| {
            let f = &mut flows[fi];
            if f.finished_at.is_some() || f.rate.is_zero() {
                return false; // zeroed mid-interval (failure)
            }
            f.sent = (f.sent + bytes_in(f.rate, dt)).min(f.size);
            let ci = f.coflow;
            mark_dirty(&mut dirty, &mut dirty_list, ci);
            if f.sent == f.size {
                f.finished_at = Some(t_next);
                f.pred = Time::NEVER;
                coflows[ci].unfinished -= 1;
                if coflows[ci].unfinished == 0 {
                    completed += 1;
                }
                false
            } else {
                let was_never = f.pred.is_never();
                let rem = f.size.saturating_sub(f.sent);
                f.pred = t_next.saturating_add(transfer_time(rem, f.rate));
                // Saturation is the one exception to monotone drift: a
                // prediction clamped at NEVER can come back into range.
                if was_never && !f.pred.is_never() {
                    completions.push(Reverse((f.pred, fi as u32)));
                    tele_incr!(tele, Counter::HeapPush);
                }
                true
            }
        });

        // ---- 5. Retire completed CoFlows ----
        // Replays the reference loop's slot scan (its swap-remove order
        // decides dependent-release sequence numbers and the next
        // round's view order), but with an O(1) done-check per slot and
        // an early exit once every completion is accounted for.
        if completed > 0 {
            let mut slot = 0;
            while completed > 0 {
                let ci = view_owner[slot];
                if coflows[ci].unfinished > 0 {
                    slot += 1;
                    continue;
                }
                completed -= 1;
                let sc = &mut coflows[ci];
                sc.finished = Some(t_next);
                let released = sc.released.expect("finished before release");
                let base = sc.first_flow;
                let nf = sc.num_flows;
                let spec = &trace.coflows[ci];
                records.push(CoflowRecord {
                    id: spec.id,
                    job: spec.job,
                    arrival: spec.arrival,
                    released,
                    finish: t_next,
                    width: spec.flows.len(),
                    total_bytes: spec.total_size(),
                    flow_fcts: (0..nf)
                        .map(|k| flows[base + k].finished_at.unwrap().since(released))
                        .collect(),
                    flow_sizes: spec.flows.iter().map(|f| f.size).collect(),
                });
                // Remove from the active views (swap-remove).
                let last = views.len() - 1;
                views.swap_remove(slot);
                let moved = view_owner.swap_remove(slot);
                debug_assert_eq!(moved, ci);
                coflows[ci].view_slot = usize::MAX;
                if slot < last {
                    coflows[view_owner[slot]].view_slot = slot;
                }
                // Release dependents whose gates just opened.
                let dependents = coflows[ci].dependents.clone();
                for di in dependents {
                    coflows[di].deps_left -= 1;
                    if coflows[di].deps_left == 0 {
                        let at = trace.coflows[di].arrival.max(t_next);
                        arrivals.push(at, di);
                    }
                }
                // Do not advance `slot`: swap_remove moved a new view in.
            }
        }
        if let (Some(t0), Some(t)) = (t_advance, tele.as_deref_mut()) {
            t.spans
                .observe(Phase::EngineAdvance, t0.elapsed().as_nanos() as u64);
        }
        now = t_next;
    }

    let unfinished = coflows.iter().filter(|c| c.finished.is_none()).count();
    records.sort_by_key(|r| r.id);
    Ok(SimOutput {
        records,
        unfinished,
        rounds,
        end: now,
    })
}

/// The pre-refactor epoch loop, kept as the executable specification
/// for [`simulate`]: every step re-scans all active flows for the next
/// completion, zeroes every rate before applying a schedule, and
/// re-syncs every view each round.
///
/// Use it to cross-check the incremental loop (the records must be
/// byte-identical) and as the baseline in the `epoch-loop` benchmark.
pub fn simulate_reference(
    trace: &Trace,
    sched: &mut dyn CoflowScheduler,
    cfg: &SimConfig,
    dynamics: &DynamicsSpec,
) -> Result<SimOutput, SimError> {
    trace
        .validate()
        .map_err(|e| SimError::InvalidTrace(e.to_string()))?;
    if sched.requires_clairvoyance() && !cfg.clairvoyant {
        return Err(SimError::NeedsOracle(sched.name()));
    }

    let n_coflows = trace.coflows.len();
    let num_nodes = trace.num_nodes;

    let (mut flows, mut coflows) = flatten(trace);
    let (mut arrivals, mut dyn_events) = event_sources(trace, dynamics);

    // ---- Live state ----
    let mut bank = PortBank::uniform(num_nodes, trace.port_rate);
    let nominal = trace.port_rate;
    let mut views: Vec<CoflowView> = Vec::new(); // active CoFlows
    let mut view_owner: Vec<usize> = Vec::new(); // views[i] belongs to coflow view_owner[i]
    let mut schedule = Schedule::default();
    let mut records: Vec<CoflowRecord> = Vec::with_capacity(n_coflows);

    let mut now = Time::ZERO;
    let mut rounds: u64 = 0;
    let mut straggled = vec![false; num_nodes];

    // Releases a coflow into the active set at time `t`.
    let release = |ci: usize,
                   t: Time,
                   coflows: &mut Vec<SimCoflow>,
                   flows: &mut Vec<SimFlow>,
                   views: &mut Vec<CoflowView>,
                   view_owner: &mut Vec<usize>| {
        let sc = &mut coflows[ci];
        debug_assert!(sc.released.is_none(), "double release of coflow {ci}");
        sc.released = Some(t);
        let spec = &trace.coflows[ci];
        for (k, f) in spec.flows.iter().enumerate() {
            flows[sc.first_flow + k].ready_at = t + f.available_after;
        }
        sc.view_slot = views.len();
        views.push(make_view(trace, ci, sc.first_flow, t, cfg.clairvoyant));
        view_owner.push(ci);
    };

    loop {
        // ---- 1. Drain everything due at `now` ----
        while let Some((t, ci)) = arrivals.pop_due(now) {
            release(
                ci,
                t.max(now),
                &mut coflows,
                &mut flows,
                &mut views,
                &mut view_owner,
            );
        }
        while let Some((_, action)) = dyn_events.pop_due(now) {
            match action {
                DynAction::StraggleStart { node, num, den } => {
                    bank.set_node_capacity(node, nominal.mul_ratio(num, den));
                    straggled[node.index()] = true;
                    // Scale down in-flight rates on that node so the
                    // port is never oversubscribed mid-interval.
                    for f in flows.iter_mut() {
                        if f.finished_at.is_none()
                            && f.rate != Rate::ZERO
                            && (f.src == node || f.dst == node)
                        {
                            f.rate = f.rate.mul_ratio(num, den);
                        }
                    }
                }
                DynAction::StraggleEnd { node } => {
                    bank.set_node_capacity(node, nominal);
                    straggled[node.index()] = false;
                }
                DynAction::Fail {
                    node,
                    restart_delay,
                } => {
                    for f in flows.iter_mut() {
                        if f.finished_at.is_none()
                            && (f.src == node || f.dst == node)
                            && coflows[f.coflow].released.is_some()
                        {
                            f.sent = Bytes::ZERO;
                            f.rate = Rate::ZERO;
                            f.ready_at = f.ready_at.max(now.saturating_add(restart_delay));
                            let slot = coflows[f.coflow].view_slot;
                            if slot != usize::MAX {
                                coflows[f.coflow].restarted = true;
                                views[slot].restarted = true;
                            }
                        }
                    }
                }
            }
        }

        // ---- 2. Recompute the schedule on δ boundaries ----
        let on_boundary = cfg.delta == Duration::ZERO || (now % cfg.delta) == Duration::ZERO;
        if on_boundary && !views.is_empty() {
            rounds += 1;
            if rounds > cfg.max_rounds {
                return Err(SimError::RoundLimit(cfg.max_rounds));
            }
            // Sync views with ground truth.
            let any_straggler = straggled.iter().any(|&b| b);
            for (slot, view) in views.iter_mut().enumerate() {
                let ci = view_owner[slot];
                let base = coflows[ci].first_flow;
                let mut touches_straggler = false;
                for (k, fv) in view.flows.iter_mut().enumerate() {
                    let f = &flows[base + k];
                    fv.sent = f.sent;
                    fv.finished = f.finished_at.is_some();
                    fv.ready = f.ready_at <= now;
                    if any_straggler
                        && f.finished_at.is_none()
                        && (straggled[f.src.index()] || straggled[f.dst.index()])
                    {
                        touches_straggler = true;
                    }
                }
                // Failure flags persist (the framework's `update()` told
                // the coordinator); straggler flags follow the slowdown.
                view.restarted = coflows[ci].restarted || touches_straggler;
            }
            bank.reset_round();
            schedule.clear();
            {
                let view = ClusterView {
                    now,
                    num_nodes,
                    coflows: &views,
                    changed: None,
                };
                sched.compute(&view, &mut bank, &mut schedule);
            }
            // Apply: zero everything, then set scheduled rates.
            for view in &views {
                for fv in &view.flows {
                    flows[fv.id.index()].rate = Rate::ZERO;
                }
            }
            for &(fid, rate) in &schedule.rates {
                let f = &mut flows[fid.index()];
                debug_assert!(f.finished_at.is_none(), "rate for finished flow {fid}");
                debug_assert!(f.ready_at <= now, "rate for unready flow {fid}");
                f.rate = rate;
            }
            #[cfg(debug_assertions)]
            check_feasibility(&flows, &bank, num_nodes);
        }

        // ---- 3. Find the next instant anything changes ----
        let mut t_next = Time::NEVER;
        if let Some(t) = arrivals.peek_time() {
            t_next = t_next.min(t);
        }
        if let Some(t) = dyn_events.peek_time() {
            t_next = t_next.min(t);
        }
        if !views.is_empty() {
            // Earliest completion under current rates.
            for view in &views {
                for fv in &view.flows {
                    let f = &flows[fv.id.index()];
                    if f.finished_at.is_none() && !f.rate.is_zero() {
                        let rem = f.size.saturating_sub(f.sent);
                        t_next = t_next.min(now.saturating_add(transfer_time(rem, f.rate)));
                    }
                }
            }
            // Next schedule boundary.
            let next_boundary = if cfg.delta == Duration::ZERO {
                // Event-driven mode: recompute whenever anything above
                // fires; no synthetic boundaries needed.
                Time::NEVER
            } else {
                Time((now.as_nanos() / cfg.delta.as_nanos() + 1) * cfg.delta.as_nanos())
            };
            t_next = t_next.min(next_boundary);
        }

        if t_next.is_never() {
            break; // no active work, no future events
        }
        if let Some(h) = cfg.horizon {
            if t_next > h {
                now = h;
                break;
            }
        }

        // ---- 4. Advance flows to t_next ----
        let dt = t_next - now;
        let mut slot = 0;
        while slot < views.len() {
            let ci = view_owner[slot];
            let base = coflows[ci].first_flow;
            let nf = coflows[ci].num_flows;
            let mut all_done = true;
            for f in flows[base..base + nf].iter_mut() {
                if f.finished_at.is_some() {
                    continue;
                }
                if !f.rate.is_zero() {
                    f.sent = (f.sent + bytes_in(f.rate, dt)).min(f.size);
                    if f.sent == f.size {
                        f.finished_at = Some(t_next);
                    }
                }
                if f.finished_at.is_none() {
                    all_done = false;
                }
            }
            if all_done {
                // CoFlow completes at t_next.
                let sc = &mut coflows[ci];
                sc.finished = Some(t_next);
                let released = sc.released.expect("finished before release");
                let spec = &trace.coflows[ci];
                records.push(CoflowRecord {
                    id: spec.id,
                    job: spec.job,
                    arrival: spec.arrival,
                    released,
                    finish: t_next,
                    width: spec.flows.len(),
                    total_bytes: spec.total_size(),
                    flow_fcts: (0..nf)
                        .map(|k| flows[base + k].finished_at.unwrap().since(released))
                        .collect(),
                    flow_sizes: spec.flows.iter().map(|f| f.size).collect(),
                });
                // Remove from the active views (swap-remove).
                let last = views.len() - 1;
                views.swap_remove(slot);
                let moved = view_owner.swap_remove(slot);
                debug_assert_eq!(moved, ci);
                coflows[ci].view_slot = usize::MAX;
                if slot < last {
                    coflows[view_owner[slot]].view_slot = slot;
                }
                // Release dependents whose gates just opened.
                let dependents = coflows[ci].dependents.clone();
                for di in dependents {
                    coflows[di].deps_left -= 1;
                    if coflows[di].deps_left == 0 {
                        let at = trace.coflows[di].arrival.max(t_next);
                        arrivals.push(at, di);
                    }
                }
                // Do not advance `slot`: swap_remove moved a new view in.
            } else {
                slot += 1;
            }
        }
        now = t_next;
    }

    let unfinished = coflows.iter().filter(|c| c.finished.is_none()).count();
    records.sort_by_key(|r| r.id);
    Ok(SimOutput {
        records,
        unfinished,
        rounds,
        end: now,
    })
}

/// Debug-only invariant: assigned rates never oversubscribe any port's
/// *capacity* (remaining accounting is the scheduler's own business).
#[cfg(debug_assertions)]
fn check_feasibility(flows: &[SimFlow], bank: &PortBank, num_nodes: usize) {
    use saath_simcore::PortId;
    let mut used = vec![0u64; 2 * num_nodes];
    for f in flows {
        if f.finished_at.is_none() && !f.rate.is_zero() {
            used[PortId::uplink(f.src).index()] += f.rate.as_u64();
            used[PortId::downlink(f.dst, num_nodes).index()] += f.rate.as_u64();
        }
    }
    for (p, &u) in used.iter().enumerate() {
        let cap = bank.capacity(saath_simcore::PortId(p as u32)).as_u64();
        assert!(u <= cap, "port {p} oversubscribed: {u} > {cap}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saath_core::{Aalo, Saath, SaathConfig};
    use saath_simcore::CoflowId;
    use saath_workload::paper_examples as ex;
    use saath_workload::{CoflowSpec, FlowSpec};

    fn cct_of(out: &SimOutput, id: u32) -> f64 {
        out.records
            .iter()
            .find(|r| r.id == CoflowId(id))
            .unwrap()
            .cct()
            .as_secs_f64()
    }

    fn default_run(trace: &Trace, sched: &mut dyn CoflowScheduler) -> SimOutput {
        simulate(trace, sched, &SimConfig::default(), &DynamicsSpec::none()).unwrap()
    }

    #[test]
    fn avg_cct_is_zero_on_empty_records() {
        let out = SimOutput {
            records: Vec::new(),
            unfinished: 0,
            rounds: 0,
            end: Time::ZERO,
        };
        assert_eq!(out.avg_cct_secs(), 0.0);
    }

    #[test]
    fn single_flow_single_coflow() {
        // 125 MB at 1 Gbps = 1 s, plus up to one δ of scheduling lag.
        let trace = Trace {
            num_nodes: 2,
            port_rate: Rate::gbps(1),
            coflows: vec![CoflowSpec::new(
                CoflowId(0),
                Time::ZERO,
                vec![FlowSpec::new(NodeId(0), NodeId(1), Bytes(125_000_000))],
            )],
        };
        let out = default_run(&trace, &mut Saath::with_defaults());
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.unfinished, 0);
        let cct = cct_of(&out, 0);
        assert!((cct - 1.0).abs() < 0.009, "cct {cct}");
    }

    /// Fig 1 end-to-end: Aalo averages 1.75 t, Saath 1.25 t.
    #[test]
    fn fig1_aalo_vs_saath() {
        let trace = ex::fig1_out_of_sync();
        let aalo = default_run(&trace, &mut Aalo::with_defaults());
        let saath = default_run(&trace, &mut Saath::with_defaults());
        assert_eq!(aalo.records.len(), 4);
        assert_eq!(saath.records.len(), 4);

        // t = 1 s; allow δ-quantization slack (arrivals are offset by a
        // few ms and rates change only on 8 ms boundaries).
        let tol = 0.05;
        assert!(
            (aalo.avg_cct_secs() - 1.75).abs() < tol,
            "aalo {}",
            aalo.avg_cct_secs()
        );
        assert!(
            (saath.avg_cct_secs() - 1.25).abs() < tol,
            "saath {}",
            saath.avg_cct_secs()
        );

        // Per-CoFlow shapes.
        assert!((cct_of(&aalo, 2) - 2.0).abs() < tol);
        assert!((cct_of(&saath, 3) - 1.0).abs() < tol);
        assert!((cct_of(&saath, 4) - 1.0).abs() < tol);
    }

    /// Fig 4 end-to-end: work conservation improves the average CCT.
    #[test]
    fn fig4_work_conservation_helps() {
        let trace = ex::fig4_work_conservation();
        let with_wc = default_run(&trace, &mut Saath::with_defaults());
        let without = default_run(
            &trace,
            &mut Saath::new(SaathConfig {
                work_conservation: false,
                ..Default::default()
            }),
        );
        let tol = 0.05;
        // Without WC: C1 = t, C2 = 3t → avg 2t. With: C2 = 2t → 1.5t.
        assert!(
            (without.avg_cct_secs() - 2.0).abs() < tol,
            "{}",
            without.avg_cct_secs()
        );
        assert!(
            (with_wc.avg_cct_secs() - 1.5).abs() < tol,
            "{}",
            with_wc.avg_cct_secs()
        );
        assert!((cct_of(&without, 2) - 3.0).abs() < tol);
        assert!((cct_of(&with_wc, 2) - 2.0).abs() < tol);
    }

    /// Fig 8 end-to-end: LCoF's known-suboptimal case.
    #[test]
    fn fig8_lcof_limitation_reproduced() {
        let trace = ex::fig8_lcof_limitation();
        let saath = default_run(&trace, &mut Saath::with_defaults());
        let tol = 0.05;
        // LCoF: C2 = C3 = 2.5, C1 = 3.5 ⇒ avg 2.83.
        assert!(
            (cct_of(&saath, 1) - 3.5).abs() < tol,
            "{}",
            cct_of(&saath, 1)
        );
        assert!((cct_of(&saath, 2) - 2.5).abs() < tol);
        assert!((cct_of(&saath, 3) - 2.5).abs() < tol);
        assert!((saath.avg_cct_secs() - 2.8333).abs() < tol);
    }

    /// Clairvoyant schedulers refuse to run blind.
    #[test]
    fn clairvoyant_guard() {
        let trace = ex::fig17_sjf_suboptimal();
        let mut varys = saath_core::OfflineScheduler::varys();
        let err = simulate(
            &trace,
            &mut varys,
            &SimConfig::default(),
            &DynamicsSpec::none(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::NeedsOracle("varys-sebf")));
    }

    /// Fig 17 end-to-end with clairvoyant schedulers: SEBF ≈ SJF picks
    /// C1 first (avg 9.3 t); LWTF picks C2/C3 first (avg 8.3 t).
    #[test]
    fn fig17_sjf_vs_lwtf() {
        let trace = ex::fig17_sjf_suboptimal();
        let cfg = SimConfig {
            clairvoyant: true,
            ..Default::default()
        };
        let mut sebf = saath_core::OfflineScheduler::varys();
        let sebf_out = simulate(&trace, &mut sebf, &cfg, &DynamicsSpec::none()).unwrap();
        let mut lwtf = saath_core::OfflineScheduler::new(saath_core::OfflinePolicy::Lwtf);
        let lwtf_out = simulate(&trace, &mut lwtf, &cfg, &DynamicsSpec::none()).unwrap();
        let tol = 0.05;
        // Appendix A, in seconds (t = 1 s): SJF/SEBF averages
        // (5+11+12)/3 = 9.33, contention-aware (12+6+7)/3 = 8.33.
        assert!(
            (sebf_out.avg_cct_secs() - 9.3333).abs() < tol,
            "{}",
            sebf_out.avg_cct_secs()
        );
        assert!(
            (lwtf_out.avg_cct_secs() - 8.3333).abs() < tol,
            "{}",
            lwtf_out.avg_cct_secs()
        );
        assert!(lwtf_out.avg_cct_secs() < sebf_out.avg_cct_secs());
    }

    /// DAG stages release only after their dependencies complete.
    #[test]
    fn dag_release_order() {
        let mut stage2 = CoflowSpec::new(
            CoflowId(1),
            Time::ZERO,
            vec![FlowSpec::new(NodeId(0), NodeId(1), Bytes(125_000_000))],
        );
        stage2.deps = vec![CoflowId(0)];
        let trace = Trace {
            num_nodes: 2,
            port_rate: Rate::gbps(1),
            coflows: vec![
                CoflowSpec::new(
                    CoflowId(0),
                    Time::ZERO,
                    vec![FlowSpec::new(NodeId(0), NodeId(1), Bytes(125_000_000))],
                ),
                stage2,
            ],
        };
        let out = default_run(&trace, &mut Saath::with_defaults());
        assert_eq!(out.records.len(), 2);
        let r0 = &out.records[0];
        let r1 = &out.records[1];
        assert!(
            r1.released >= r0.finish,
            "stage 2 released before stage 1 finished"
        );
        // Each stage takes ~1 s.
        assert!((r1.finish.as_secs_f64() - 2.0).abs() < 0.05);
    }

    /// Larger δ means more idle time and worse CCT (Fig 14c mechanism).
    #[test]
    fn delta_staleness_hurts() {
        let trace = ex::fig1_out_of_sync();
        let run = |ms| {
            let cfg = SimConfig {
                delta: Duration::from_millis(ms),
                ..Default::default()
            };
            simulate(
                &trace,
                &mut Saath::with_defaults(),
                &cfg,
                &DynamicsSpec::none(),
            )
            .unwrap()
            .avg_cct_secs()
        };
        let fast = run(1);
        let slow = run(500);
        assert!(
            slow > fast,
            "δ=500ms ({slow}) not worse than δ=1ms ({fast})"
        );
    }

    /// Horizon truncation reports unfinished CoFlows instead of hanging.
    #[test]
    fn horizon_truncates() {
        let trace = ex::fig1_out_of_sync();
        let cfg = SimConfig {
            horizon: Some(Time::from_millis(500)),
            ..Default::default()
        };
        let out = simulate(
            &trace,
            &mut Saath::with_defaults(),
            &cfg,
            &DynamicsSpec::none(),
        )
        .unwrap();
        assert!(out.unfinished > 0);
        assert!(out.end <= Time::from_millis(500));
    }

    /// A node failure restarts its flows; the CoFlow still completes,
    /// later, and is flagged for the dynamics heuristic.
    #[test]
    fn node_failure_restarts_flows() {
        // One flow, one second long; its receiver dies halfway through.
        let trace = Trace {
            num_nodes: 2,
            port_rate: Rate::gbps(1),
            coflows: vec![CoflowSpec::new(
                CoflowId(0),
                Time::ZERO,
                vec![FlowSpec::new(NodeId(0), NodeId(1), Bytes(125_000_000))],
            )],
        };
        let clean = default_run(&trace, &mut Saath::with_defaults());
        let dynamics = DynamicsSpec {
            events: vec![DynamicsEvent::NodeFailure {
                node: NodeId(1),
                at: Time::from_millis(500),
                restart_delay: Duration::from_millis(100),
            }],
        };
        let failed = simulate(
            &trace,
            &mut Saath::with_defaults(),
            &SimConfig::default(),
            &dynamics,
        )
        .unwrap();
        assert_eq!(failed.records.len(), 1);
        let slow = failed.records[0].cct().as_secs_f64();
        let fast = clean.records[0].cct().as_secs_f64();
        // All 0.5 s of progress is lost, plus the 0.1 s restart delay:
        // ≈ 0.5 + 0.1 + 1.0 = 1.6 s vs 1.0 s clean.
        assert!((fast - 1.0).abs() < 0.05, "clean cct {fast}");
        assert!((slow - 1.6).abs() < 0.05, "failed cct {slow}");
    }

    /// A straggler slows its node's ports; CCT degrades accordingly and
    /// recovers after the straggle window.
    #[test]
    fn straggler_slows_ports() {
        let trace = Trace {
            num_nodes: 2,
            port_rate: Rate::gbps(1),
            coflows: vec![CoflowSpec::new(
                CoflowId(0),
                Time::ZERO,
                vec![FlowSpec::new(NodeId(0), NodeId(1), Bytes(250_000_000))],
            )],
        };
        let clean = default_run(&trace, &mut Saath::with_defaults());
        let dynamics = DynamicsSpec {
            events: vec![DynamicsEvent::Straggler {
                node: NodeId(0),
                at: Time::ZERO,
                until: Time::from_secs(2),
                num: 1,
                den: 10,
            }],
        };
        let out = simulate(
            &trace,
            &mut Saath::with_defaults(),
            &SimConfig::default(),
            &dynamics,
        )
        .unwrap();
        // First 2 s at 100 Mbps → 25 MB; remaining 225 MB at 1 Gbps →
        // 1.8 s. Total ≈ 3.8 s (vs 2 s clean).
        let cct = out.records[0].cct().as_secs_f64();
        assert!((clean.records[0].cct().as_secs_f64() - 2.0).abs() < 0.05);
        assert!((cct - 3.8).abs() < 0.1, "straggled cct {cct}");
    }

    /// Determinism: identical runs produce identical records.
    #[test]
    fn runs_are_deterministic() {
        let trace = saath_workload::gen::generate(&saath_workload::gen::small(7, 10, 40));
        let a = default_run(&trace, &mut Saath::with_defaults());
        let b = default_run(&trace, &mut Saath::with_defaults());
        assert_eq!(a.records, b.records);
        assert_eq!(a.rounds, b.rounds);
    }

    /// Every generated CoFlow eventually completes under every core
    /// online scheduler.
    #[test]
    fn small_trace_completes_under_all_schedulers() {
        let trace = saath_workload::gen::generate(&saath_workload::gen::small(3, 12, 60));
        for sched in [true, false] {
            let out = if sched {
                default_run(&trace, &mut Saath::with_defaults())
            } else {
                default_run(&trace, &mut Aalo::with_defaults())
            };
            assert_eq!(out.records.len(), 60);
            assert_eq!(out.unfinished, 0);
        }
    }

    /// The incremental loop is byte-identical to the reference loop —
    /// records, rounds, end time — on paper examples and a generated
    /// workload, under several δ settings including event-driven mode.
    #[test]
    fn incremental_matches_reference() {
        let traces = vec![
            ex::fig1_out_of_sync(),
            ex::fig4_work_conservation(),
            ex::fig8_lcof_limitation(),
            saath_workload::gen::generate(&saath_workload::gen::small(11, 12, 40)),
        ];
        for trace in &traces {
            for delta_ms in [0u64, 1, 8, 100] {
                let cfg = SimConfig {
                    delta: Duration::from_millis(delta_ms),
                    ..Default::default()
                };
                let inc = simulate(
                    trace,
                    &mut Saath::with_defaults(),
                    &cfg,
                    &DynamicsSpec::none(),
                )
                .unwrap();
                let re = simulate_reference(
                    trace,
                    &mut Saath::with_defaults(),
                    &cfg,
                    &DynamicsSpec::none(),
                )
                .unwrap();
                assert_eq!(inc.records, re.records, "δ={delta_ms}ms");
                assert_eq!(inc.rounds, re.rounds, "δ={delta_ms}ms");
                assert_eq!(inc.end, re.end, "δ={delta_ms}ms");
                assert_eq!(inc.unfinished, re.unfinished, "δ={delta_ms}ms");
            }
        }
    }

    /// Equivalence holds through cluster dynamics: stragglers scale
    /// in-flight rates and failures reset progress identically in both
    /// loops.
    #[test]
    fn incremental_matches_reference_under_dynamics() {
        let trace = saath_workload::gen::generate(&saath_workload::gen::small(13, 10, 30));
        let dynamics = DynamicsSpec {
            events: vec![
                DynamicsEvent::Straggler {
                    node: NodeId(2),
                    at: Time::from_millis(700),
                    until: Time::from_secs(3),
                    num: 1,
                    den: 4,
                },
                DynamicsEvent::NodeFailure {
                    node: NodeId(5),
                    at: Time::from_secs(2),
                    restart_delay: Duration::from_millis(250),
                },
            ],
        };
        let cfg = SimConfig::default();
        let inc = simulate(&trace, &mut Saath::with_defaults(), &cfg, &dynamics).unwrap();
        let re = simulate_reference(&trace, &mut Saath::with_defaults(), &cfg, &dynamics).unwrap();
        assert_eq!(inc.records, re.records);
        assert_eq!(inc.rounds, re.rounds);
        assert_eq!(inc.end, re.end);
    }

    /// Horizon truncation agrees between the two loops.
    #[test]
    fn incremental_matches_reference_with_horizon() {
        let trace = ex::fig1_out_of_sync();
        let cfg = SimConfig {
            horizon: Some(Time::from_millis(500)),
            ..Default::default()
        };
        let inc = simulate(
            &trace,
            &mut Saath::with_defaults(),
            &cfg,
            &DynamicsSpec::none(),
        )
        .unwrap();
        let re = simulate_reference(
            &trace,
            &mut Saath::with_defaults(),
            &cfg,
            &DynamicsSpec::none(),
        )
        .unwrap();
        assert_eq!(inc.records, re.records);
        assert_eq!(inc.unfinished, re.unfinished);
        assert_eq!(inc.end, re.end);
    }
}
