//! Engine snapshot serialization: the full deterministic state of
//! [`simulate_resumable`]'s epoch loop as an integer-only binary blob.
//!
//! A snapshot is taken at the **top of the epoch loop**: `now` holds the
//! instant the previous iteration advanced to, every event due at `now`
//! is still in its queue, and the schedule from the last boundary is
//! reflected in the per-flow rates. [`apply`] rebuilds exactly that
//! state, so the resumed loop's next iteration is indistinguishable from
//! the uninterrupted run's.
//!
//! What is captured, and what is deliberately not:
//!
//! * **Captured** — simulated clock and round count; every flow's
//!   dynamic fields (`sent`, `rate`, `ready_at`, `finished_at`, the
//!   completion prediction); every CoFlow's lifecycle fields; all three
//!   event queues *with their tie-break sequence numbers* (FIFO order at
//!   equal instants is part of determinism); the active views (their
//!   synced `sent`/`ready`/`finished`/`restarted` flags lag ground truth
//!   by design); the port bank's capacity slab (straggler scaling);
//!   straggled-node flags; the `flowing` list (its order drives
//!   deterministic iteration); the dirty list; and the scheduler's
//!   historical state via [`CoflowScheduler::save_state`].
//! * **Rebuilt on resume** — static tables re-derived from the trace
//!   (sizes, endpoints, dependency edges); the completion heap (one
//!   current entry per flowing flow — pop order depends only on the key
//!   multiset, so lazy deletion makes the difference unobservable);
//!   records of already-finished CoFlows; and every scheduler cache that
//!   is a pure function of the view, which the first post-resume round
//!   forces cold via `changed: None`.
//! * **Reset** — schedule-diff stamps (only within-round equality
//!   matters) and per-round scratch.
//!
//! Everything is fixed-width little-endian via [`saath_eventlog::wire`];
//! hash-map-order-dependent data never enters the blob, so snapshotting
//! the same state twice yields identical bytes.
//!
//! [`simulate_resumable`]: crate::engine::simulate_resumable
//! [`CoflowScheduler::save_state`]: saath_core::view::CoflowScheduler::save_state

use saath_core::view::{CoflowScheduler, CoflowView};
use saath_eventlog::wire::{self, Reader};
use saath_fabric::PortBank;
use saath_simcore::{Duration, EventQueue, NodeId, PortId, Rate, Time};
use saath_workload::Trace;

use crate::engine::{flatten, make_view, DynAction, SimCoflow, SimConfig, SimFlow};

/// Snapshot format version.
const VERSION: u8 = 1;

/// Immutable references to everything [`encode`] serializes, borrowed
/// from the epoch loop's locals at the snapshot point.
pub(crate) struct SnapshotView<'a> {
    pub(crate) now: Time,
    pub(crate) rounds: u64,
    pub(crate) flows: &'a [SimFlow],
    pub(crate) coflows: &'a [SimCoflow],
    pub(crate) arrivals: &'a EventQueue<usize>,
    pub(crate) dyn_events: &'a EventQueue<DynAction>,
    pub(crate) ready_events: &'a EventQueue<usize>,
    pub(crate) views: &'a [CoflowView],
    pub(crate) view_owner: &'a [usize],
    pub(crate) bank: &'a PortBank,
    pub(crate) straggled: &'a [bool],
    pub(crate) flowing: &'a [usize],
    pub(crate) dirty_list: &'a [usize],
}

/// The epoch-loop state [`apply`] hands back, ready to replace the
/// engine's freshly initialized locals wholesale.
pub(crate) struct Restored {
    pub(crate) now: Time,
    pub(crate) rounds: u64,
    pub(crate) flows: Vec<SimFlow>,
    pub(crate) coflows: Vec<SimCoflow>,
    pub(crate) arrivals: EventQueue<usize>,
    pub(crate) dyn_events: EventQueue<DynAction>,
    pub(crate) ready_events: EventQueue<usize>,
    pub(crate) views: Vec<CoflowView>,
    pub(crate) view_owner: Vec<usize>,
    pub(crate) bank: PortBank,
    pub(crate) straggled: Vec<bool>,
    pub(crate) flowing: Vec<usize>,
    pub(crate) dirty: Vec<bool>,
    pub(crate) dirty_list: Vec<usize>,
}

fn put_opt_time(out: &mut Vec<u8>, t: Option<Time>) {
    match t {
        Some(t) => {
            wire::put_u8(out, 1);
            wire::put_u64(out, t.as_nanos());
        }
        None => {
            wire::put_u8(out, 0);
            wire::put_u64(out, 0);
        }
    }
}

fn get_opt_time(r: &mut Reader<'_>) -> Result<Option<Time>, String> {
    let flag = r.u8()?;
    let v = r.u64()?;
    Ok((flag != 0).then_some(Time(v)))
}

fn put_usize_queue(out: &mut Vec<u8>, q: &EventQueue<usize>) {
    let entries = q.entries();
    wire::put_u64(out, entries.len() as u64);
    for (at, seq, &payload) in entries {
        wire::put_u64(out, at.as_nanos());
        wire::put_u64(out, seq);
        wire::put_u64(out, payload as u64);
    }
    wire::put_u64(out, q.next_seq());
}

fn get_usize_queue(r: &mut Reader<'_>, max_payload: usize) -> Result<EventQueue<usize>, String> {
    let n = r.u64()? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let at = Time(r.u64()?);
        let seq = r.u64()?;
        let payload = r.u64()? as usize;
        if payload >= max_payload {
            return Err(format!("queue payload {payload} out of range"));
        }
        entries.push((at, seq, payload));
    }
    let next_seq = r.u64()?;
    Ok(EventQueue::from_entries(entries, next_seq))
}

pub(crate) fn encode(
    v: &SnapshotView<'_>,
    trace: &Trace,
    cfg: &SimConfig,
    sched: &dyn CoflowScheduler,
) -> Vec<u8> {
    let mut out = Vec::new();
    wire::put_u8(&mut out, VERSION);
    // Shape fingerprint: refuse to resume against the wrong run.
    wire::put_u64(&mut out, trace.num_nodes as u64);
    wire::put_u64(&mut out, v.coflows.len() as u64);
    wire::put_u64(&mut out, v.flows.len() as u64);
    wire::put_u8(&mut out, cfg.clairvoyant as u8);
    wire::put_u64(&mut out, cfg.delta.as_nanos());

    wire::put_u64(&mut out, v.now.as_nanos());
    wire::put_u64(&mut out, v.rounds);

    for f in v.flows {
        wire::put_u64(&mut out, f.sent.0);
        wire::put_u64(&mut out, f.rate.0);
        wire::put_u64(&mut out, f.ready_at.as_nanos());
        put_opt_time(&mut out, f.finished_at);
        wire::put_u64(&mut out, f.pred.as_nanos());
    }
    for c in v.coflows {
        put_opt_time(&mut out, c.released);
        put_opt_time(&mut out, c.finished);
        wire::put_u64(&mut out, c.unfinished as u64);
        wire::put_u64(&mut out, c.deps_left as u64);
        wire::put_u8(&mut out, c.restarted as u8);
        wire::put_u64(
            &mut out,
            if c.view_slot == usize::MAX {
                u64::MAX
            } else {
                c.view_slot as u64
            },
        );
    }

    put_usize_queue(&mut out, v.arrivals);
    {
        let entries = v.dyn_events.entries();
        wire::put_u64(&mut out, entries.len() as u64);
        for (at, seq, action) in entries {
            wire::put_u64(&mut out, at.as_nanos());
            wire::put_u64(&mut out, seq);
            match *action {
                DynAction::StraggleStart { node, num, den } => {
                    wire::put_u8(&mut out, 1);
                    wire::put_u32(&mut out, node.0);
                    wire::put_u64(&mut out, num);
                    wire::put_u64(&mut out, den);
                }
                DynAction::StraggleEnd { node } => {
                    wire::put_u8(&mut out, 2);
                    wire::put_u32(&mut out, node.0);
                }
                DynAction::Fail {
                    node,
                    restart_delay,
                } => {
                    wire::put_u8(&mut out, 3);
                    wire::put_u32(&mut out, node.0);
                    wire::put_u64(&mut out, restart_delay.as_nanos());
                }
            }
        }
        wire::put_u64(&mut out, v.dyn_events.next_seq());
    }
    put_usize_queue(&mut out, v.ready_events);

    // Active views. Static per-flow fields (ids, endpoints, oracle
    // sizes) re-derive from the trace; the synced dynamic fields are the
    // view's own state — they lag ground truth between boundaries.
    wire::put_u64(&mut out, v.views.len() as u64);
    for (slot, view) in v.views.iter().enumerate() {
        wire::put_u64(&mut out, v.view_owner[slot] as u64);
        wire::put_u64(&mut out, view.arrival.as_nanos());
        wire::put_u8(&mut out, view.restarted as u8);
        for fv in &view.flows {
            wire::put_u64(&mut out, fv.sent.0);
            wire::put_u8(&mut out, fv.ready as u8);
            wire::put_u8(&mut out, fv.finished as u8);
        }
    }

    let slab = v.bank.capacity_slab();
    wire::put_u64(&mut out, slab.len() as u64);
    for &cap in slab {
        wire::put_u64(&mut out, cap);
    }
    for &s in v.straggled {
        wire::put_u8(&mut out, s as u8);
    }
    wire::put_u64(&mut out, v.flowing.len() as u64);
    for &fi in v.flowing {
        wire::put_u64(&mut out, fi as u64);
    }
    wire::put_u64(&mut out, v.dirty_list.len() as u64);
    for &ci in v.dirty_list {
        wire::put_u64(&mut out, ci as u64);
    }

    wire::put_bytes(&mut out, sched.name().as_bytes());
    let mut sched_blob = Vec::new();
    sched.save_state(&mut sched_blob);
    wire::put_bytes(&mut out, &sched_blob);
    out
}

pub(crate) fn apply(
    blob: &[u8],
    trace: &Trace,
    cfg: &SimConfig,
    sched: &mut dyn CoflowScheduler,
) -> Result<Restored, String> {
    let mut r = Reader::new(blob);
    let version = r.u8()?;
    if version != VERSION {
        return Err(format!("unknown snapshot version {version}"));
    }
    let (mut flows, mut coflows) = flatten(trace);
    let num_nodes = trace.num_nodes;
    let snap_nodes = r.u64()?;
    let snap_coflows = r.u64()?;
    let snap_flows = r.u64()?;
    let snap_clair = r.u8()? != 0;
    let snap_delta = r.u64()?;
    if snap_nodes != num_nodes as u64
        || snap_coflows != coflows.len() as u64
        || snap_flows != flows.len() as u64
    {
        return Err(format!(
            "snapshot shape ({snap_nodes} nodes, {snap_coflows} coflows, {snap_flows} flows) \
             does not match the trace ({} nodes, {} coflows, {} flows)",
            num_nodes,
            coflows.len(),
            flows.len()
        ));
    }
    if snap_clair != cfg.clairvoyant || snap_delta != cfg.delta.as_nanos() {
        return Err(format!(
            "snapshot config (clairvoyant {snap_clair}, delta {snap_delta} ns) does not match \
             the run (clairvoyant {}, delta {} ns)",
            cfg.clairvoyant,
            cfg.delta.as_nanos()
        ));
    }

    let now = Time(r.u64()?);
    let rounds = r.u64()?;

    for f in flows.iter_mut() {
        f.sent = saath_simcore::Bytes(r.u64()?);
        f.rate = Rate(r.u64()?);
        f.ready_at = Time(r.u64()?);
        f.finished_at = get_opt_time(&mut r)?;
        f.pred = Time(r.u64()?);
    }
    for c in coflows.iter_mut() {
        c.released = get_opt_time(&mut r)?;
        c.finished = get_opt_time(&mut r)?;
        c.unfinished = r.u64()? as usize;
        c.deps_left = r.u64()? as usize;
        c.restarted = r.u8()? != 0;
        let slot = r.u64()?;
        c.view_slot = if slot == u64::MAX {
            usize::MAX
        } else {
            slot as usize
        };
    }

    let arrivals = get_usize_queue(&mut r, coflows.len())?;
    let dyn_events = {
        let n = r.u64()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let at = Time(r.u64()?);
            let seq = r.u64()?;
            let tag = r.u8()?;
            let action = match tag {
                1 => DynAction::StraggleStart {
                    node: NodeId(r.u32()?),
                    num: r.u64()?,
                    den: r.u64()?,
                },
                2 => DynAction::StraggleEnd {
                    node: NodeId(r.u32()?),
                },
                3 => DynAction::Fail {
                    node: NodeId(r.u32()?),
                    restart_delay: Duration(r.u64()?),
                },
                t => return Err(format!("unknown dynamics action tag {t}")),
            };
            entries.push((at, seq, action));
        }
        let next_seq = r.u64()?;
        EventQueue::from_entries(entries, next_seq)
    };
    let ready_events = get_usize_queue(&mut r, coflows.len())?;

    let n_views = r.u64()? as usize;
    if n_views > coflows.len() {
        return Err(format!("{n_views} active views exceed the coflow count"));
    }
    let mut views: Vec<CoflowView> = Vec::with_capacity(n_views);
    let mut view_owner: Vec<usize> = Vec::with_capacity(n_views);
    for slot in 0..n_views {
        let ci = r.u64()? as usize;
        if ci >= coflows.len() {
            return Err(format!("view owner {ci} out of range"));
        }
        if coflows[ci].view_slot != slot {
            return Err(format!(
                "view slot table inconsistent: coflow {ci} claims slot {}, found at {slot}",
                coflows[ci].view_slot
            ));
        }
        let arrival = Time(r.u64()?);
        let restarted = r.u8()? != 0;
        let mut view = make_view(trace, ci, coflows[ci].first_flow, arrival, cfg.clairvoyant);
        view.restarted = restarted;
        for fv in view.flows.iter_mut() {
            fv.sent = saath_simcore::Bytes(r.u64()?);
            fv.ready = r.u8()? != 0;
            fv.finished = r.u8()? != 0;
        }
        views.push(view);
        view_owner.push(ci);
    }

    let slab_len = r.u64()? as usize;
    if slab_len != 2 * num_nodes {
        return Err(format!(
            "capacity slab has {slab_len} ports, expected {}",
            2 * num_nodes
        ));
    }
    let mut bank = PortBank::uniform(num_nodes, trace.port_rate);
    for p in 0..slab_len {
        bank.set_capacity(PortId(p as u32), Rate(r.u64()?));
    }
    let mut straggled = vec![false; num_nodes];
    for s in straggled.iter_mut() {
        *s = r.u8()? != 0;
    }
    let n_flowing = r.u64()? as usize;
    let mut flowing = Vec::with_capacity(n_flowing);
    for _ in 0..n_flowing {
        let fi = r.u64()? as usize;
        if fi >= flows.len() {
            return Err(format!("flowing flow {fi} out of range"));
        }
        flowing.push(fi);
    }
    let n_dirty = r.u64()? as usize;
    let mut dirty = vec![false; coflows.len()];
    let mut dirty_list = Vec::with_capacity(n_dirty);
    for _ in 0..n_dirty {
        let ci = r.u64()? as usize;
        if ci >= coflows.len() {
            return Err(format!("dirty coflow {ci} out of range"));
        }
        dirty[ci] = true;
        dirty_list.push(ci);
    }

    let name = String::from_utf8(r.bytes()?.to_vec())
        .map_err(|e| format!("scheduler name is not UTF-8: {e}"))?;
    if name != sched.name() {
        return Err(format!(
            "snapshot was taken under scheduler '{name}', resuming under '{}'",
            sched.name()
        ));
    }
    sched.restore_state(r.bytes()?)?;
    if !r.is_empty() {
        return Err(format!("{} trailing bytes in snapshot blob", r.remaining()));
    }

    Ok(Restored {
        now,
        rounds,
        flows,
        coflows,
        arrivals,
        dyn_events,
        ready_events,
        views,
        view_owner,
        bank,
        straggled,
        flowing,
        dirty,
        dirty_list,
    })
}
