//! # saath-simulator
//!
//! The trace-replay simulator of the Saath reproduction — the Rust
//! equivalent of the paper's 4 KLoC C++ fluid simulator (§6).
//!
//! ## Model
//!
//! * **Big-switch fabric** with congestion only at the `2N` edge ports
//!   (uplink + downlink per node), 1 Gbps each unless the trace says
//!   otherwise. Stragglers scale a node's port capacity; failures
//!   restart its flows.
//! * **δ-quantized coordination**: the global scheduler recomputes rates
//!   at every δ boundary (default 8 ms — "the time required to send 1 MB
//!   at a port"). Between boundaries, local ports *comply with the
//!   previous schedule* (§5): a flow that completes mid-interval frees
//!   capacity that stays idle until the next boundary, and a CoFlow that
//!   arrives mid-interval waits for one. That is exactly the staleness
//!   the δ-sensitivity experiment (Fig 14c) measures.
//! * **Event-exact fluid advance** between boundaries: integer
//!   arithmetic computes each flow's completion analytically, so results
//!   are deterministic and independent of any tick size.
//!
//! ## Entry points
//!
//! [`simulate`] drives one scheduler over one trace. [`Policy`] is a
//! factory covering every scheduler in the workspace, so harness code
//! can sweep them uniformly: [`run_policy`] builds, runs, and returns
//! the per-CoFlow records that `saath-metrics` consumes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod partitioned;
pub mod policy;
pub(crate) mod snapshot;

pub use engine::{
    simulate, simulate_reference, simulate_resumable, simulate_with_telemetry, ReplayHooks,
    SimConfig, SimError, SimOutput,
};
pub use partitioned::PartitionedScheduler;
pub use policy::{run_policy, Policy};
