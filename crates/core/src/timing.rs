//! Scheduling-overhead instrumentation (Table 2).
//!
//! The paper breaks the coordinator's schedule-compute time into the
//! time spent ordering CoFlows (per-flow thresholds + LCoF), admitting
//! them all-or-none, and assigning work-conservation rates. [`Saath`]
//! (and the other schedulers, for the total) accumulate wall-clock
//! samples here; `repro table2` and the Criterion benches report the
//! same columns as the paper: average and P90, total and per phase.
//!
//! These are *wall-clock* measurements of this Rust implementation, the
//! one place in the workspace allowed to touch `std::time::Instant` —
//! they measure the scheduler itself, not the simulated cluster.
//!
//! [`Saath`]: crate::saath::Saath

use saath_telemetry::{Phase, SpanProfiler};
use std::time::Duration as StdDuration;

/// Accumulated per-round timings.
///
/// Each phase is recorded twice from one `Instant` measurement: as a
/// raw per-round sample in the phase's `Vec` (Table 2's avg/P90 and
/// the sweep JSON read these) and as a log2 bucket in [`spans`]
/// (`SchedTimings::spans`), the workspace-wide [`SpanProfiler`] that
/// powers the per-phase p50/p90/p99/max table and the Prometheus
/// exposition. Use the `record_*` methods so the two views can never
/// diverge.
#[derive(Clone, Debug, Default)]
pub struct SchedTimings {
    /// Total time of each `compute()` round.
    pub total: Vec<StdDuration>,
    /// Time ordering CoFlows (queue assignment + sort — "LCoF" column).
    pub ordering: Vec<StdDuration>,
    /// Time computing per-CoFlow contention `k_c` (a sub-span of
    /// `ordering`): the incremental tracker's delta update, or the full
    /// `contention_into` rebuild when that is disabled. Empty for
    /// schedulers/configs that never compute contention.
    pub contention: Vec<StdDuration>,
    /// Time in all-or-none admission + rate assignment.
    pub all_or_none: Vec<StdDuration>,
    /// Time assigning work-conservation rates.
    pub work_conservation: Vec<StdDuration>,
    /// Time in the sharded speculative gang-probe fan-out (wall-clock
    /// across all shards). Empty unless the `parallel` feature ran.
    pub probe: Vec<StdDuration>,
    /// Time in the deterministic serial merge of speculative probes.
    /// Empty unless the `parallel` feature ran.
    pub merge: Vec<StdDuration>,
    /// Active CoFlows per round (context for the latency numbers).
    pub active_coflows: Vec<usize>,
    /// Log2-bucketed per-phase latency histograms, fed by the same
    /// samples as the `Vec`s above (see the struct docs).
    pub spans: SpanProfiler,
}

impl SchedTimings {
    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.total.len()
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.total.clear();
        self.ordering.clear();
        self.contention.clear();
        self.all_or_none.clear();
        self.work_conservation.clear();
        self.probe.clear();
        self.merge.clear();
        self.active_coflows.clear();
        self.spans = SpanProfiler::new();
    }

    /// Records one whole-`compute()` round sample.
    #[inline]
    pub fn record_total(&mut self, d: StdDuration) {
        self.total.push(d);
        self.spans.observe(Phase::SchedTotal, d.as_nanos() as u64);
    }

    /// Records one ordering-phase sample.
    #[inline]
    pub fn record_ordering(&mut self, d: StdDuration) {
        self.ordering.push(d);
        self.spans.observe(Phase::SchedOrder, d.as_nanos() as u64);
    }

    /// Records one contention-phase sample.
    #[inline]
    pub fn record_contention(&mut self, d: StdDuration) {
        self.contention.push(d);
        self.spans
            .observe(Phase::SchedContention, d.as_nanos() as u64);
    }

    /// Records one all-or-none (gang admission + MADD) sample.
    #[inline]
    pub fn record_all_or_none(&mut self, d: StdDuration) {
        self.all_or_none.push(d);
        self.spans.observe(Phase::SchedMadd, d.as_nanos() as u64);
    }

    /// Records one work-conservation sample.
    #[inline]
    pub fn record_work_conservation(&mut self, d: StdDuration) {
        self.work_conservation.push(d);
        self.spans.observe(Phase::SchedWc, d.as_nanos() as u64);
    }

    /// Records one parallel gang-probe fan-out sample.
    #[inline]
    pub fn record_probe(&mut self, d: StdDuration) {
        self.probe.push(d);
        self.spans.observe(Phase::SchedProbe, d.as_nanos() as u64);
    }

    /// Records one speculative-probe merge sample.
    #[inline]
    pub fn record_merge(&mut self, d: StdDuration) {
        self.merge.push(d);
        self.spans.observe(Phase::SchedMerge, d.as_nanos() as u64);
    }

    /// `(average, p90)` of a sample column, in milliseconds.
    ///
    /// The P90 is `saath_metrics::stats::percentile` — one nearest-rank
    /// definition for the whole workspace, so Table 2 here and the
    /// sweep reports can never silently diverge (and its NaN handling
    /// applies in both places).
    pub fn avg_p90_ms(samples: &[StdDuration]) -> (f64, f64) {
        if samples.is_empty() {
            return (0.0, 0.0);
        }
        let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        let avg = ms.iter().sum::<f64>() / ms.len() as f64;
        let p90 = saath_metrics::stats::percentile(&ms, 90.0).unwrap_or(0.0);
        (avg, p90)
    }

    /// Convenience summary: `(avg_ms, p90_ms)` for the total column.
    pub fn total_avg_p90_ms(&self) -> (f64, f64) {
        Self::avg_p90_ms(&self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_and_p90() {
        let samples: Vec<StdDuration> = (1..=10).map(StdDuration::from_millis).collect();
        let (avg, p90) = SchedTimings::avg_p90_ms(&samples);
        assert!((avg - 5.5).abs() < 1e-9);
        assert!((p90 - 9.0).abs() < 1e-9);
        assert_eq!(SchedTimings::avg_p90_ms(&[]), (0.0, 0.0));
    }

    #[test]
    fn clear_resets() {
        let mut t = SchedTimings::default();
        t.record_total(StdDuration::from_millis(1));
        t.active_coflows.push(3);
        assert_eq!(t.rounds(), 1);
        t.clear();
        assert_eq!(t.rounds(), 0);
        assert!(t.active_coflows.is_empty());
        assert_eq!(t.spans.hist(Phase::SchedTotal).count, 0);
    }

    #[test]
    fn record_feeds_vec_and_span_hist_from_one_sample() {
        let mut t = SchedTimings::default();
        t.record_ordering(StdDuration::from_micros(10));
        t.record_ordering(StdDuration::from_micros(20));
        t.record_contention(StdDuration::from_micros(5));
        assert_eq!(t.ordering.len(), 2);
        assert_eq!(t.contention.len(), 1);
        let h = t.spans.hist(Phase::SchedOrder);
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 20_000);
        assert_eq!(t.spans.hist(Phase::SchedContention).count, 1);
        // Phases never recorded stay empty (no probe/merge here).
        assert_eq!(t.spans.hist(Phase::SchedProbe).count, 0);
    }
}
