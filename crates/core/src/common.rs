//! Shared machinery: contention computation, endpoint extraction, and
//! the reusable scratch arena that keeps scheduling rounds
//! allocation-free.

use crate::view::{ClusterView, CoflowView};
use saath_fabric::FlowEndpoints;
use saath_simcore::{CoflowId, FastHashMap};

/// Reusable buffers for one scheduling round.
///
/// Every per-round temporary the schedulers need — the CSR port →
/// CoFlow incidence slab and stamp array behind [`contention_into`],
/// endpoint lists, gang-rate scratch — lives here and is recycled
/// across rounds, so the steady-state scheduling loop performs no heap
/// allocation. One arena per scheduler instance; threading it through
/// [`contention_into`] / [`endpoints_into`] replaces the allocating
/// [`contention`] / [`endpoints_of`] in hot paths.
///
/// The incidence map is a flat CSR triple (`port_start`, `port_cursor`,
/// `port_data`) rather than the former `Vec<Vec<u32>>`: port `p`'s
/// CoFlows live in `port_data[port_start[p]..port_cursor[p]]`, so the
/// contention scan walks one dense `u32` slab instead of chasing a
/// pointer per port.
#[derive(Default)]
pub struct RoundArena {
    /// CSR slab offsets: port `p`'s slice begins at `port_start[p]`
    /// (length `num_ports + 1`; `port_start[num_ports]` is the slab
    /// size upper bound).
    port_start: Vec<u32>,
    /// CSR fill cursors: port `p`'s slice ends at `port_cursor[p]`
    /// (≤ `port_start[p + 1]`; the gap is dedup slack).
    port_cursor: Vec<u32>,
    /// Flattened incidence lists: indices into `view.coflows`.
    port_data: Vec<u32>,
    /// CoFlow-indexed stamp array for contention dedup.
    stamp: Vec<u32>,
    /// Per-port flow counts for `gang_rate_with`.
    pub gang_scratch: Vec<u32>,
    /// Touched-port list for `gang_rate_with`.
    pub gang_touched: Vec<saath_simcore::PortId>,
}

impl RoundArena {
    /// A fresh, empty arena (buffers grow on first use).
    pub fn new() -> RoundArena {
        RoundArena::default()
    }
}

/// Per-CoFlow contention `k_c`: the number of *other* active CoFlows
/// with at least one unfinished flow on any port where CoFlow `c` has an
/// unfinished flow (§3.3, footnote 2). Returned parallel to
/// `view.coflows`.
///
/// Built from a port → CoFlow incidence map; the union over a CoFlow's
/// ports is deduplicated with a stamp array, so the whole computation is
/// `O(Σ ports + Σ incidences)` with no hashing in the inner loop.
pub fn contention(view: &ClusterView<'_>) -> Vec<u32> {
    let mut arena = RoundArena::new();
    let mut k = Vec::new();
    contention_into(view, &mut arena, &mut k);
    k
}

/// [`contention`] writing into `k` (cleared first) with all scratch
/// drawn from `arena` — the allocation-free form for hot loops.
pub fn contention_into(view: &ClusterView<'_>, arena: &mut RoundArena, k: &mut Vec<u32>) {
    let num_ports = 2 * view.num_nodes;
    // Pass 1: count endpoint touches per port — an upper bound on the
    // deduplicated incidence count (the fill pass leaves slack unused),
    // accumulated shifted by one so the prefix sum lands in place.
    let start = &mut arena.port_start;
    start.clear();
    start.resize(num_ports + 1, 0);
    for c in view.coflows.iter() {
        for f in c.unfinished() {
            let e = f.endpoints(view.num_nodes);
            start[e.src.index() + 1] += 1;
            start[e.dst.index() + 1] += 1;
        }
    }
    for p in 0..num_ports {
        start[p + 1] += start[p];
    }

    // Pass 2: fill the CSR slab. CoFlows are processed one at a time,
    // so duplicates by the same CoFlow on a port are always adjacent: a
    // tail check against the cursor suffices to keep each port slice a
    // set, in the same first-touch order the nested-Vec build produced.
    let data = &mut arena.port_data;
    data.clear();
    data.resize(start[num_ports] as usize, 0);
    let cursor = &mut arena.port_cursor;
    cursor.clear();
    cursor.extend_from_slice(&start[..num_ports]);
    for (ci, c) in view.coflows.iter().enumerate() {
        for f in c.unfinished() {
            let e = f.endpoints(view.num_nodes);
            for p in [e.src.index(), e.dst.index()] {
                let cur = cursor[p] as usize;
                if cur == start[p] as usize || data[cur - 1] != ci as u32 {
                    data[cur] = ci as u32;
                    cursor[p] = cur as u32 + 1;
                }
            }
        }
    }

    k.clear();
    k.resize(view.coflows.len(), 0u32);
    let stamp = &mut arena.stamp;
    stamp.clear();
    stamp.resize(view.coflows.len(), u32::MAX);
    for (ci, c) in view.coflows.iter().enumerate() {
        let mut count = 0u32;
        for f in c.unfinished() {
            let e = f.endpoints(view.num_nodes);
            for p in [e.src.index(), e.dst.index()] {
                for &other in &data[start[p] as usize..cursor[p] as usize] {
                    if other != ci as u32 && stamp[other as usize] != ci as u32 {
                        stamp[other as usize] = ci as u32;
                        count += 1;
                    }
                }
            }
        }
        k[ci] = count;
    }
}

/// Work done by one [`ContentionTracker::compute_into`] call, for
/// telemetry: how many port join/leave deltas were applied, and whether
/// the call fell back to a full rebuild of the tracker state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContentionWork {
    /// Port-membership joins + leaves applied this call.
    pub delta_updates: u64,
    /// Whether this call rebuilt from scratch (no usable hint).
    pub full_rebuild: bool,
}

/// Incrementally-maintained per-CoFlow contention, replacing the
/// per-round full rebuild of [`contention_into`] with a delta update
/// driven by the [`ClusterView::changed`] hint.
///
/// # Invariant
///
/// After every [`compute_into`](ContentionTracker::compute_into) call,
/// for each live CoFlow `c`:
///
/// * `footprints[c]` is the sorted, deduplicated set of port indices
///   carrying an unfinished flow of `c`;
/// * `pairs[(a, b)]` (keys ordered `a < b`) is `|footprints[a] ∩
///   footprints[b]|`, present only when nonzero;
/// * `k[c]` is the number of other CoFlows `o` with `pairs[(c, o)] >
///   0` — exactly the §3.3 contention [`contention_into`] computes.
///
/// A round touching `m` CoFlows costs `O(active + Σ footprint sizes of
/// the m changed CoFlows)` instead of `O(Σ flows of all CoFlows)`. The
/// `active` term is one id → index map build per call; footprints are
/// diffed with a sorted merge walk, and each port join/leave adjusts
/// the pair counts of that port's current members.
///
/// [`contention_into`] remains the oracle: `Saath::compute` asserts
/// equality in debug builds, and the churn tests here and in the
/// equivalence suite do the same under stragglers and failures.
#[derive(Default)]
pub struct ContentionTracker {
    /// Port-space size the state was built for; a mismatch forces a
    /// rebuild (ports index into `port_members`).
    num_nodes: usize,
    /// CoFlow → sorted port indices of its unfinished flows.
    footprints: FastHashMap<CoflowId, Vec<u32>>,
    /// port → CoFlows whose footprint contains it (unordered).
    port_members: Vec<Vec<CoflowId>>,
    /// Ordered CoFlow pair → number of shared footprint ports (> 0).
    pairs: FastHashMap<(u32, u32), u32>,
    /// CoFlow → contention `k_c`.
    k: FastHashMap<CoflowId, u32>,
    /// id → index into the current view, rebuilt each call.
    index: FastHashMap<CoflowId, u32>,
    /// Fresh-footprint scratch for the merge walk.
    scratch: Vec<u32>,
    /// Departed-id scratch.
    gone: Vec<CoflowId>,
    /// Ports joined / left this refresh (reused buffers).
    joins: Vec<u32>,
    leaves: Vec<u32>,
}

impl ContentionTracker {
    /// A fresh, empty tracker.
    pub fn new() -> ContentionTracker {
        ContentionTracker::default()
    }

    /// Computes `k_c` for every CoFlow in `view` (parallel to
    /// `view.coflows`, written into `k_out`), applying deltas for the
    /// CoFlows named by `view.changed` — or rebuilding everything when
    /// the hint is absent or the port space changed.
    pub fn compute_into(&mut self, view: &ClusterView<'_>, k_out: &mut Vec<u32>) -> ContentionWork {
        let mut work = ContentionWork::default();
        // A port-space change invalidates every stored footprint: clear
        // the state and ignore the hint — all CoFlows must be re-added.
        let mut hint = view.changed;
        if self.num_nodes != view.num_nodes {
            self.footprints.clear();
            self.port_members.clear();
            self.pairs.clear();
            self.k.clear();
            self.num_nodes = view.num_nodes;
            hint = None;
        }
        let num_ports = 2 * view.num_nodes;
        if self.port_members.len() < num_ports {
            self.port_members.resize_with(num_ports, Vec::new);
        }

        self.index.clear();
        for (i, c) in view.coflows.iter().enumerate() {
            self.index.insert(c.id, i as u32);
        }

        // Departures: tracked CoFlows no longer in the view. Every
        // tracked CoFlow has a `k` entry (footprints drop theirs when
        // they empty out), so `k` is the membership authority.
        self.gone.clear();
        self.gone.extend(
            self.k
                .keys()
                .filter(|id| !self.index.contains_key(id))
                .copied(),
        );
        // Keep removal order deterministic (HashMap iteration is not);
        // the *counts* are order-independent, but determinism everywhere
        // keeps replay debugging sane.
        self.gone.sort_unstable();
        for i in 0..self.gone.len() {
            let id = self.gone[i];
            work.delta_updates += self.remove_coflow(id);
        }

        // Changed CoFlows: diff fresh footprints against stored ones.
        match hint {
            Some(changed) => {
                for &id in changed {
                    if let Some(&ci) = self.index.get(&id) {
                        work.delta_updates += self.refresh_coflow(view, ci as usize);
                    }
                }
            }
            None => {
                work.full_rebuild = true;
                for ci in 0..view.coflows.len() {
                    work.delta_updates += self.refresh_coflow(view, ci);
                }
            }
        }

        k_out.clear();
        k_out.extend(
            view.coflows
                .iter()
                .map(|c| self.k.get(&c.id).copied().unwrap_or(0)),
        );
        work
    }

    /// Recomputes one CoFlow's footprint from the view and applies the
    /// port joins/leaves. Returns the number of deltas applied.
    fn refresh_coflow(&mut self, view: &ClusterView<'_>, ci: usize) -> u64 {
        let c = &view.coflows[ci];
        self.scratch.clear();
        for f in c.unfinished() {
            let e = f.endpoints(view.num_nodes);
            self.scratch.push(e.src.index() as u32);
            self.scratch.push(e.dst.index() as u32);
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();

        let id = c.id;
        // Merge walk over two sorted sets; joins/leaves collected first
        // so the stored footprint can be replaced wholesale.
        self.joins.clear();
        self.leaves.clear();
        {
            let old: &[u32] = self.footprints.get(&id).map_or(&[], |v| v.as_slice());
            let (mut i, mut j) = (0, 0);
            while i < old.len() || j < self.scratch.len() {
                match (old.get(i), self.scratch.get(j)) {
                    (Some(&a), Some(&b)) if a == b => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&a), Some(&b)) if a < b => {
                        self.leaves.push(a);
                        i += 1;
                    }
                    (Some(_), Some(&b)) => {
                        self.joins.push(b);
                        j += 1;
                    }
                    (Some(&a), None) => {
                        self.leaves.push(a);
                        i += 1;
                    }
                    (None, Some(&b)) => {
                        self.joins.push(b);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        if self.scratch.is_empty() {
            self.footprints.remove(&id);
        } else {
            let stored = self.footprints.entry(id).or_default();
            stored.clear();
            stored.extend_from_slice(&self.scratch);
        }
        let mut deltas = 0u64;
        for li in 0..self.leaves.len() {
            let p = self.leaves[li] as usize;
            let pos = self.port_members[p]
                .iter()
                .position(|&m| m == id)
                .expect("leave of a port not joined");
            self.port_members[p].swap_remove(pos);
            for mi in 0..self.port_members[p].len() {
                let other = self.port_members[p][mi];
                pair_dec(&mut self.pairs, &mut self.k, id, other);
            }
            deltas += 1;
        }
        for ji in 0..self.joins.len() {
            let p = self.joins[ji] as usize;
            for mi in 0..self.port_members[p].len() {
                let other = self.port_members[p][mi];
                pair_inc(&mut self.pairs, &mut self.k, id, other);
            }
            self.port_members[p].push(id);
            deltas += 1;
        }
        self.k.entry(id).or_insert(0);
        deltas
    }

    /// Exports the tracker's state as a [`ContentionSummary`] for
    /// partitioned-compute sharding: per-port active-CoFlow counts from
    /// the port-membership lists, and per-queue CoFlow counts / `k_c`
    /// sums via the caller's queue lookup (the tracker does not know
    /// queue assignments). `port_rates` is *not* filled here — the
    /// caller adds the rates its last schedule slice claimed.
    ///
    /// Only meaningful when the tracker is live (i.e. the owning
    /// scheduler runs with incremental contention + LCoF); an unused
    /// tracker exports an empty summary.
    pub fn export_summary(
        &self,
        queue_of: impl Fn(CoflowId) -> usize,
        num_queues: usize,
        out: &mut crate::summary::ContentionSummary,
    ) {
        out.port_coflows.clear();
        for (p, members) in self.port_members.iter().enumerate() {
            if !members.is_empty() {
                out.port_coflows.push((p as u32, members.len() as u32));
            }
        }
        out.queue_coflows.clear();
        out.queue_coflows.resize(num_queues, 0);
        out.queue_kc_sum.clear();
        out.queue_kc_sum.resize(num_queues, 0);
        // HashMap iteration order is arbitrary, but counts and sums are
        // order-independent, so the export stays deterministic.
        for (&id, &kc) in self.k.iter() {
            let q = queue_of(id).min(num_queues.saturating_sub(1));
            out.queue_coflows[q] += 1;
            out.queue_kc_sum[q] += kc as u64;
        }
    }

    /// Drops a departed CoFlow, unwinding its pair counts.
    fn remove_coflow(&mut self, id: CoflowId) -> u64 {
        let Some(footprint) = self.footprints.remove(&id) else {
            self.k.remove(&id);
            return 0;
        };
        let mut deltas = 0u64;
        for &p in &footprint {
            let p = p as usize;
            let pos = self.port_members[p]
                .iter()
                .position(|&m| m == id)
                .expect("departure from a port not joined");
            self.port_members[p].swap_remove(pos);
            for mi in 0..self.port_members[p].len() {
                let other = self.port_members[p][mi];
                pair_dec(&mut self.pairs, &mut self.k, id, other);
            }
            deltas += 1;
        }
        let residual = self.k.remove(&id);
        debug_assert_eq!(residual.unwrap_or(0), 0, "departed CoFlow still paired");
        deltas
    }
}

fn pair_key(a: CoflowId, b: CoflowId) -> (u32, u32) {
    if a.0 < b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

fn pair_inc(
    pairs: &mut FastHashMap<(u32, u32), u32>,
    k: &mut FastHashMap<CoflowId, u32>,
    a: CoflowId,
    b: CoflowId,
) {
    debug_assert_ne!(a, b);
    let shared = pairs.entry(pair_key(a, b)).or_insert(0);
    *shared += 1;
    if *shared == 1 {
        *k.entry(a).or_insert(0) += 1;
        *k.entry(b).or_insert(0) += 1;
    }
}

fn pair_dec(
    pairs: &mut FastHashMap<(u32, u32), u32>,
    k: &mut FastHashMap<CoflowId, u32>,
    a: CoflowId,
    b: CoflowId,
) {
    let key = pair_key(a, b);
    let shared = pairs.get_mut(&key).expect("pair decrement below zero");
    *shared -= 1;
    if *shared == 0 {
        pairs.remove(&key);
        *k.get_mut(&a).expect("k missing on unpair") -= 1;
        *k.get_mut(&b).expect("k missing on unpair") -= 1;
    }
}

/// Endpoints of a CoFlow's unfinished flows, optionally restricted to
/// ready (data-available) ones.
pub fn endpoints_of(c: &CoflowView, num_nodes: usize, ready_only: bool) -> Vec<FlowEndpoints> {
    let mut out = Vec::new();
    endpoints_into(c, num_nodes, ready_only, &mut out);
    out
}

/// [`endpoints_of`] writing into a caller-provided buffer (cleared
/// first), for allocation-free scheduling rounds.
pub fn endpoints_into(
    c: &CoflowView,
    num_nodes: usize,
    ready_only: bool,
    out: &mut Vec<FlowEndpoints>,
) {
    out.clear();
    out.extend(
        c.unfinished()
            .filter(|f| !ready_only || f.ready)
            .map(|f| f.endpoints(num_nodes)),
    );
}

/// Finds a CoFlow's index in the view by id (linear; views are small).
pub fn index_of(view: &ClusterView<'_>, id: CoflowId) -> Option<usize> {
    view.coflows.iter().position(|c| c.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::FlowView;
    use saath_simcore::{Bytes, FlowId, NodeId, Time};

    fn cf(id: u32, flows: &[(u32, u32)]) -> CoflowView {
        CoflowView {
            id: CoflowId(id),
            arrival: Time::ZERO,
            flows: flows
                .iter()
                .enumerate()
                .map(|(i, (s, d))| FlowView {
                    id: FlowId(id * 100 + i as u32),
                    src: NodeId(*s),
                    dst: NodeId(*d),
                    sent: Bytes::ZERO,
                    ready: true,
                    finished: false,
                    oracle_size: None,
                })
                .collect(),
            restarted: false,
        }
    }

    #[test]
    fn fig1_contentions() {
        // The Fig 1 topology: C2 spans senders 0,1,2; C1/C3/C4 use one
        // sender each; receivers all distinct.
        let coflows = vec![
            cf(1, &[(0, 3)]),
            cf(2, &[(0, 4), (1, 5), (2, 6)]),
            cf(3, &[(1, 7)]),
            cf(4, &[(2, 8)]),
        ];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 9,
            coflows: &coflows,
            changed: None,
        };
        assert_eq!(contention(&view), vec![1, 3, 1, 1]);
    }

    #[test]
    fn finished_flows_do_not_contend() {
        let mut coflows = vec![cf(0, &[(0, 2)]), cf(1, &[(0, 3)])];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 4,
            coflows: &coflows,
            changed: None,
        };
        assert_eq!(contention(&view), vec![1, 1]);
        coflows[0].flows[0].finished = true;
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 4,
            coflows: &coflows,
            changed: None,
        };
        assert_eq!(contention(&view), vec![0, 0]);
    }

    #[test]
    fn contention_counts_coflows_not_flows() {
        // CoFlow 1 has three flows on sender 0; CoFlow 0 shares that
        // port but must count CoFlow 1 once.
        let coflows = vec![cf(0, &[(0, 2)]), cf(1, &[(0, 3), (0, 4), (0, 5)])];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 6,
            coflows: &coflows,
            changed: None,
        };
        assert_eq!(contention(&view), vec![1, 1]);
    }

    #[test]
    fn receiver_side_contention_counts() {
        // Two coflows sharing only a receiver.
        let coflows = vec![cf(0, &[(0, 3)]), cf(1, &[(1, 3)])];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 4,
            coflows: &coflows,
            changed: None,
        };
        assert_eq!(contention(&view), vec![1, 1]);
    }

    #[test]
    fn arena_reuse_is_stateless() {
        // Same arena across views of different shapes/sizes must give
        // the same answers as fresh allocation.
        let mut arena = RoundArena::new();
        let mut k = Vec::new();
        let big = vec![
            cf(1, &[(0, 3)]),
            cf(2, &[(0, 4), (1, 5), (2, 6)]),
            cf(3, &[(1, 7)]),
            cf(4, &[(2, 8)]),
        ];
        let small = vec![cf(0, &[(0, 2)]), cf(1, &[(0, 3)])];
        for _ in 0..3 {
            let view = ClusterView {
                now: Time::ZERO,
                num_nodes: 9,
                coflows: &big,
                changed: None,
            };
            contention_into(&view, &mut arena, &mut k);
            assert_eq!(k, contention(&view));
            let view = ClusterView {
                now: Time::ZERO,
                num_nodes: 4,
                coflows: &small,
                changed: None,
            };
            contention_into(&view, &mut arena, &mut k);
            assert_eq!(k, contention(&view));
        }
        // endpoints_into matches endpoints_of through reuse too.
        let mut eps = Vec::new();
        for c in &big {
            endpoints_into(c, 9, false, &mut eps);
            assert_eq!(eps, endpoints_of(c, 9, false));
        }
    }

    /// Tracker output with an explicit `changed` hint must equal the
    /// [`contention_into`] oracle on the same view.
    fn assert_tracker_matches(
        tracker: &mut ContentionTracker,
        num_nodes: usize,
        coflows: &[CoflowView],
        changed: Option<&[CoflowId]>,
    ) -> ContentionWork {
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes,
            coflows,
            changed,
        };
        let mut k = Vec::new();
        let work = tracker.compute_into(&view, &mut k);
        let oracle = ClusterView {
            changed: None,
            ..view
        };
        assert_eq!(k, contention(&oracle), "tracker diverged from oracle");
        work
    }

    #[test]
    fn tracker_without_hint_is_a_full_rebuild() {
        let coflows = vec![
            cf(1, &[(0, 3)]),
            cf(2, &[(0, 4), (1, 5), (2, 6)]),
            cf(3, &[(1, 7)]),
            cf(4, &[(2, 8)]),
        ];
        let mut tracker = ContentionTracker::new();
        let work = assert_tracker_matches(&mut tracker, 9, &coflows, None);
        assert!(work.full_rebuild);
        assert!(work.delta_updates > 0);
        // Steady state: nothing changed, hint says so, no deltas.
        let work = assert_tracker_matches(&mut tracker, 9, &coflows, Some(&[]));
        assert!(!work.full_rebuild);
        assert_eq!(work.delta_updates, 0);
    }

    #[test]
    fn tracker_applies_arrival_finish_and_departure_deltas() {
        let mut coflows = vec![cf(0, &[(0, 4), (1, 5)]), cf(1, &[(0, 6)])];
        let mut tracker = ContentionTracker::new();
        assert_tracker_matches(&mut tracker, 8, &coflows, None);

        // Arrival: a new CoFlow sharing sender 1 with CoFlow 0.
        coflows.push(cf(2, &[(1, 7)]));
        let work = assert_tracker_matches(&mut tracker, 8, &coflows, Some(&[CoflowId(2)]));
        assert!(!work.full_rebuild);
        assert!(work.delta_updates > 0);

        // Finish: CoFlow 0's flow on sender 0 completes, dissolving the
        // (0, 1) contention pair but keeping the (0, 2) one.
        coflows[0].flows[0].finished = true;
        assert_tracker_matches(&mut tracker, 8, &coflows, Some(&[CoflowId(0)]));

        // Departure: CoFlow 0 leaves the view entirely. Departures are
        // detected internally — the hint only names survivors.
        coflows.remove(0);
        let work = assert_tracker_matches(&mut tracker, 8, &coflows, Some(&[]));
        assert!(!work.full_rebuild);
        assert!(work.delta_updates > 0);

        // A CoFlow whose flows all finish while it stays in the view
        // must drop to zero contention, then depart cleanly.
        coflows[0].flows[0].finished = true;
        assert_tracker_matches(&mut tracker, 8, &coflows, Some(&[CoflowId(1)]));
        coflows.remove(0);
        assert_tracker_matches(&mut tracker, 8, &coflows, Some(&[]));
    }

    #[test]
    fn tracker_resets_when_the_port_space_changes() {
        let small = vec![cf(0, &[(0, 2)]), cf(1, &[(0, 3)])];
        let big = vec![
            cf(1, &[(0, 3)]),
            cf(2, &[(0, 4), (1, 5), (2, 6)]),
            cf(3, &[(1, 7)]),
            cf(4, &[(2, 8)]),
        ];
        let mut tracker = ContentionTracker::new();
        assert_tracker_matches(&mut tracker, 4, &small, None);
        // num_nodes changed: stale state must be discarded even though
        // the hint claims nothing changed.
        assert_tracker_matches(&mut tracker, 9, &big, Some(&[]));
        assert_tracker_matches(&mut tracker, 4, &small, Some(&[]));
    }

    #[test]
    fn tracker_matches_oracle_under_random_churn() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x5aa7);
        let num_nodes = 12usize;
        let mut coflows: Vec<CoflowView> = Vec::new();
        let mut next_id = 0u32;
        let mut tracker = ContentionTracker::new();
        assert_tracker_matches(&mut tracker, num_nodes, &coflows, None);
        for round in 0..200 {
            let mut changed: Vec<CoflowId> = Vec::new();
            // Arrivals.
            while coflows.len() < 3 || rng.gen_bool(0.3) {
                let width = rng.gen_range(1..6usize);
                let flows: Vec<(u32, u32)> = (0..width)
                    .map(|_| {
                        (
                            rng.gen_range(0..num_nodes as u32),
                            rng.gen_range(0..num_nodes as u32),
                        )
                    })
                    .collect();
                coflows.push(cf(next_id, &flows));
                changed.push(CoflowId(next_id));
                next_id += 1;
            }
            // Finishes (footprints shrink) and readiness flips (which
            // must NOT affect contention, but mark dirty anyway — the
            // hint is a superset).
            for c in coflows.iter_mut() {
                if rng.gen_bool(0.4) {
                    let fi = rng.gen_range(0..c.flows.len());
                    c.flows[fi].finished = true;
                    changed.push(c.id);
                }
                if rng.gen_bool(0.2) {
                    let fi = rng.gen_range(0..c.flows.len());
                    c.flows[fi].ready = !c.flows[fi].ready;
                    changed.push(c.id);
                }
            }
            // Departures: drained CoFlows usually leave; occasionally
            // one is yanked mid-transfer (failure/abort path).
            coflows.retain(|c| {
                let drained = c.flows.iter().all(|f| f.finished);
                !(drained && rng.gen_bool(0.8) || rng.gen_bool(0.05))
            });
            let work = assert_tracker_matches(&mut tracker, num_nodes, &coflows, Some(&changed));
            assert!(!work.full_rebuild, "hinted round {round} fell back");
        }
    }

    #[test]
    fn endpoints_respect_ready_filter() {
        let mut c = cf(0, &[(0, 2), (1, 3)]);
        c.flows[1].ready = false;
        assert_eq!(endpoints_of(&c, 4, false).len(), 2);
        assert_eq!(endpoints_of(&c, 4, true).len(), 1);
        c.flows[0].finished = true;
        assert_eq!(endpoints_of(&c, 4, false).len(), 1);
    }
}
