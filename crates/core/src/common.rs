//! Shared machinery: contention computation, endpoint extraction, and
//! the reusable scratch arena that keeps scheduling rounds
//! allocation-free.

use crate::view::{ClusterView, CoflowView};
use saath_fabric::FlowEndpoints;
use saath_simcore::CoflowId;

/// Reusable buffers for one scheduling round.
///
/// Every per-round temporary the schedulers need — the port → CoFlow
/// incidence map and stamp array behind [`contention_into`], endpoint
/// lists, gang-rate scratch — lives here and is recycled across rounds,
/// so the steady-state scheduling loop performs no heap allocation.
/// One arena per scheduler instance; threading it through
/// [`contention_into`] / [`endpoints_into`] replaces the allocating
/// [`contention`] / [`endpoints_of`] in hot paths.
#[derive(Default)]
pub struct RoundArena {
    /// port → indices (into `view.coflows`) of CoFlows touching it.
    port_coflows: Vec<Vec<u32>>,
    /// CoFlow-indexed stamp array for contention dedup.
    stamp: Vec<u32>,
    /// Per-port flow counts for `gang_rate_with`.
    pub gang_scratch: Vec<u32>,
    /// Touched-port list for `gang_rate_with`.
    pub gang_touched: Vec<saath_simcore::PortId>,
}

impl RoundArena {
    /// A fresh, empty arena (buffers grow on first use).
    pub fn new() -> RoundArena {
        RoundArena::default()
    }
}

/// Per-CoFlow contention `k_c`: the number of *other* active CoFlows
/// with at least one unfinished flow on any port where CoFlow `c` has an
/// unfinished flow (§3.3, footnote 2). Returned parallel to
/// `view.coflows`.
///
/// Built from a port → CoFlow incidence map; the union over a CoFlow's
/// ports is deduplicated with a stamp array, so the whole computation is
/// `O(Σ ports + Σ incidences)` with no hashing in the inner loop.
pub fn contention(view: &ClusterView<'_>) -> Vec<u32> {
    let mut arena = RoundArena::new();
    let mut k = Vec::new();
    contention_into(view, &mut arena, &mut k);
    k
}

/// [`contention`] writing into `k` (cleared first) with all scratch
/// drawn from `arena` — the allocation-free form for hot loops.
pub fn contention_into(view: &ClusterView<'_>, arena: &mut RoundArena, k: &mut Vec<u32>) {
    let num_ports = 2 * view.num_nodes;
    // port → indices (into view.coflows) of coflows touching it.
    let port_coflows = &mut arena.port_coflows;
    if port_coflows.len() < num_ports {
        port_coflows.resize_with(num_ports, Vec::new);
    }
    for list in port_coflows.iter_mut() {
        list.clear();
    }
    for (ci, c) in view.coflows.iter().enumerate() {
        for f in c.unfinished() {
            let e = f.endpoints(view.num_nodes);
            for p in [e.src.index(), e.dst.index()] {
                // CoFlows are processed one at a time, so duplicates by
                // the same CoFlow on a port are always adjacent: a tail
                // check suffices to keep each incidence list a set.
                if port_coflows[p].last() != Some(&(ci as u32)) {
                    port_coflows[p].push(ci as u32);
                }
            }
        }
    }

    k.clear();
    k.resize(view.coflows.len(), 0u32);
    let stamp = &mut arena.stamp;
    stamp.clear();
    stamp.resize(view.coflows.len(), u32::MAX);
    for (ci, c) in view.coflows.iter().enumerate() {
        let mut count = 0u32;
        for f in c.unfinished() {
            let e = f.endpoints(view.num_nodes);
            for p in [e.src.index(), e.dst.index()] {
                for &other in &port_coflows[p] {
                    if other != ci as u32 && stamp[other as usize] != ci as u32 {
                        stamp[other as usize] = ci as u32;
                        count += 1;
                    }
                }
            }
        }
        k[ci] = count;
    }
}

/// Endpoints of a CoFlow's unfinished flows, optionally restricted to
/// ready (data-available) ones.
pub fn endpoints_of(c: &CoflowView, num_nodes: usize, ready_only: bool) -> Vec<FlowEndpoints> {
    let mut out = Vec::new();
    endpoints_into(c, num_nodes, ready_only, &mut out);
    out
}

/// [`endpoints_of`] writing into a caller-provided buffer (cleared
/// first), for allocation-free scheduling rounds.
pub fn endpoints_into(
    c: &CoflowView,
    num_nodes: usize,
    ready_only: bool,
    out: &mut Vec<FlowEndpoints>,
) {
    out.clear();
    out.extend(
        c.unfinished()
            .filter(|f| !ready_only || f.ready)
            .map(|f| f.endpoints(num_nodes)),
    );
}

/// Finds a CoFlow's index in the view by id (linear; views are small).
pub fn index_of(view: &ClusterView<'_>, id: CoflowId) -> Option<usize> {
    view.coflows.iter().position(|c| c.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::FlowView;
    use saath_simcore::{Bytes, FlowId, NodeId, Time};

    fn cf(id: u32, flows: &[(u32, u32)]) -> CoflowView {
        CoflowView {
            id: CoflowId(id),
            arrival: Time::ZERO,
            flows: flows
                .iter()
                .enumerate()
                .map(|(i, (s, d))| FlowView {
                    id: FlowId(id * 100 + i as u32),
                    src: NodeId(*s),
                    dst: NodeId(*d),
                    sent: Bytes::ZERO,
                    ready: true,
                    finished: false,
                    oracle_size: None,
                })
                .collect(),
            restarted: false,
        }
    }

    #[test]
    fn fig1_contentions() {
        // The Fig 1 topology: C2 spans senders 0,1,2; C1/C3/C4 use one
        // sender each; receivers all distinct.
        let coflows = vec![
            cf(1, &[(0, 3)]),
            cf(2, &[(0, 4), (1, 5), (2, 6)]),
            cf(3, &[(1, 7)]),
            cf(4, &[(2, 8)]),
        ];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 9,
            coflows: &coflows,
        };
        assert_eq!(contention(&view), vec![1, 3, 1, 1]);
    }

    #[test]
    fn finished_flows_do_not_contend() {
        let mut coflows = vec![cf(0, &[(0, 2)]), cf(1, &[(0, 3)])];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 4,
            coflows: &coflows,
        };
        assert_eq!(contention(&view), vec![1, 1]);
        coflows[0].flows[0].finished = true;
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 4,
            coflows: &coflows,
        };
        assert_eq!(contention(&view), vec![0, 0]);
    }

    #[test]
    fn contention_counts_coflows_not_flows() {
        // CoFlow 1 has three flows on sender 0; CoFlow 0 shares that
        // port but must count CoFlow 1 once.
        let coflows = vec![cf(0, &[(0, 2)]), cf(1, &[(0, 3), (0, 4), (0, 5)])];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 6,
            coflows: &coflows,
        };
        assert_eq!(contention(&view), vec![1, 1]);
    }

    #[test]
    fn receiver_side_contention_counts() {
        // Two coflows sharing only a receiver.
        let coflows = vec![cf(0, &[(0, 3)]), cf(1, &[(1, 3)])];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 4,
            coflows: &coflows,
        };
        assert_eq!(contention(&view), vec![1, 1]);
    }

    #[test]
    fn arena_reuse_is_stateless() {
        // Same arena across views of different shapes/sizes must give
        // the same answers as fresh allocation.
        let mut arena = RoundArena::new();
        let mut k = Vec::new();
        let big = vec![
            cf(1, &[(0, 3)]),
            cf(2, &[(0, 4), (1, 5), (2, 6)]),
            cf(3, &[(1, 7)]),
            cf(4, &[(2, 8)]),
        ];
        let small = vec![cf(0, &[(0, 2)]), cf(1, &[(0, 3)])];
        for _ in 0..3 {
            let view = ClusterView {
                now: Time::ZERO,
                num_nodes: 9,
                coflows: &big,
            };
            contention_into(&view, &mut arena, &mut k);
            assert_eq!(k, contention(&view));
            let view = ClusterView {
                now: Time::ZERO,
                num_nodes: 4,
                coflows: &small,
            };
            contention_into(&view, &mut arena, &mut k);
            assert_eq!(k, contention(&view));
        }
        // endpoints_into matches endpoints_of through reuse too.
        let mut eps = Vec::new();
        for c in &big {
            endpoints_into(c, 9, false, &mut eps);
            assert_eq!(eps, endpoints_of(c, 9, false));
        }
    }

    #[test]
    fn endpoints_respect_ready_filter() {
        let mut c = cf(0, &[(0, 2), (1, 3)]);
        c.flows[1].ready = false;
        assert_eq!(endpoints_of(&c, 4, false).len(), 2);
        assert_eq!(endpoints_of(&c, 4, true).len(), 1);
        c.flows[0].finished = true;
        assert_eq!(endpoints_of(&c, 4, false).len(), 1);
    }
}
