//! The deterministic slice merge shared by every sharded coordinator
//! path (replicated and partitioned, simulator-domain and runtime).
//!
//! Lives in `saath-core` so both the runtime's reconciler and the
//! simulator's in-process sharded schedulers use the *same* merge —
//! the safety net that restores feasibility when shards disagree.

use crate::view::Schedule;
use saath_fabric::PortBank;
use saath_simcore::{FlowId, PortId, Rate};

/// Merges shard slices into one feasible schedule: entries are sorted
/// by flow id (the deterministic total order) and each rate is clamped
/// to the remaining capacity of the flow's two ports. Returns the
/// number of clamped entries — zero whenever the slices came from
/// agreeing replicas; nonzero only where shards diverged (a missed
/// stats wave, a fresh restart, or stale contention summaries in
/// partitioned mode), where clamping restores feasibility without
/// coordination.
pub fn merge_rates(
    entries: &mut [(FlowId, Rate, PortId, PortId)],
    bank: &mut PortBank,
    out: &mut Schedule,
) -> u64 {
    merge_rates_rotated(entries, bank, out, 0)
}

/// [`merge_rates`] with the clamp order rotated by `seed` (typically
/// the scheduling round): entries are still sorted by flow id, but
/// allocation starts `seed % len` entries in and wraps. When clamping
/// is routine — the partitioned path, where stale summaries let shards
/// overcommit — a fixed order starves the same high-id flows on
/// contested ports every round; rotating the order spreads the clamp
/// damage across flows over time, bounding per-CoFlow delay. With zero
/// clamps (agreeing replicas) the order is irrelevant, so the
/// replicated path's byte-identity is unaffected by which variant runs.
pub fn merge_rates_rotated(
    entries: &mut [(FlowId, Rate, PortId, PortId)],
    bank: &mut PortBank,
    out: &mut Schedule,
    seed: u64,
) -> u64 {
    entries.sort_unstable_by_key(|(f, ..)| *f);
    let n = entries.len();
    let off = if n == 0 {
        0
    } else {
        (seed % n as u64) as usize
    };
    let mut clamps = 0u64;
    for i in 0..n {
        let (flow, rate, src, dst) = entries[(i + off) % n];
        let give = rate.min(bank.remaining(src)).min(bank.remaining(dst));
        if give < rate {
            clamps += 1;
        }
        if !give.is_zero() {
            bank.allocate(src, give);
            bank.allocate(dst, give);
            out.set(flow, give);
        }
    }
    clamps
}
