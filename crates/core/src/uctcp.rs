//! UC-TCP — the uncoordinated baseline (§6.1).
//!
//! "In UC-TCP, there are no queues, and all the flows are scheduled upon
//! arrival as per TCP." The fluid-model equivalent of many long-lived
//! TCP flows sharing edge ports is global max-min fairness, which
//! [`max_min_fair`] computes exactly. No coordinator state, no
//! priorities, no gang semantics — every ready flow always progresses at
//! its fair share.

use crate::timing::SchedTimings;
use crate::view::{ClusterView, CoflowScheduler, Schedule};
use saath_fabric::{max_min_fair_into, FlowEndpoints, MaxMinScratch, PortBank};
use saath_simcore::Rate;
use std::time::Instant;

/// The UC-TCP scheduler.
#[derive(Default)]
pub struct UcTcp {
    /// Per-round overhead samples.
    pub timings: SchedTimings,
    // Per-round buffers, recycled so the hot path never allocates.
    eps: Vec<FlowEndpoints>,
    rates: Vec<Rate>,
    scratch: MaxMinScratch,
}

impl UcTcp {
    /// A new UC-TCP baseline.
    pub fn new() -> UcTcp {
        UcTcp::default()
    }
}

impl CoflowScheduler for UcTcp {
    fn name(&self) -> &'static str {
        "uc-tcp"
    }

    fn compute(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule) {
        let t_total = Instant::now();
        self.eps.clear();
        for c in view.coflows {
            self.eps.extend(
                c.unfinished()
                    .filter(|f| f.ready)
                    .map(|f| f.endpoints(view.num_nodes)),
            );
        }
        max_min_fair_into(bank, &self.eps, &mut self.scratch, &mut self.rates);
        for (e, &r) in self.eps.iter().zip(self.rates.iter()) {
            if !r.is_zero() {
                bank.allocate(e.src, r);
                bank.allocate(e.dst, r);
                out.set(e.flow, r);
            }
        }
        self.timings.record_total(t_total.elapsed());
        self.timings.active_coflows.push(view.coflows.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{CoflowView, FlowView};
    use saath_simcore::{Bytes, CoflowId, FlowId, NodeId, Rate, Time};

    fn fv(id: u32, src: u32, dst: u32) -> FlowView {
        FlowView {
            id: FlowId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            sent: Bytes::ZERO,
            ready: true,
            finished: false,
            oracle_size: None,
        }
    }

    #[test]
    fn flows_share_fairly_regardless_of_coflow() {
        // Three flows on one uplink, from two CoFlows: each flow gets a
        // third (per-flow fairness, not per-CoFlow).
        let coflows = vec![
            CoflowView {
                id: CoflowId(0),
                arrival: Time::ZERO,
                flows: vec![fv(0, 0, 1), fv(1, 0, 2)],
                restarted: false,
            },
            CoflowView {
                id: CoflowId(1),
                arrival: Time::ZERO,
                flows: vec![fv(2, 0, 3)],
                restarted: false,
            },
        ];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 4,
            coflows: &coflows,
            changed: None,
        };
        let mut bank = PortBank::uniform(4, Rate(900));
        let mut out = Schedule::default();
        UcTcp::new().compute(&view, &mut bank, &mut out);
        for f in 0..3 {
            assert_eq!(out.rate_of(FlowId(f)), Rate(300));
        }
    }

    #[test]
    fn never_oversubscribes() {
        // A dense mesh; the debug assertion in `allocate` would fire on
        // oversubscription.
        let flows: Vec<FlowView> = (0..12).map(|i| fv(i, i % 3, 3 + (i % 2))).collect();
        let coflows = vec![CoflowView {
            id: CoflowId(0),
            arrival: Time::ZERO,
            flows,
            restarted: false,
        }];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 5,
            coflows: &coflows,
            changed: None,
        };
        let mut bank = PortBank::uniform(5, Rate(1000));
        let mut out = Schedule::default();
        UcTcp::new().compute(&view, &mut bank, &mut out);
        assert!(!out.rates.is_empty());
    }
}
