//! Bounded-staleness contention summaries for partitioned-compute
//! sharding.
//!
//! PR 5's sharded coordinator replicates the *full* policy per shard to
//! keep records byte-identical, so sharding adds wall overhead instead
//! of dividing the compute. The partitioned mode divides it: each shard
//! keeps full [`crate::view::CoflowView`]s only for the CoFlows it owns
//! (via [`crate::view::shard_of`]) plus one compact
//! [`ContentionSummary`] per remote shard, refreshed every S rounds
//! (the *staleness budget*). A summary carries exactly what Saath's
//! spatial decisions need from remote CoFlows:
//!
//! * **per-port occupancy** — how many remote CoFlows have an
//!   unfinished flow on each port, which lower-bounds the remote
//!   contribution to any owned CoFlow's `k_c` (LCoF, §3.3);
//! * **per-port claimed rate** — the capacity the remote shard's last
//!   schedule took on each port, pre-charged against the local bank
//!   down to a reserve of capacity/K per port (so backoff over a
//!   shared hot port stays partial instead of oscillating, and no
//!   saturated peer can monopolize a port) so admission does not hand
//!   out capacity a remote shard already claimed;
//! * **per-queue aggregates** — remote CoFlow counts and `k_c` sums per
//!   priority queue, exported for observability (queue-occupancy
//!   dashboards stay cluster-wide even though no shard sees every
//!   CoFlow).
//!
//! Everything is integer-exact and deterministic; the summary a shard
//! exports is a pure function of its tracker state, so partitioned runs
//! replay bit-for-bit. Staleness semantics: S=0 means *exchange
//! everything every round* — no state is omitted, shards degenerate to
//! full replicas and records are byte-identical to the single
//! coordinator (the replicated oracle). S≥1 exchanges summaries every S
//! rounds; decisions in between are made against summaries up to S−1
//! rounds old, trading bounded CCT deviation for per-shard compute that
//! scales with *owned* CoFlows only.

use crate::view::CoflowView;
use saath_simcore::{FlowId, PortId, Rate};

/// One shard's compact export of its contention state, consumed by
/// every other shard. See the module docs for field semantics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContentionSummary {
    /// Exporting shard.
    pub shard: u32,
    /// Scheduling round the summary was exported after (age = current
    /// round − this).
    pub round: u64,
    /// `(port index, active CoFlow count)` for every port where the
    /// shard has at least one CoFlow with an unfinished flow, sorted by
    /// port index.
    pub port_coflows: Vec<(u32, u32)>,
    /// `(port index, claimed rate)` from the shard's last emitted
    /// schedule slice, sorted by port index, zero entries omitted.
    pub port_rates: Vec<(u32, u64)>,
    /// Remote CoFlow count per priority queue.
    pub queue_coflows: Vec<u32>,
    /// Sum of remote `k_c` per priority queue.
    pub queue_kc_sum: Vec<u64>,
}

impl ContentionSummary {
    /// Resets to an empty summary (no remote CoFlows, nothing claimed)
    /// without giving buffers back.
    pub fn clear(&mut self) {
        self.shard = 0;
        self.round = 0;
        self.port_coflows.clear();
        self.port_rates.clear();
        self.queue_coflows.clear();
        self.queue_kc_sum.clear();
    }

    /// Wire size of this summary in the runtime's framing (mirrors the
    /// proto encoding: fixed header + length-prefixed element lists), so
    /// the simulator's `summary_bytes_exchanged` accounting matches what
    /// the distributed runtime would actually ship.
    pub fn encoded_len(&self) -> usize {
        4 + 8 // shard + round
            + 4 + 8 * self.port_coflows.len() // count + (u32, u32) each
            + 4 + 12 * self.port_rates.len() // count + (u32, u64) each
            + 4 + 4 * self.queue_coflows.len()
            + 4 + 8 * self.queue_kc_sum.len()
    }

    /// Remote CoFlows active on `port`, by binary search (the list is
    /// sorted by port index).
    pub fn coflows_on_port(&self, port: u32) -> u32 {
        match self.port_coflows.binary_search_by_key(&port, |&(p, _)| p) {
            Ok(i) => self.port_coflows[i].1,
            Err(_) => 0,
        }
    }
}

/// The remote contention addend for one owned CoFlow: for each remote
/// summary, the *maximum* per-port remote occupancy over the CoFlow's
/// unfinished-flow ports. Distinct remote CoFlows cannot be
/// distinguished across ports from counts alone, so taking the max per
/// shard (rather than the sum over ports) is a deterministic lower
/// bound on the number of distinct remote contenders — it never
/// overstates contention, keeping LCoF conservative about deprioritizing
/// owned CoFlows on stale information.
///
/// `scratch` holds the CoFlow's deduplicated port list between calls.
pub fn remote_contention(
    c: &CoflowView,
    num_nodes: usize,
    summaries: &[ContentionSummary],
    skip_shard: u32,
    scratch: &mut Vec<u32>,
) -> u32 {
    scratch.clear();
    for f in c.unfinished() {
        let e = f.endpoints(num_nodes);
        scratch.push(e.src.index() as u32);
        scratch.push(e.dst.index() as u32);
    }
    scratch.sort_unstable();
    scratch.dedup();
    let mut add = 0u32;
    for s in summaries {
        if s.shard == skip_shard || s.port_coflows.is_empty() {
            continue;
        }
        let mut best = 0u32;
        for &p in scratch.iter() {
            best = best.max(s.coflows_on_port(p));
        }
        add = add.saturating_add(best);
    }
    add
}

/// Aggregates a schedule slice's per-flow rates into per-port claimed
/// rates (both endpoints charged), sorted by port with zero entries
/// omitted — the `port_rates` half of a summary.
pub fn port_rates_of_slice(entries: &[(FlowId, Rate, PortId, PortId)], out: &mut Vec<(u32, u64)>) {
    out.clear();
    for &(_, rate, src, dst) in entries {
        out.push((src.index() as u32, rate.as_u64()));
        out.push((dst.index() as u32, rate.as_u64()));
    }
    out.sort_unstable_by_key(|&(p, _)| p);
    // Merge duplicate ports in place.
    let mut w = 0usize;
    for r in 0..out.len() {
        if w > 0 && out[w - 1].0 == out[r].0 {
            out[w - 1].1 = out[w - 1].1.saturating_add(out[r].1);
        } else {
            out[w] = out[r];
            w += 1;
        }
    }
    out.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::FlowView;
    use saath_simcore::{Bytes, CoflowId, FlowId, NodeId, PortId, Rate, Time};

    fn cf(id: u32, flows: &[(u32, u32)]) -> CoflowView {
        CoflowView {
            id: CoflowId(id),
            arrival: Time::ZERO,
            flows: flows
                .iter()
                .enumerate()
                .map(|(i, (s, d))| FlowView {
                    id: FlowId(id * 100 + i as u32),
                    src: NodeId(*s),
                    dst: NodeId(*d),
                    sent: Bytes::ZERO,
                    ready: true,
                    finished: false,
                    oracle_size: None,
                })
                .collect(),
            restarted: false,
        }
    }

    #[test]
    fn remote_contention_takes_per_shard_port_max() {
        // Owned CoFlow on uplink 0 and downlink 5 (num_nodes = 4 →
        // downlink index 4 + 1 = 5).
        let c = cf(0, &[(0, 1)]);
        let mut s1 = ContentionSummary {
            shard: 1,
            ..Default::default()
        };
        s1.port_coflows = vec![(0, 3), (5, 2)]; // same shard on both ports
        let s2 = ContentionSummary {
            shard: 2,
            port_coflows: vec![(5, 1)],
            ..Default::default()
        };
        let mut scratch = Vec::new();
        // Shard 1 contributes max(3, 2) = 3 (its 3 CoFlows on port 0
        // may include the 2 on port 5); shard 2 contributes 1.
        assert_eq!(
            remote_contention(&c, 4, &[s1.clone(), s2.clone()], 0, &mut scratch),
            4
        );
        // A shard never counts its own summary.
        assert_eq!(remote_contention(&c, 4, &[s1, s2], 1, &mut scratch), 1);
    }

    #[test]
    fn port_rates_merge_and_sort() {
        let up0 = PortId::uplink(NodeId(0));
        let up1 = PortId::uplink(NodeId(1));
        let dn2 = PortId::downlink(NodeId(2), 4);
        let entries = vec![
            (FlowId(1), Rate(10), up0, dn2),
            (FlowId(2), Rate(5), up1, dn2),
        ];
        let mut out = Vec::new();
        port_rates_of_slice(&entries, &mut out);
        assert_eq!(
            out,
            vec![
                (up0.index() as u32, 10),
                (up1.index() as u32, 5),
                (dn2.index() as u32, 15),
            ]
        );
    }

    #[test]
    fn encoded_len_tracks_contents() {
        let mut s = ContentionSummary::default();
        let empty = s.encoded_len();
        s.port_coflows.push((3, 1));
        s.port_rates.push((3, 100));
        s.queue_coflows.push(1);
        s.queue_kc_sum.push(7);
        assert_eq!(s.encoded_len(), empty + 8 + 12 + 4 + 8);
        s.clear();
        assert_eq!(s.encoded_len(), empty);
    }
}
