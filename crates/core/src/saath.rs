//! The Saath scheduler (Fig 7 of the paper).
//!
//! Each round the global coordinator:
//!
//! 1. **Assigns queues** with *per-flow thresholds* (D3/Eq. 1): a CoFlow
//!    sits in the smallest queue whose per-flow share of the threshold
//!    covers `m_c`, the most any of its flows has sent. For CoFlows
//!    marked `restarted` (failures/stragglers), the §4.3 heuristic
//!    replaces `m_c` with an estimate of the *remaining* length — which
//!    can move a nearly-done CoFlow back *up* into high-priority queues,
//!    approximating SRTF.
//! 2. **Orders** each queue by *Least-Contention-First* (D1 step 3):
//!    ascending `k_c`, the number of other CoFlows sharing its ports,
//!    with deadline-expired CoFlows sorted ahead of everything (D5) and
//!    arrival order breaking ties.
//! 3. **Admits all-or-none** (D1 step 4 / D2): scanning queues high to
//!    low, a CoFlow is scheduled only if *every* flow can get a nonzero
//!    rate (and all its data is available, §4.3); admitted CoFlows get
//!    MADD-style *equal* rates — the max-min share of their most
//!    contended port — because running some flows faster than the
//!    slowest cannot improve the CCT.
//! 4. **Work-conserves** (D4): CoFlows that missed admission backfill
//!    leftover port capacity flow-by-flow, in the same priority order.
//!
//! Ablation flags reproduce the Fig 10 breakdown: `all_or_none` only
//! (FIFO order + Aalo-style total-bytes thresholds), `+ per-flow
//! thresholds`, `+ LCoF` (= full Saath).

use crate::common::{contention_into, endpoints_into, ContentionTracker, RoundArena};
use crate::config::QueueConfig;
use crate::order::OrderBook;
use crate::timing::SchedTimings;
use crate::view::{ClusterView, CoflowScheduler, CoflowView, Schedule};
use saath_fabric::{gang_allocate, gang_rate_with, greedy_fill_into, FlowEndpoints, PortBank};
use saath_simcore::{Bytes, CoflowId, FastHashMap, FastHashSet, Rate, Time};
use saath_telemetry::MechCounters;
use std::time::Instant;

/// Saath configuration. [`SaathConfig::default`] is the full paper
/// design with the paper's parameters (K=10, S=10 MB, E=10, d=2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaathConfig {
    /// Priority-queue shape.
    pub queues: QueueConfig,
    /// Starvation deadline factor `d` (D5); deadline = `d · C_q · t_q`.
    pub deadline_factor: u64,
    /// Gang admission (key idea 1). Off = every CoFlow takes the greedy
    /// path, which degenerates to Aalo-style uncoordinated filling.
    pub all_or_none: bool,
    /// Per-flow queue thresholds (key idea 2). Off = Aalo's total-bytes
    /// rule.
    pub per_flow_threshold: bool,
    /// LCoF ordering (key idea 3). Off = FIFO within each queue.
    pub lcof: bool,
    /// Backfill idle ports with missed CoFlows (D4).
    pub work_conservation: bool,
    /// Enforce FIFO-derived deadlines (D5).
    pub starvation_avoidance: bool,
    /// §4.3 SRTF-style re-queue for restarted/straggling CoFlows.
    pub dynamics_srtf: bool,
    /// Skew-aware per-flow thresholds — the extension the paper
    /// sketches for clusters with skewed flow-length distributions
    /// (§3): each flow's threshold share scales with its observed byte
    /// fraction instead of the plain equal split. Off by default (the
    /// paper's evaluated design splits equally).
    pub skew_aware_thresholds: bool,
    /// Maintain `k_c` incrementally across rounds via the
    /// [`ClusterView::changed`] hint instead of rebuilding the full
    /// port-incidence map every round (§5.4 scalability). Identical
    /// results either way — [`contention_into`] stays the oracle and
    /// debug builds assert equality every round. Off reproduces the
    /// original full-rebuild cost for benchmarking.
    pub incremental_contention: bool,
    /// Maintain the LCoF order incrementally across rounds in an
    /// [`OrderBook`] instead of re-sorting every CoFlow every round
    /// (§5.4 scalability): CoFlows are bucketed by `(queue, expired)`
    /// class and repositioned only when an ordering-key component
    /// changes, with unchanged CoFlows (per the [`ClusterView::changed`]
    /// hint) also reusing their cached queue assignment. Identical
    /// results either way — the full re-sort stays the oracle and debug
    /// builds assert equality every round. Off reproduces the original
    /// full re-sort cost for benchmarking.
    pub incremental_order: bool,
    /// Number of shards for the parallel gang-probe phase; `0` = one
    /// per available core. Only read in `parallel`-feature builds; the
    /// schedule is byte-identical for every shard count (speculative
    /// probes are re-validated in a deterministic serial merge).
    pub probe_shards: usize,
}

impl Default for SaathConfig {
    fn default() -> Self {
        SaathConfig {
            queues: QueueConfig::default(),
            deadline_factor: 2,
            all_or_none: true,
            per_flow_threshold: true,
            lcof: true,
            work_conservation: true,
            starvation_avoidance: true,
            dynamics_srtf: true,
            skew_aware_thresholds: false,
            incremental_contention: true,
            incremental_order: true,
            probe_shards: 0,
        }
    }
}

impl SaathConfig {
    /// Fig 10's "A/N" ablation: all-or-none + FIFO + total-bytes
    /// thresholds.
    pub fn ablation_an() -> Self {
        SaathConfig {
            per_flow_threshold: false,
            lcof: false,
            ..Default::default()
        }
    }

    /// Fig 10's "A/N + P/F" ablation: adds per-flow thresholds, still
    /// FIFO.
    pub fn ablation_an_pf() -> Self {
        SaathConfig {
            lcof: false,
            ..Default::default()
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct CoflowState {
    queue: usize,
    deadline: Time,
    /// Whether this deadline's expiry was already counted (telemetry
    /// only; never read by scheduling decisions).
    expiry_counted: bool,
}

/// The Saath global scheduler. See the module docs.
pub struct Saath {
    cfg: SaathConfig,
    state: FastHashMap<CoflowId, CoflowState>,
    /// Per-round overhead samples (Table 2).
    pub timings: SchedTimings,
    /// Shared scratch (contention incidence map, gang-rate counters),
    /// kept across rounds so the hot path never allocates.
    arena: RoundArena,
    /// Incremental `k_c` state, fed by the `ClusterView::changed` hint.
    tracker: ContentionTracker,
    /// Incrementally maintained LCoF order (see [`OrderBook`]); only
    /// populated when `cfg.incremental_order`.
    book: OrderBook,
    /// Remote-shard contention addends (partitioned sharding): added to
    /// the locally-tracked `k_c` before LCoF ordering, so a shard that
    /// only sees its owned CoFlows still orders them against the rest of
    /// the cluster's (summarised, possibly stale) footprint. Empty in
    /// non-partitioned runs.
    remote_k: FastHashMap<CoflowId, u32>,
    /// Scratch: the round's `changed` hint as a set, for queue caching.
    changed_set: FastHashSet<CoflowId>,
    /// Scratch: ids garbage-collected from `state` this round, relayed
    /// to the order book.
    gone: Vec<CoflowId>,
    /// Per-round buffers, recycled across rounds (see `compute`).
    queues: Vec<usize>,
    occupancy: Vec<usize>,
    k: Vec<u32>,
    order: Vec<usize>,
    expired: Vec<bool>,
    missed: Vec<usize>,
    eps: Vec<FlowEndpoints>,
    wc_rates: Vec<Rate>,
    live: FastHashSet<CoflowId>,
    /// Speculative probe results, indexed by order position (parallel
    /// builds only): endpoints, readiness, and the gang rate computed
    /// against the pre-admission bank snapshot.
    #[cfg(feature = "parallel")]
    spec_eps: Vec<Vec<FlowEndpoints>>,
    #[cfg(feature = "parallel")]
    spec_ready: Vec<bool>,
    #[cfg(feature = "parallel")]
    spec_rate: Vec<Rate>,
    /// Ports drawn down by an admission since the probe snapshot.
    #[cfg(feature = "parallel")]
    drawn: Vec<bool>,
    /// Rounds in which a deadline-expired CoFlow was force-prioritized
    /// (§7.1 reports starvation avoidance kicking in <1 % of the time).
    pub starvation_kicks: u64,
    /// Mechanism counters (D1–D5 events). Only maintained in
    /// `telemetry`-feature builds; all-zero otherwise.
    pub mech: MechCounters,
}

impl Saath {
    /// A scheduler with the given configuration.
    pub fn new(cfg: SaathConfig) -> Saath {
        Saath {
            cfg,
            state: FastHashMap::default(),
            timings: SchedTimings::default(),
            arena: RoundArena::new(),
            tracker: ContentionTracker::new(),
            book: OrderBook::new(),
            remote_k: FastHashMap::default(),
            changed_set: FastHashSet::default(),
            gone: Vec::new(),
            queues: Vec::new(),
            occupancy: Vec::new(),
            k: Vec::new(),
            order: Vec::new(),
            expired: Vec::new(),
            missed: Vec::new(),
            eps: Vec::new(),
            wc_rates: Vec::new(),
            live: FastHashSet::default(),
            #[cfg(feature = "parallel")]
            spec_eps: Vec::new(),
            #[cfg(feature = "parallel")]
            spec_ready: Vec::new(),
            #[cfg(feature = "parallel")]
            spec_rate: Vec::new(),
            #[cfg(feature = "parallel")]
            drawn: Vec::new(),
            starvation_kicks: 0,
            mech: MechCounters::default(),
        }
    }

    /// The paper's full design with default parameters.
    pub fn with_defaults() -> Saath {
        Saath::new(SaathConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &SaathConfig {
        &self.cfg
    }

    /// The queue a CoFlow would be assigned this round (D3 + §4.3).
    pub fn queue_of(&self, c: &CoflowView) -> usize {
        queue_for(&self.cfg, c)
    }

    /// Installs remote-shard contention addends (partitioned sharding).
    /// Each entry's value is added to the CoFlow's locally-computed
    /// `k_c` before LCoF ordering; the previous addends are replaced
    /// wholesale. Pass an empty slice to return to purely local
    /// contention. No effect when `lcof` is off (the ablations order by
    /// FIFO and must stay contention-blind).
    pub fn set_remote_contention(&mut self, entries: &[(CoflowId, u32)]) {
        self.remote_k.clear();
        for &(id, add) in entries {
            if add > 0 {
                self.remote_k.insert(id, add);
            }
        }
    }

    /// Exports this scheduler's contention state as a
    /// [`crate::summary::ContentionSummary`] for partitioned sharding:
    /// per-port occupancy and per-queue aggregates from the incremental
    /// tracker, queue assignments from the per-CoFlow state map.
    /// `port_rates` is left for the caller (it depends on the emitted
    /// slice, which the scheduler does not retain). Meaningful only
    /// when `incremental_contention` and `lcof` are on — otherwise the
    /// tracker is idle and the export is empty.
    pub fn export_summary(
        &self,
        shard: u32,
        round: u64,
        out: &mut crate::summary::ContentionSummary,
    ) {
        out.clear();
        out.shard = shard;
        out.round = round;
        let state = &self.state;
        self.tracker.export_summary(
            |id| state.get(&id).map(|s| s.queue).unwrap_or(0),
            self.cfg.queues.num_queues,
            out,
        );
    }

    /// Speculatively probes every CoFlow's gang rate against the
    /// pre-admission bank snapshot, sharded across a scoped thread
    /// pool. Returns `false` (probe skipped) when gang admission is off
    /// or the round is too small to be worth the fan-out.
    ///
    /// Each shard gets a contiguous slice of the admission order and
    /// its own gang scratch, and writes results by order position —
    /// so the output is independent of thread interleaving.
    #[cfg(feature = "parallel")]
    fn parallel_probe(&mut self, view: &ClusterView<'_>, bank: &PortBank) -> bool {
        let n = self.order.len();
        if !self.cfg.all_or_none || n < 2 {
            return false;
        }
        let shards = if self.cfg.probe_shards == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.cfg.probe_shards
        }
        .clamp(1, n);
        let t_probe = Instant::now();
        if self.spec_eps.len() < n {
            self.spec_eps.resize_with(n, Vec::new);
        }
        self.spec_ready.clear();
        self.spec_ready.resize(n, false);
        self.spec_rate.clear();
        self.spec_rate.resize(n, Rate::ZERO);
        let chunk = n.div_ceil(shards);
        let order = &self.order;
        std::thread::scope(|s| {
            let mut eps_rest: &mut [Vec<FlowEndpoints>] = &mut self.spec_eps[..n];
            let mut ready_rest: &mut [bool] = &mut self.spec_ready;
            let mut rate_rest: &mut [Rate] = &mut self.spec_rate;
            let mut start = 0;
            while start < n {
                let len = chunk.min(n - start);
                let (eps_chunk, rest) = eps_rest.split_at_mut(len);
                eps_rest = rest;
                let (ready_chunk, rest) = ready_rest.split_at_mut(len);
                ready_rest = rest;
                let (rate_chunk, rest) = rate_rest.split_at_mut(len);
                rate_rest = rest;
                let order_chunk = &order[start..start + len];
                s.spawn(move || {
                    let mut scratch: Vec<u32> = Vec::new();
                    let mut touched: Vec<saath_simcore::PortId> = Vec::new();
                    for (j, &ci) in order_chunk.iter().enumerate() {
                        let c = &view.coflows[ci];
                        endpoints_into(c, view.num_nodes, false, &mut eps_chunk[j]);
                        ready_chunk[j] = c.all_ready();
                        rate_chunk[j] = if eps_chunk[j].is_empty() || !ready_chunk[j] {
                            Rate::ZERO
                        } else {
                            gang_rate_with(bank, &eps_chunk[j], &mut scratch, &mut touched)
                        };
                    }
                });
                start += len;
            }
        });
        self.timings.record_probe(t_probe.elapsed());
        true
    }

    /// The sequential admission scan — the executable specification the
    /// parallel probe + merge must match byte for byte.
    fn admit_serial(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule) {
        for oi in 0..self.order.len() {
            let ci = self.order[oi];
            let c = &view.coflows[ci];
            endpoints_into(c, view.num_nodes, false, &mut self.eps);
            if self.eps.is_empty() {
                continue; // fully finished; driver will drop it
            }
            if !self.cfg.all_or_none || !c.all_ready() {
                if saath_telemetry::enabled() && self.cfg.all_or_none {
                    self.mech.unready_skips += 1;
                }
                self.missed.push(ci);
                continue;
            }
            let r = gang_rate_with(
                bank,
                &self.eps,
                &mut self.arena.gang_scratch,
                &mut self.arena.gang_touched,
            );
            if saath_telemetry::enabled() {
                self.mech.madd_evals += 1;
            }
            if r.is_zero() {
                if saath_telemetry::enabled() {
                    self.mech.gang_rejections += 1;
                }
                self.missed.push(ci);
            } else {
                if saath_telemetry::enabled() {
                    self.mech.gang_admissions += 1;
                }
                gang_allocate(bank, &self.eps, r);
                for e in &self.eps {
                    out.set(e.flow, r);
                }
            }
        }
    }

    /// Serial, in-order merge of the speculative probes. A speculative
    /// rate is exact unless an earlier admission drew down one of the
    /// CoFlow's ports since the snapshot; those are recomputed against
    /// the live bank — yielding exactly what the serial path computes,
    /// byte for byte.
    #[cfg(feature = "parallel")]
    fn merge_probes(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule) {
        let t_merge = Instant::now();
        self.drawn.clear();
        self.drawn.resize(2 * view.num_nodes, false);
        for oi in 0..self.order.len() {
            let ci = self.order[oi];
            let eps = &self.spec_eps[oi];
            if eps.is_empty() {
                continue; // fully finished; driver will drop it
            }
            if !self.spec_ready[oi] {
                if saath_telemetry::enabled() {
                    self.mech.unready_skips += 1;
                }
                self.missed.push(ci);
                continue;
            }
            let stale = eps
                .iter()
                .any(|e| self.drawn[e.src.index()] || self.drawn[e.dst.index()]);
            let r = if stale {
                if saath_telemetry::enabled() {
                    self.mech.probe_revalidations += 1;
                }
                gang_rate_with(
                    bank,
                    eps,
                    &mut self.arena.gang_scratch,
                    &mut self.arena.gang_touched,
                )
            } else {
                self.spec_rate[oi]
            };
            if saath_telemetry::enabled() {
                self.mech.madd_evals += 1;
            }
            if r.is_zero() {
                if saath_telemetry::enabled() {
                    self.mech.gang_rejections += 1;
                }
                self.missed.push(ci);
            } else {
                if saath_telemetry::enabled() {
                    self.mech.gang_admissions += 1;
                }
                gang_allocate(bank, eps, r);
                for e in eps {
                    out.set(e.flow, r);
                    self.drawn[e.src.index()] = true;
                    self.drawn[e.dst.index()] = true;
                }
            }
        }
        self.timings.record_merge(t_merge.elapsed());
    }
}

/// D3 + §4.3 queue assignment as a free function, so `compute` can call
/// it while holding mutable borrows of the scheduler's round buffers.
fn queue_for(cfg: &SaathConfig, c: &CoflowView) -> usize {
    if cfg.dynamics_srtf && c.restarted {
        if let Some(m) = dynamics_remaining_estimate(c) {
            return cfg.queues.queue_for_per_flow(m, c.width());
        }
    }
    if cfg.per_flow_threshold {
        if cfg.skew_aware_thresholds {
            let sents: Vec<saath_simcore::Bytes> = c.flows.iter().map(|f| f.sent).collect();
            cfg.queues.queue_for_skew_aware(&sents)
        } else {
            cfg.queues.queue_for_per_flow(c.max_flow_sent(), c.width())
        }
    } else {
        cfg.queues.queue_for_total(c.total_sent())
    }
}

/// §4.3: once some flows of a restarted/straggling CoFlow have finished,
/// estimate each unfinished flow's remaining length as `f_e − f_i`
/// (`f_e` = median finished flow length, `f_i` = bytes sent so far) and
/// return `m_c = max_i f_i^rem`. `None` when no flow has finished yet
/// (no basis for an estimate).
fn dynamics_remaining_estimate(c: &CoflowView) -> Option<Bytes> {
    let mut finished: Vec<u64> = c
        .flows
        .iter()
        .filter(|f| f.finished)
        .map(|f| f.sent.as_u64())
        .collect();
    if finished.is_empty() {
        return None;
    }
    finished.sort_unstable();
    let f_e = finished[finished.len() / 2];
    let m = c
        .unfinished()
        .map(|f| f_e.saturating_sub(f.sent.as_u64()))
        .max()
        .unwrap_or(0);
    Some(Bytes(m))
}

impl CoflowScheduler for Saath {
    fn name(&self) -> &'static str {
        "saath"
    }

    fn compute(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule) {
        let t_total = Instant::now();
        let n = view.coflows.len();

        // ---- Ordering phase (queue assignment, deadlines, LCoF sort) ----
        let t_order = Instant::now();

        // Drop state for departed CoFlows — unconditionally, against the
        // live-id set. (Guarding on `state.len() > n` leaks stale
        // entries whenever departures are matched by same-round
        // arrivals, since the map never shrinks below the view size.)
        // Departures are relayed to the order book, which mirrors the
        // state map's membership exactly.
        self.live.clear();
        self.live.extend(view.coflows.iter().map(|c| c.id));
        let live = &self.live;
        let gone = &mut self.gone;
        gone.clear();
        self.state.retain(|id, _| {
            let keep = live.contains(id);
            if !keep {
                gone.push(*id);
            }
            keep
        });
        for gi in 0..self.gone.len() {
            self.book.remove(self.gone[gi]);
        }

        // New queue assignment for everyone. With the incremental order
        // on and a usable `changed` hint, CoFlows the hint excludes have
        // byte-identical view contents ([`ClusterView::changed`]'s
        // contract), so their cached queue is reused instead of
        // re-deriving it from every flow — debug-asserted against the
        // full computation.
        self.queues.clear();
        let cache_queues = self.cfg.incremental_order && view.changed.is_some();
        if cache_queues {
            self.changed_set.clear();
            self.changed_set
                .extend(view.changed.unwrap_or(&[]).iter().copied());
            for c in view.coflows.iter() {
                let q = match self.state.get(&c.id) {
                    Some(s) if !self.changed_set.contains(&c.id) => {
                        debug_assert_eq!(
                            s.queue,
                            queue_for(&self.cfg, c),
                            "cached queue diverged for a CoFlow outside the changed hint"
                        );
                        s.queue
                    }
                    _ => queue_for(&self.cfg, c),
                };
                self.queues.push(q);
            }
        } else {
            self.queues
                .extend(view.coflows.iter().map(|c| queue_for(&self.cfg, c)));
        }

        // Queue occupancy under the *new* assignment, for fresh deadlines.
        self.occupancy.clear();
        self.occupancy.resize(self.cfg.queues.num_queues, 0);
        for &q in &self.queues {
            self.occupancy[q] += 1;
        }

        // Refresh deadlines for CoFlows that are new or changed queue
        // (D5: "whenever a CoFlow arrives in a queue, a fresh deadline
        // is set for it"). Horizons are normalized by the *nominal*
        // port rate: a degraded port (straggler) must not stretch every
        // CoFlow's starvation deadline.
        let nominal_rate = bank.nominal_rate();
        for (c, &q) in view.coflows.iter().zip(&self.queues) {
            let needs_fresh = match self.state.get(&c.id) {
                Some(s) => s.queue != q,
                None => true,
            };
            if needs_fresh {
                if saath_telemetry::enabled() && self.state.contains_key(&c.id) {
                    // An existing CoFlow crossed a threshold (D3) — new
                    // arrivals are assignments, not transitions.
                    self.mech.queue_transitions += 1;
                }
                let t_q = self.cfg.queues.min_residence(q, nominal_rate);
                let horizon = t_q
                    .saturating_mul(self.cfg.deadline_factor)
                    .saturating_mul(self.occupancy[q].max(1) as u64);
                self.state.insert(
                    c.id,
                    CoflowState {
                        queue: q,
                        deadline: view.now.saturating_add(horizon),
                        expiry_counted: false,
                    },
                );
            }
        }

        // Contention (only when LCoF orders by it).
        let t_contention = Instant::now();
        if self.cfg.lcof {
            if self.cfg.incremental_contention {
                let work = self.tracker.compute_into(view, &mut self.k);
                if saath_telemetry::enabled() {
                    self.mech.contention_deltas += work.delta_updates;
                    if work.full_rebuild {
                        self.mech.contention_rebuilds += 1;
                    } else {
                        self.mech.contention_rebuilds_avoided += 1;
                    }
                }
                // The full rebuild stays the executable specification:
                // every debug round proves the delta-updated k equals it.
                #[cfg(debug_assertions)]
                {
                    let mut oracle = Vec::new();
                    contention_into(view, &mut self.arena, &mut oracle);
                    assert_eq!(
                        self.k, oracle,
                        "incremental contention diverged from the contention_into oracle"
                    );
                }
            } else {
                contention_into(view, &mut self.arena, &mut self.k);
            }
        } else {
            self.k.clear();
            self.k.resize(n, 0);
        }
        // Partitioned sharding: fold in the remote-shard contention
        // addends *after* the local oracle check — the oracle only
        // covers CoFlows in this (possibly partial) view.
        if self.cfg.lcof && !self.remote_k.is_empty() {
            for (i, c) in view.coflows.iter().enumerate() {
                if let Some(&add) = self.remote_k.get(&c.id) {
                    self.k[i] = self.k[i].saturating_add(add);
                }
            }
        }
        self.timings.record_contention(t_contention.elapsed());

        // Global scan order: queue asc (strict priority), expired
        // deadlines first within the queue, then LCoF (or FIFO), then
        // arrival, then id for full determinism.
        self.expired.clear();
        self.expired.extend(view.coflows.iter().map(|c| {
            self.cfg.starvation_avoidance
                && self
                    .state
                    .get(&c.id)
                    .map(|s| s.deadline <= view.now)
                    .unwrap_or(false)
        }));
        if saath_telemetry::enabled() {
            // Each expired deadline is one D5 event, counted once per
            // deadline (a CoFlow stays expired until its queue changes).
            for (c, &e) in view.coflows.iter().zip(&self.expired) {
                if e {
                    if let Some(s) = self.state.get_mut(&c.id) {
                        if !s.expiry_counted {
                            s.expiry_counted = true;
                            self.mech.deadline_expiries += 1;
                        }
                    }
                }
            }
        }
        let (queues, expired, k) = (&self.queues, &self.expired, &self.k);
        let lcof = self.cfg.lcof;
        let sort_key = |i: usize| {
            (
                queues[i],
                !expired[i],
                if lcof { k[i] } else { 0 },
                view.coflows[i].arrival,
                view.coflows[i].id,
            )
        };
        if self.cfg.incremental_order {
            // Reposition only the CoFlows whose key components moved;
            // steady-state rounds refresh slots without touching a tree
            // node, and the emit walk replaces the O(n log n) re-sort.
            let mut rekeys = 0u64;
            for (i, c) in view.coflows.iter().enumerate() {
                let class = (queues[i], !expired[i]);
                let sub = (if lcof { k[i] } else { 0 }, c.arrival);
                if self.book.upsert(c.id, class, sub, i as u32) {
                    rekeys += 1;
                }
            }
            self.book.emit_into(&mut self.order);
            if saath_telemetry::enabled() {
                self.mech.order_rekeys += rekeys;
                self.mech.order_resorts_avoided += 1;
                // A rekey is one tree removal + insertion, ~log2(n)
                // comparisons each: a deterministic estimate so the D1
                // comparison counter stays meaningful on this path.
                let lg = (usize::BITS - n.leading_zeros()) as u64;
                self.mech.lcof_comparisons += rekeys * 2 * lg;
            }
            // The full re-sort stays the executable specification:
            // every debug round proves the book emits exactly it.
            #[cfg(debug_assertions)]
            {
                let mut oracle: Vec<usize> = (0..n).collect();
                oracle.sort_by_key(|&i| sort_key(i));
                assert_eq!(
                    self.order, oracle,
                    "incremental order diverged from the full re-sort oracle"
                );
            }
        } else {
            self.order.clear();
            self.order.extend(0..n);
            if saath_telemetry::enabled() {
                // Same stable sort, same keys — but through a comparator
                // so the D1 comparison work is measurable.
                let mut cmps = 0u64;
                self.order.sort_by(|&a, &b| {
                    cmps += 1;
                    sort_key(a).cmp(&sort_key(b))
                });
                self.mech.lcof_comparisons += cmps;
            } else {
                self.order.sort_by_key(|&i| sort_key(i));
            }
        }
        if self.expired.iter().any(|&e| e) {
            self.starvation_kicks += 1;
            if saath_telemetry::enabled() {
                self.mech.starvation_rescues += 1;
            }
        }
        let order_elapsed = t_order.elapsed();

        // ---- All-or-none admission (D1 step 4, D2) ----
        let t_an = Instant::now();
        self.missed.clear();
        // Parallel builds probe every CoFlow's gang rate concurrently
        // against the untouched bank, then merge serially in order;
        // serial builds (and tiny rounds) take the loop below.
        #[cfg(feature = "parallel")]
        let speculated = self.parallel_probe(view, bank);
        #[cfg(not(feature = "parallel"))]
        let speculated = false;
        if speculated {
            #[cfg(feature = "parallel")]
            self.merge_probes(view, bank, out);
        } else {
            self.admit_serial(view, bank, out);
        }
        let an_elapsed = t_an.elapsed();

        // ---- Work conservation (D4) ----
        let t_wc = Instant::now();
        if self.cfg.work_conservation || !self.cfg.all_or_none {
            for mi in 0..self.missed.len() {
                let ci = self.missed[mi];
                let c = &view.coflows[ci];
                endpoints_into(c, view.num_nodes, true, &mut self.eps);
                if self.eps.is_empty() {
                    continue;
                }
                greedy_fill_into(bank, &self.eps, &mut self.wc_rates);
                for (e, &r) in self.eps.iter().zip(&self.wc_rates) {
                    if !r.is_zero() {
                        if saath_telemetry::enabled() {
                            self.mech.wc_backfills += 1;
                        }
                        out.set(e.flow, r);
                    }
                }
            }
        }
        let wc_elapsed = t_wc.elapsed();

        self.timings.record_ordering(order_elapsed);
        self.timings.record_all_or_none(an_elapsed);
        self.timings.record_work_conservation(wc_elapsed);
        self.timings.record_total(t_total.elapsed());
        self.timings.active_coflows.push(n);
    }

    fn mech_counters(&self) -> Option<&MechCounters> {
        Some(&self.mech)
    }

    fn queue_occupancy(&self) -> Option<&[usize]> {
        Some(&self.occupancy)
    }

    /// Saath's only *historical* state is the per-CoFlow queue/deadline
    /// map: a deadline depends on when the CoFlow entered its current
    /// queue and the occupancy at that instant, which a resumed run
    /// never observed. Everything else (contention tracker, order book,
    /// arenas) is a pure function of the view and rebuilds on the
    /// `changed: None` round that follows a resume. `starvation_kicks`
    /// and the mech counters are appended so telemetry totals stay
    /// continuous across a resume; they never feed scheduling decisions.
    fn save_state(&self, out: &mut Vec<u8>) {
        out.push(1u8); // format version
        out.extend_from_slice(&self.starvation_kicks.to_le_bytes());
        let rows = self.mech.rows();
        out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for (_, v) in rows {
            out.extend_from_slice(&v.to_le_bytes());
        }
        // FastHashMap iteration order is arbitrary: sort by id so the
        // blob (and thus the snapshot digest) is deterministic.
        let mut entries: Vec<(CoflowId, CoflowState)> =
            self.state.iter().map(|(id, st)| (*id, *st)).collect();
        entries.sort_by_key(|(id, _)| *id);
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (id, st) in entries {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&(st.queue as u64).to_le_bytes());
            out.extend_from_slice(&st.deadline.as_nanos().to_le_bytes());
            out.push(st.expiry_counted as u8);
        }
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut rd = bytes;
        let mut get = |n: usize| -> Result<Vec<u8>, String> {
            if rd.len() < n {
                return Err("saath state blob truncated".into());
            }
            let (head, tail) = rd.split_at(n);
            rd = tail;
            Ok(head.to_vec())
        };
        let version = get(1)?[0];
        if version != 1 {
            return Err(format!("unknown saath state version {version}"));
        }
        let u64_of = |b: Vec<u8>| u64::from_le_bytes(b.as_slice().try_into().unwrap());
        self.starvation_kicks = u64_of(get(8)?);
        let n_mech = u64_of(get(8)?);
        if n_mech != self.mech.rows().len() as u64 {
            return Err(format!(
                "saath state has {n_mech} mech counters, this build has {}",
                self.mech.rows().len()
            ));
        }
        let mut mech_vals = [0u64; 15];
        for v in mech_vals.iter_mut() {
            *v = u64_of(get(8)?);
        }
        let m = &mut self.mech;
        [
            &mut m.queue_transitions,
            &mut m.deadline_expiries,
            &mut m.starvation_rescues,
            &mut m.gang_admissions,
            &mut m.gang_rejections,
            &mut m.unready_skips,
            &mut m.wc_backfills,
            &mut m.lcof_comparisons,
            &mut m.madd_evals,
            &mut m.contention_deltas,
            &mut m.contention_rebuilds,
            &mut m.contention_rebuilds_avoided,
            &mut m.probe_revalidations,
            &mut m.order_rekeys,
            &mut m.order_resorts_avoided,
        ]
        .into_iter()
        .zip(mech_vals)
        .for_each(|(slot, v)| *slot = v);
        let n_state = u64_of(get(8)?) as usize;
        self.state.clear();
        self.state.reserve(n_state);
        for _ in 0..n_state {
            let id = CoflowId(u32::from_le_bytes(get(4)?.as_slice().try_into().unwrap()));
            let queue = u64_of(get(8)?) as usize;
            let deadline = Time(u64_of(get(8)?));
            let expiry_counted = get(1)?[0] != 0;
            self.state.insert(
                id,
                CoflowState {
                    queue,
                    deadline,
                    expiry_counted,
                },
            );
        }
        if !rd.is_empty() {
            return Err(format!("{} trailing bytes in saath state blob", rd.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::FlowView;
    use saath_simcore::{FlowId, NodeId, Rate};

    const GBPS: Rate = Rate::gbps(1);

    fn fv(id: u32, src: u32, dst: u32, sent: u64) -> FlowView {
        FlowView {
            id: FlowId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            sent: Bytes(sent),
            ready: true,
            finished: false,
            oracle_size: None,
        }
    }

    fn cv(id: u32, arrival_ms: u64, flows: Vec<FlowView>) -> CoflowView {
        CoflowView {
            id: CoflowId(id),
            arrival: Time::from_millis(arrival_ms),
            flows,
            restarted: false,
        }
    }

    fn run(sched: &mut Saath, coflows: &[CoflowView], num_nodes: usize, now: Time) -> Schedule {
        let view = ClusterView {
            now,
            num_nodes,
            coflows,
            changed: None,
        };
        let mut bank = PortBank::uniform(num_nodes, GBPS);
        let mut out = Schedule::default();
        sched.compute(&view, &mut bank, &mut out);
        out
    }

    /// Fig 1: LCoF + all-or-none schedules the three narrow CoFlows and
    /// defers wide C2 entirely.
    #[test]
    fn fig1_round_one_defers_the_wide_coflow() {
        let coflows = vec![
            cv(1, 0, vec![fv(10, 0, 3, 0)]),
            cv(
                2,
                1,
                vec![fv(20, 0, 4, 0), fv(21, 1, 5, 0), fv(22, 2, 6, 0)],
            ),
            cv(3, 2, vec![fv(30, 1, 7, 0)]),
            cv(4, 3, vec![fv(40, 2, 8, 0)]),
        ];
        let mut s = Saath::with_defaults();
        let out = run(&mut s, &coflows, 9, Time::from_millis(4));
        // Narrow CoFlows run at full port rate.
        for flow in [10, 30, 40] {
            assert_eq!(out.rate_of(FlowId(flow)), GBPS, "flow f{flow}");
        }
        // C2 is blocked on every port (its senders are all taken) and
        // work conservation finds nothing for it either.
        for flow in [20, 21, 22] {
            assert_eq!(out.rate_of(FlowId(flow)), Rate::ZERO, "flow f{flow}");
        }
    }

    /// All-or-none assigns *equal* rates: the most contended port's
    /// max-min share goes to every flow of the CoFlow (D2).
    #[test]
    fn gang_rates_are_equal_and_bottlenecked() {
        // One CoFlow with two flows out of the same sender.
        let coflows = vec![cv(0, 0, vec![fv(0, 0, 1, 0), fv(1, 0, 2, 0)])];
        let mut s = Saath::with_defaults();
        let out = run(&mut s, &coflows, 3, Time::ZERO);
        assert_eq!(out.rate_of(FlowId(0)), GBPS.div_even(2));
        assert_eq!(out.rate_of(FlowId(1)), GBPS.div_even(2));
    }

    /// Fig 4: work conservation backfills the idle port of a missed
    /// CoFlow; disabling it leaves the port idle.
    #[test]
    fn work_conservation_backfills_missed_coflows() {
        let coflows = vec![
            cv(1, 0, vec![fv(10, 0, 2, 0)]),
            cv(2, 1, vec![fv(20, 0, 3, 0), fv(21, 1, 4, 0)]),
        ];
        let mut s = Saath::with_defaults();
        let out = run(&mut s, &coflows, 5, Time::from_millis(1));
        assert_eq!(out.rate_of(FlowId(10)), GBPS);
        assert_eq!(out.rate_of(FlowId(20)), Rate::ZERO, "sender 0 is taken");
        assert_eq!(out.rate_of(FlowId(21)), GBPS, "backfilled by WC");

        let mut s = Saath::new(SaathConfig {
            work_conservation: false,
            ..Default::default()
        });
        let out = run(&mut s, &coflows, 5, Time::from_millis(1));
        assert_eq!(
            out.rate_of(FlowId(21)),
            Rate::ZERO,
            "A/N strict: port idles"
        );
    }

    /// LCoF orders by contention; FIFO (ablation) orders by arrival.
    #[test]
    fn lcof_vs_fifo_ordering() {
        // C1 (arrives first) is wide across both senders; C2/C3 narrow.
        let coflows = vec![
            cv(1, 0, vec![fv(10, 0, 2, 0), fv(11, 1, 3, 0)]),
            cv(2, 1, vec![fv(20, 0, 4, 0)]),
            cv(3, 2, vec![fv(30, 1, 5, 0)]),
        ];
        // Full Saath: k1 = 2, k2 = k3 = 1 → C2, C3 win the ports.
        let mut s = Saath::with_defaults();
        let out = run(&mut s, &coflows, 6, Time::from_millis(2));
        assert_eq!(out.rate_of(FlowId(20)), GBPS);
        assert_eq!(out.rate_of(FlowId(30)), GBPS);
        assert_eq!(out.rate_of(FlowId(10)), Rate::ZERO);

        // FIFO ablation: C1 arrived first and takes both ports.
        let mut s = Saath::new(SaathConfig::ablation_an_pf());
        let out = run(&mut s, &coflows, 6, Time::from_millis(2));
        assert_eq!(out.rate_of(FlowId(10)), GBPS);
        assert_eq!(out.rate_of(FlowId(20)), Rate::ZERO);
    }

    /// Per-flow thresholds demote a wide CoFlow once any flow crosses
    /// its share; the total-bytes ablation keeps it high.
    #[test]
    fn per_flow_threshold_demotes_early() {
        // Width 4, one flow has sent 3 MB; total 3 MB.
        // Per-flow share of Q0 (10 MB / 4 = 2.5 MB) is crossed → Q1.
        let wide = cv(
            0,
            0,
            vec![
                fv(0, 0, 4, 3_000_000),
                fv(1, 1, 5, 0),
                fv(2, 2, 6, 0),
                fv(3, 3, 7, 0),
            ],
        );
        let s = Saath::with_defaults();
        assert_eq!(s.queue_of(&wide), 1);
        let s = Saath::new(SaathConfig::ablation_an());
        assert_eq!(s.queue_of(&wide), 0, "total rule: 3 MB ≤ 10 MB stays in Q0");
    }

    /// Queue priority is strict: a Q0 CoFlow beats a Q1 CoFlow even when
    /// the Q1 CoFlow has lower contention and earlier arrival.
    #[test]
    fn strict_queue_priority() {
        // C0 has sent >10 MB on its flow → Q1. C1 fresh → Q0.
        let coflows = vec![
            cv(0, 0, vec![fv(0, 0, 2, 20_000_000)]),
            cv(1, 5, vec![fv(10, 0, 3, 0)]),
        ];
        let mut s = Saath::with_defaults();
        let out = run(&mut s, &coflows, 4, Time::from_millis(5));
        assert_eq!(out.rate_of(FlowId(10)), GBPS, "Q0 CoFlow wins the sender");
        assert_eq!(out.rate_of(FlowId(0)), Rate::ZERO);
    }

    /// A CoFlow past its deadline jumps the LCoF order (D5).
    #[test]
    fn starvation_deadline_preempts_lcof() {
        // C0 is wide (senders 0 and 1, k = 2); narrow CoFlows keep
        // arriving on both its senders, so LCoF alone would starve it.
        let wide = cv(0, 0, vec![fv(0, 0, 2, 0), fv(1, 1, 3, 0)]);
        let narrow1 = cv(1, 1, vec![fv(10, 0, 4, 0)]);
        let narrow2 = cv(2, 2, vec![fv(20, 1, 5, 0)]);

        let mut s = Saath::with_defaults();
        // C0 alone gets its deadline stamped at t = 1 ms.
        let _ = run(&mut s, std::slice::from_ref(&wide), 6, Time::from_millis(1));
        assert_eq!(s.starvation_kicks, 0);
        // Much later, fresh narrow CoFlows appear. Their deadlines are
        // new; C0's has long expired (d·C_q·t_q is sub-second here), so
        // C0 must be force-prioritized despite its higher contention.
        let all = vec![wide.clone(), narrow1.clone(), narrow2.clone()];
        let out = run(&mut s, &all, 6, Time::from_secs(3600));
        assert!(s.starvation_kicks > 0);
        assert_eq!(
            out.rate_of(FlowId(0)),
            GBPS,
            "expired CoFlow is prioritized"
        );
        assert_eq!(out.rate_of(FlowId(1)), GBPS);
        assert_eq!(out.rate_of(FlowId(10)), Rate::ZERO);
        assert_eq!(out.rate_of(FlowId(20)), Rate::ZERO);

        // With starvation avoidance off, LCoF keeps starving it.
        let mut s = Saath::new(SaathConfig {
            starvation_avoidance: false,
            ..Default::default()
        });
        let _ = run(&mut s, std::slice::from_ref(&wide), 6, Time::from_millis(1));
        let out = run(&mut s, &all, 6, Time::from_secs(3600));
        assert_eq!(out.rate_of(FlowId(10)), GBPS);
        assert_eq!(out.rate_of(FlowId(20)), GBPS);
        assert_eq!(out.rate_of(FlowId(0)), Rate::ZERO);
    }

    /// §4.3: a restarted CoFlow whose finished flows reveal little
    /// remaining work moves back to a high-priority queue.
    #[test]
    fn dynamics_requeues_upward() {
        // Width 2: one flow finished at 100 MB, the other restarted at
        // 95 MB sent. Estimate: f_e = 100 MB, remaining = 5 MB.
        // Per-flow Q0 share = 5 MB ⇒ remaining 5 MB ≤ 5 MB ⇒ Q0,
        // even though m_c (95 MB sent) would put it in Q2.
        let mut c = cv(
            0,
            0,
            vec![fv(0, 0, 2, 100_000_000), fv(1, 1, 3, 95_000_000)],
        );
        c.flows[0].finished = true;
        c.restarted = true;
        let s = Saath::with_defaults();
        assert_eq!(s.queue_of(&c), 0);

        // Without the restart marker the normal rule applies.
        c.restarted = false;
        assert_eq!(s.queue_of(&c), 2);

        // Restarted but nothing finished yet: no estimate, normal rule.
        let mut c2 = cv(1, 0, vec![fv(2, 0, 2, 50_000_000)]);
        c2.restarted = true;
        assert_eq!(dynamics_remaining_estimate(&c2), None);
    }

    /// CoFlows with unavailable data are skipped by all-or-none and
    /// their ready flows ride work conservation only.
    #[test]
    fn unready_data_blocks_gang_admission() {
        let mut c = cv(0, 0, vec![fv(0, 0, 2, 0), fv(1, 1, 3, 0)]);
        c.flows[1].ready = false;
        let coflows = vec![c];
        let mut s = Saath::with_defaults();
        let out = run(&mut s, &coflows, 4, Time::ZERO);
        // The ready flow still runs (work conservation), the unready one
        // must not be scheduled.
        assert_eq!(out.rate_of(FlowId(0)), GBPS);
        assert_eq!(out.rate_of(FlowId(1)), Rate::ZERO);
    }

    /// Departed CoFlows' state is garbage-collected.
    #[test]
    fn state_is_garbage_collected() {
        let coflows: Vec<CoflowView> = (0..5)
            .map(|i| cv(i, 0, vec![fv(i * 10, 0, 2, 0)]))
            .collect();
        let mut s = Saath::with_defaults();
        let _ = run(&mut s, &coflows, 4, Time::ZERO);
        assert_eq!(s.state.len(), 5);
        let _ = run(&mut s, &coflows[..1], 4, Time::from_millis(8));
        assert_eq!(s.state.len(), 1);
    }

    /// GC must fire even when departures are exactly matched by
    /// same-round arrivals: the map size never exceeds the view size,
    /// so a `state.len() > n` guard would keep every stale id alive.
    #[test]
    fn gc_handles_matched_arrivals_and_departures() {
        let mut s = Saath::with_defaults();
        // Round 1: CoFlows 0..3.
        let first: Vec<CoflowView> = (0..3)
            .map(|i| cv(i, 0, vec![fv(i * 10, 0, 2, 0)]))
            .collect();
        let _ = run(&mut s, &first, 4, Time::ZERO);
        assert_eq!(s.state.len(), 3);
        // Round 2: all three departed, three new arrived — same count.
        let second: Vec<CoflowView> = (3..6)
            .map(|i| cv(i, 8, vec![fv(i * 10, 0, 2, 0)]))
            .collect();
        let _ = run(&mut s, &second, 4, Time::from_millis(8));
        assert_eq!(s.state.len(), 3, "stale entries leaked past GC");
        for i in 3..6 {
            assert!(
                s.state.contains_key(&CoflowId(i)),
                "live CoFlow {i} missing"
            );
        }
        for i in 0..3 {
            assert!(
                !s.state.contains_key(&CoflowId(i)),
                "departed CoFlow {i} retained"
            );
        }
    }

    /// D5 horizons are normalized by the *nominal* port rate: a
    /// straggler on node 0 (whose uplink is port 0) must not stretch
    /// deadline horizons for anybody.
    #[test]
    fn straggler_on_node_zero_leaves_deadlines_unchanged() {
        let coflows = vec![cv(0, 0, vec![fv(0, 1, 2, 0)])];
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 3,
            coflows: &coflows,
            changed: None,
        };

        let mut clean = Saath::with_defaults();
        let mut bank = PortBank::uniform(3, GBPS);
        let mut out = Schedule::default();
        clean.compute(&view, &mut bank, &mut out);

        let mut degraded = Saath::with_defaults();
        let mut bank = PortBank::uniform(3, GBPS);
        bank.scale_node(NodeId(0), 1, 10); // port 0 now at 1/10 rate
        let mut out = Schedule::default();
        degraded.compute(&view, &mut bank, &mut out);

        assert_eq!(
            clean.state[&CoflowId(0)].deadline,
            degraded.state[&CoflowId(0)].deadline,
            "a degraded port 0 must not change deadline horizons"
        );
    }

    /// D5: a CoFlow gets a *fresh* deadline whenever it changes queue,
    /// so demotion does not carry a stale (possibly expired) deadline
    /// into the new queue.
    #[test]
    fn deadline_refreshes_on_queue_change() {
        let mut s = Saath::with_defaults();
        // Round 1: fresh CoFlow in Q0.
        let c = cv(0, 0, vec![fv(0, 0, 2, 0)]);
        let _ = run(&mut s, std::slice::from_ref(&c), 3, Time::from_millis(1));
        let d0 = s.state[&CoflowId(0)].deadline;
        assert_eq!(s.state[&CoflowId(0)].queue, 0);

        // Round 2 much later, same queue: deadline must NOT refresh
        // (that is what lets starvation detection fire eventually).
        let _ = run(&mut s, std::slice::from_ref(&c), 3, Time::from_secs(100));
        assert_eq!(s.state[&CoflowId(0)].deadline, d0);

        // Round 3: the CoFlow has sent past Q0's threshold → demoted to
        // a new queue with a *fresh* (later) deadline.
        let moved = cv(0, 0, vec![fv(0, 0, 2, 20_000_000)]);
        let _ = run(
            &mut s,
            std::slice::from_ref(&moved),
            3,
            Time::from_secs(200),
        );
        assert_eq!(s.state[&CoflowId(0)].queue, 1);
        assert!(
            s.state[&CoflowId(0)].deadline > d0,
            "deadline must refresh on move"
        );
        assert!(s.state[&CoflowId(0)].deadline > Time::from_secs(200));
    }

    /// The skew-aware extension keeps naturally-uneven CoFlows in high
    /// queues longer than the equal split, and is identical for even
    /// ones.
    #[test]
    fn skew_aware_threshold_option() {
        let uneven = cv(
            0,
            0,
            vec![
                fv(0, 0, 4, 4_000_000),
                fv(1, 1, 5, 10_000),
                fv(2, 2, 6, 10_000),
            ],
        );
        let default = Saath::with_defaults();
        let skew = Saath::new(SaathConfig {
            skew_aware_thresholds: true,
            ..Default::default()
        });
        assert!(default.queue_of(&uneven) > skew.queue_of(&uneven));

        let even = cv(1, 0, vec![fv(3, 0, 4, 1_000_000), fv(4, 1, 5, 1_000_000)]);
        assert_eq!(default.queue_of(&even), skew.queue_of(&even));
    }

    /// Satellite for the incremental order book: 200 rounds of random
    /// churn (arrivals, byte growth across queue thresholds, finishes,
    /// readiness flips, restarts, departures, and hour-scale time jumps
    /// that expire deadlines) driven through two schedulers — the
    /// incremental one fed exact `changed` hints, and the legacy
    /// full-re-sort one fed `changed: None` — must produce identical
    /// schedules every round. Debug builds additionally exercise the
    /// in-scheduler oracles (order, contention, cached queues) on every
    /// one of those rounds.
    #[test]
    fn incremental_order_matches_full_resort_under_churn() {
        use rand::{Rng, SeedableRng};
        for lcof in [true, false] {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0x0b00c + lcof as u64);
            let mut inc = Saath::new(SaathConfig {
                lcof,
                ..Default::default()
            });
            let mut full = Saath::new(SaathConfig {
                lcof,
                incremental_order: false,
                incremental_contention: false,
                ..Default::default()
            });
            let num_nodes = 12usize;
            let mut coflows: Vec<CoflowView> = Vec::new();
            let mut next_cf = 0u32;
            let mut next_flow = 0u32;
            let mut now = Time::ZERO;
            for round in 0..200 {
                let mut changed: Vec<CoflowId> = Vec::new();
                // Arrivals.
                while coflows.len() < 3 || rng.gen_bool(0.3) {
                    let width = rng.gen_range(1..6usize);
                    let flows: Vec<FlowView> = (0..width)
                        .map(|_| {
                            let f = fv(
                                next_flow,
                                rng.gen_range(0..num_nodes as u32),
                                rng.gen_range(0..num_nodes as u32),
                                0,
                            );
                            next_flow += 1;
                            f
                        })
                        .collect();
                    coflows.push(CoflowView {
                        id: CoflowId(next_cf),
                        arrival: now,
                        flows,
                        restarted: false,
                    });
                    changed.push(CoflowId(next_cf));
                    next_cf += 1;
                }
                // Byte growth (drives D3 queue transitions), finishes
                // (shrinks footprints → k deltas), readiness flips, and
                // §4.3 restart markers. Every mutation lands in the hint.
                for c in coflows.iter_mut() {
                    if rng.gen_bool(0.5) {
                        let fi = rng.gen_range(0..c.flows.len());
                        c.flows[fi].sent =
                            Bytes(c.flows[fi].sent.as_u64() + rng.gen_range(0..4_000_000u64));
                        changed.push(c.id);
                    }
                    if rng.gen_bool(0.25) {
                        let fi = rng.gen_range(0..c.flows.len());
                        c.flows[fi].finished = true;
                        changed.push(c.id);
                    }
                    if rng.gen_bool(0.15) {
                        let fi = rng.gen_range(0..c.flows.len());
                        c.flows[fi].ready = !c.flows[fi].ready;
                        changed.push(c.id);
                    }
                    if rng.gen_bool(0.05) {
                        c.restarted = !c.restarted;
                        changed.push(c.id);
                    }
                }
                // Departures: drained CoFlows usually leave; occasionally
                // one is yanked mid-transfer (failure/abort path).
                coflows.retain(|c| {
                    let drained = c.flows.iter().all(|f| f.finished);
                    !(drained && rng.gen_bool(0.8) || rng.gen_bool(0.05))
                });
                // Mostly small steps; occasional hour jumps expire D5
                // deadlines for CoFlows *outside* the hint (allowed: the
                // expiry class is re-derived fresh every round).
                now = if rng.gen_bool(0.1) {
                    now.saturating_add(saath_simcore::Duration::from_secs(3600))
                } else {
                    now.saturating_add(saath_simcore::Duration::from_millis(8))
                };
                let out_inc = {
                    let view = ClusterView {
                        now,
                        num_nodes,
                        coflows: &coflows,
                        changed: Some(&changed),
                    };
                    let mut bank = PortBank::uniform(num_nodes, GBPS);
                    let mut out = Schedule::default();
                    inc.compute(&view, &mut bank, &mut out);
                    out
                };
                let out_full = {
                    let view = ClusterView {
                        now,
                        num_nodes,
                        coflows: &coflows,
                        changed: None,
                    };
                    let mut bank = PortBank::uniform(num_nodes, GBPS);
                    let mut out = Schedule::default();
                    full.compute(&view, &mut bank, &mut out);
                    out
                };
                assert_eq!(
                    out_inc, out_full,
                    "schedules diverged at round {round} (lcof={lcof})"
                );
            }
        }
    }

    /// Timings accumulate one sample set per round.
    #[test]
    fn timings_accumulate() {
        let coflows = vec![cv(0, 0, vec![fv(0, 0, 1, 0)])];
        let mut s = Saath::with_defaults();
        for i in 0..3 {
            let _ = run(&mut s, &coflows, 2, Time::from_millis(i * 8));
        }
        assert_eq!(s.timings.rounds(), 3);
        assert_eq!(s.timings.active_coflows, vec![1, 1, 1]);
        assert_eq!(s.timings.ordering.len(), 3);
        assert_eq!(s.timings.all_or_none.len(), 3);
        assert_eq!(s.timings.work_conservation.len(), 3);
    }
}
