//! The Aalo baseline (Chowdhury & Stoica, SIGCOMM'15), as the Saath
//! paper models it (§2.2).
//!
//! Aalo's global coordinator only decides *queue membership*: a CoFlow
//! sits in the queue whose span contains its **total bytes sent**. The
//! ports then act independently: each enumerates flows from the highest
//! to the lowest priority queue and serves same-queue flows FIFO (by
//! CoFlow arrival). There is no coordination of a CoFlow's flows across
//! ports — which is precisely the *spatial dimension* Saath exploits,
//! and the source of Aalo's out-of-sync behaviour (§2.3).
//!
//! The implementation walks every ready flow in
//! `(queue, CoFlow arrival, CoFlow id, flow id)` order and hands each
//! the remaining capacity of its two ports ([`greedy_fill_into`]). That is
//! the fluid equivalent of independent per-port strict-priority FIFO
//! with sender/receiver feasibility — the same model coflowsim uses.

use crate::config::QueueConfig;
use crate::timing::SchedTimings;
use crate::view::{ClusterView, CoflowScheduler, Schedule};
use saath_fabric::{greedy_fill_into, FlowEndpoints, PortBank};
use saath_telemetry::MechCounters;
use std::collections::HashMap;
use std::time::Instant;

/// The Aalo scheduler.
pub struct Aalo {
    queues: QueueConfig,
    /// Weighted inter-queue sharing, as deployed Aalo (and coflowsim)
    /// does: queue `q` receives a bandwidth share proportional to
    /// `E^{-q}`, so lower-priority CoFlows keep trickling instead of
    /// being starved by strict priority. `None` = strict priority (the
    /// simpler model the Saath paper's §2.2 text describes).
    weighted_queues: Option<u64>,
    /// Per-round overhead samples (Table 2 comparison column).
    pub timings: SchedTimings,
    // Per-round buffers, recycled so the hot path never allocates.
    order: Vec<((usize, saath_simcore::Time, u32, u32), FlowEndpoints)>,
    eps: Vec<FlowEndpoints>,
    rates: Vec<saath_simcore::Rate>,
    present: Vec<[bool; 16]>,
    budget: Vec<u64>,
    // Telemetry-only state (empty / all-zero in feature-off builds):
    // last observed queue per CoFlow, per-queue occupancy, counters.
    last_queue: HashMap<saath_simcore::CoflowId, usize>,
    occupancy: Vec<usize>,
    /// Mechanism counters (queue transitions, FIFO sort comparisons,
    /// …). Only maintained in `telemetry`-feature builds.
    pub mech: MechCounters,
}

impl Aalo {
    /// Aalo with the given queue structure (Saath shares it) and the
    /// deployed system's weighted inter-queue sharing.
    pub fn new(queues: QueueConfig) -> Aalo {
        let growth = queues.growth;
        Aalo {
            queues,
            weighted_queues: Some(growth),
            timings: SchedTimings::default(),
            order: Vec::new(),
            eps: Vec::new(),
            rates: Vec::new(),
            present: Vec::new(),
            budget: Vec::new(),
            last_queue: HashMap::new(),
            occupancy: Vec::new(),
            mech: MechCounters::default(),
        }
    }

    /// Aalo with strict priority across queues instead of weighted
    /// sharing — the simplified model in the Saath paper's text.
    pub fn strict_priority(queues: QueueConfig) -> Aalo {
        Aalo {
            weighted_queues: None,
            ..Aalo::new(queues)
        }
    }

    /// Aalo with the paper's default parameters.
    pub fn with_defaults() -> Aalo {
        Aalo::new(QueueConfig::default())
    }
}

impl CoflowScheduler for Aalo {
    fn name(&self) -> &'static str {
        "aalo"
    }

    fn compute(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule) {
        let t_total = Instant::now();

        // (queue, arrival, coflow id, flow id) → endpoints, for every
        // ready unfinished flow.
        self.order.clear();
        if saath_telemetry::enabled() {
            self.occupancy.clear();
            self.occupancy.resize(self.queues.num_queues, 0);
            let live = &mut self.last_queue;
            live.retain(|id, _| view.coflows.iter().any(|c| c.id == *id));
        }
        for c in view.coflows {
            let q = self.queues.queue_for_total(c.total_sent());
            if saath_telemetry::enabled() {
                self.occupancy[q] += 1;
                // Aalo keeps no queue state; reconstruct transitions
                // from the previous round's assignment.
                if let Some(prev) = self.last_queue.insert(c.id, q) {
                    if prev != q {
                        self.mech.queue_transitions += 1;
                    }
                }
            }
            self.order.extend(
                c.unfinished()
                    .filter(|f| f.ready)
                    .map(|f| ((q, c.arrival, c.id.0, f.id.0), f.endpoints(view.num_nodes))),
            );
        }
        if saath_telemetry::enabled() {
            // Same stable sort through a counting comparator, so the
            // FIFO ordering work is comparable against Saath's LCoF.
            let mut cmps = 0u64;
            self.order.sort_by(|(a, _), (b, _)| {
                cmps += 1;
                a.cmp(b)
            });
            self.mech.lcof_comparisons += cmps;
        } else {
            self.order.sort_by_key(|(key, _)| *key);
        }
        self.eps.clear();
        self.eps.extend(self.order.iter().map(|(_, e)| *e));

        match self.weighted_queues {
            None => greedy_fill_into(bank, &self.eps, &mut self.rates),
            Some(growth) => {
                // Per-port weighted fair queuing across backlogged
                // queues (weight E^{-q}), FIFO within a queue, then a
                // work-conserving second pass for the leftovers.
                let np = bank.num_ports();
                let k = self.queues.num_queues;
                // Which queues are backlogged at each port.
                let present = &mut self.present;
                present.clear();
                present.resize(np, [false; 16]);
                for ((q, ..), e) in &self.order {
                    present[e.src.index()][(*q).min(15)] = true;
                    present[e.dst.index()][(*q).min(15)] = true;
                }
                let weight = |q: usize| (growth as f64).powi(-(q as i32));
                // Per-port per-queue budgets.
                let budget = &mut self.budget;
                budget.clear();
                budget.resize(np * k, 0u64);
                for p in 0..np {
                    let total_w: f64 = (0..k).filter(|&q| present[p][q.min(15)]).map(weight).sum();
                    if total_w <= 0.0 {
                        continue;
                    }
                    let cap = bank.remaining(saath_simcore::PortId(p as u32)).as_u64();
                    for q in 0..k {
                        if present[p][q.min(15)] {
                            budget[p * k + q] = (cap as f64 * weight(q) / total_w) as u64;
                        }
                    }
                }
                // Pass 1: FIFO within each queue against the budgets.
                let rates = &mut self.rates;
                rates.clear();
                rates.resize(self.eps.len(), saath_simcore::Rate::ZERO);
                for (i, ((q, ..), e)) in self.order.iter().enumerate() {
                    let (s, d) = (e.src.index(), e.dst.index());
                    let r = budget[s * k + q]
                        .min(budget[d * k + q])
                        .min(bank.remaining(e.src).as_u64())
                        .min(bank.remaining(e.dst).as_u64());
                    if r > 0 {
                        budget[s * k + q] -= r;
                        budget[d * k + q] -= r;
                        bank.allocate(e.src, saath_simcore::Rate(r));
                        bank.allocate(e.dst, saath_simcore::Rate(r));
                        rates[i] = saath_simcore::Rate(r);
                    }
                }
                // Pass 2: hand out what the budgets stranded, same order.
                for (i, e) in self.eps.iter().enumerate() {
                    let r = bank.remaining(e.src).min(bank.remaining(e.dst));
                    if !r.is_zero() {
                        bank.allocate(e.src, r);
                        bank.allocate(e.dst, r);
                        rates[i] += r;
                    }
                }
            }
        };
        for (e, &r) in self.eps.iter().zip(self.rates.iter()) {
            if !r.is_zero() {
                out.set(e.flow, r);
            }
        }

        self.timings.total.push(t_total.elapsed());
        self.timings.active_coflows.push(view.coflows.len());
    }

    fn mech_counters(&self) -> Option<&MechCounters> {
        Some(&self.mech)
    }

    fn queue_occupancy(&self) -> Option<&[usize]> {
        if saath_telemetry::enabled() {
            Some(&self.occupancy)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{CoflowView, FlowView};
    use saath_simcore::{Bytes, CoflowId, FlowId, NodeId, Rate, Time};

    const GBPS: Rate = Rate::gbps(1);

    fn fv(id: u32, src: u32, dst: u32, sent: u64) -> FlowView {
        FlowView {
            id: FlowId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            sent: Bytes(sent),
            ready: true,
            finished: false,
            oracle_size: None,
        }
    }

    fn cv(id: u32, arrival_ms: u64, flows: Vec<FlowView>) -> CoflowView {
        CoflowView {
            id: CoflowId(id),
            arrival: Time::from_millis(arrival_ms),
            flows,
            restarted: false,
        }
    }

    fn run(coflows: &[CoflowView], num_nodes: usize) -> Schedule {
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes,
            coflows,
            changed: None,
        };
        let mut bank = PortBank::uniform(num_nodes, GBPS);
        let mut out = Schedule::default();
        Aalo::with_defaults().compute(&view, &mut bank, &mut out);
        out
    }

    /// The Fig 1 pathology: Aalo schedules C2's free-port flows early
    /// (out of sync), blocking nothing useful.
    #[test]
    fn fig1_out_of_sync_behaviour() {
        let coflows = vec![
            cv(1, 0, vec![fv(10, 0, 3, 0)]),
            cv(
                2,
                1,
                vec![fv(20, 0, 4, 0), fv(21, 1, 5, 0), fv(22, 2, 6, 0)],
            ),
            cv(3, 2, vec![fv(30, 1, 7, 0)]),
            cv(4, 3, vec![fv(40, 2, 8, 0)]),
        ];
        let out = run(&coflows, 9);
        // FIFO per port: C1 wins sender 0; C2 (earlier than C3/C4) wins
        // senders 1 and 2 — its flows are now out of sync with flow 20,
        // and C3/C4 are blocked.
        assert_eq!(out.rate_of(FlowId(10)), GBPS);
        assert_eq!(out.rate_of(FlowId(20)), Rate::ZERO);
        assert_eq!(out.rate_of(FlowId(21)), GBPS);
        assert_eq!(out.rate_of(FlowId(22)), GBPS);
        assert_eq!(out.rate_of(FlowId(30)), Rate::ZERO);
        assert_eq!(out.rate_of(FlowId(40)), Rate::ZERO);
    }

    /// Queue priority: a CoFlow that has sent a lot sits in a lower
    /// queue and mostly loses its port to a fresh CoFlow, regardless of
    /// arrival order. Under the deployed system's weighted sharing the
    /// old CoFlow keeps a trickle (E:1); under the strict-priority
    /// model it gets nothing.
    #[test]
    fn total_bytes_demotion() {
        let coflows = vec![
            cv(0, 0, vec![fv(0, 0, 2, 50_000_000)]), // 50 MB sent → Q1
            cv(1, 9, vec![fv(10, 0, 3, 0)]),         // fresh → Q0
        ];
        let out = run(&coflows, 4);
        // Weighted default: Q0 gets E/(E+1) = 10/11 of the port, Q1 the
        // rest (work conservation can add nothing — the port is full).
        let hi = out.rate_of(FlowId(10)).as_u64();
        let lo = out.rate_of(FlowId(0)).as_u64();
        assert!(hi > 8 * lo, "Q0 flow should dominate: {hi} vs {lo}");
        assert!(lo > 0, "weighted sharing keeps Q1 trickling");
        assert!(hi + lo <= GBPS.as_u64());
        assert!(hi + lo >= GBPS.as_u64() - 2, "port should be fully used");

        // Strict-priority variant: winner takes all.
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 4,
            coflows: &coflows,
            changed: None,
        };
        let mut bank = PortBank::uniform(4, GBPS);
        let mut out = Schedule::default();
        Aalo::strict_priority(crate::config::QueueConfig::default())
            .compute(&view, &mut bank, &mut out);
        assert_eq!(out.rate_of(FlowId(10)), GBPS);
        assert_eq!(out.rate_of(FlowId(0)), Rate::ZERO);
    }

    /// Within a queue, FIFO by arrival.
    #[test]
    fn fifo_within_queue() {
        let coflows = vec![
            cv(0, 5, vec![fv(0, 0, 2, 0)]),
            cv(1, 3, vec![fv(10, 0, 3, 0)]), // earlier arrival wins
        ];
        let out = run(&coflows, 4);
        assert_eq!(out.rate_of(FlowId(10)), GBPS);
        assert_eq!(out.rate_of(FlowId(0)), Rate::ZERO);
    }

    /// Unready flows are not scheduled.
    #[test]
    fn unready_flows_skipped() {
        let mut c = cv(0, 0, vec![fv(0, 0, 2, 0)]);
        c.flows[0].ready = false;
        let out = run(&[c], 4);
        assert_eq!(out.rate_of(FlowId(0)), Rate::ZERO);
    }

    /// Aalo is work conserving at the flow level: with one sender and
    /// two receivers, both flows of one CoFlow run (no gang semantics).
    #[test]
    fn flow_level_work_conservation() {
        let coflows = vec![cv(0, 0, vec![fv(0, 0, 1, 0), fv(1, 0, 2, 0)])];
        let out = run(&coflows, 3);
        // First flow takes the whole uplink, second gets nothing —
        // uncoordinated, but no capacity is left idle while demand
        // exists elsewhere... on these ports.
        assert_eq!(out.rate_of(FlowId(0)), GBPS);
        assert_eq!(out.rate_of(FlowId(1)), Rate::ZERO);
    }
}
